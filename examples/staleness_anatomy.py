#!/usr/bin/env python
"""Dissect *why* SpecSync wins: the staleness distribution, before and after.

Runs the MF workload under all five schemes on the paper's Cluster 1 and
prints the distribution of per-push staleness (missed peer updates) — mean,
median, tail — plus a per-worker view for the SpecSync run.  The point to
look for: SpecSync cuts the mean and, more importantly, the harmful upper
tail, while keeping iteration throughput close to ASP's.

Run:
    python examples/staleness_anatomy.py      (~2 minutes)
"""

from repro import (
    AspPolicy,
    BspPolicy,
    ClusterSpec,
    NaiveWaitingPolicy,
    SpecSyncPolicy,
    SspPolicy,
)
from repro.metrics.staleness import StalenessAnalysis, compare_staleness
from repro.utils.tables import TextTable
from repro.workloads import matrix_factorization_workload


def main() -> None:
    workload = matrix_factorization_workload()
    cluster = ClusterSpec.homogeneous(40)
    horizon = 600.0

    schemes = {
        "asp": AspPolicy(),
        "bsp": BspPolicy(),
        "ssp(s=3)": SspPolicy(3),
        "naive-wait(1s)": NaiveWaitingPolicy(1.0),
        "specsync-adaptive": SpecSyncPolicy.adaptive(),
    }
    traces = {}
    iterations = {}
    for name, policy in schemes.items():
        result = workload.run(cluster, policy, seed=3, horizon_s=horizon)
        traces[name] = result.traces
        iterations[name] = result.total_iterations
        print(f"finished {name}: {result.total_iterations} iterations")

    print()
    print(compare_staleness(traces))

    throughput = TextTable(
        ["scheme", "iterations in budget", "vs ASP"],
        title=f"Update throughput over {horizon:.0f} virtual seconds",
    )
    for name, count in iterations.items():
        throughput.add_row(
            [name, count, f"{count / iterations['asp']:.0%}"]
        )
    print()
    print(throughput.render())

    spec_analysis = StalenessAnalysis(traces["specsync-adaptive"])
    per_worker = spec_analysis.per_worker()
    worst = max(per_worker.items(), key=lambda kv: kv[1].mean)
    best = min(per_worker.items(), key=lambda kv: kv[1].mean)
    print(
        f"\nSpecSync per-worker staleness spread: best worker-{best[0]} "
        f"mean {best[1].mean:.1f}, worst worker-{worst[0]} "
        f"mean {worst[1].mean:.1f} — re-syncs keep the cluster's replicas "
        "consistent, which is exactly the paper's freshness argument."
    )


if __name__ == "__main__":
    main()
