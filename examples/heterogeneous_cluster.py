#!/usr/bin/env python
"""Heterogeneity study: SpecSync on a mixed-instance cluster (paper Fig. 10).

Trains the CIFAR-10-class workload on two testbeds:

* Cluster 1 — 40 × m4.xlarge (homogeneous);
* Cluster 2 — 10 × each of m3.xlarge / m3.2xlarge / m4.xlarge / m4.2xlarge
  (the paper's heterogeneous mix),

under Original (ASP) and SpecSync-Adaptive, and prints the
time-to-target comparison.  Expect the paper's shape: SpecSync wins on both
testbeds, but its edge shrinks under heterogeneity because the adaptive
tuner's uniform-arrival assumption degrades.

Run:
    python examples/heterogeneous_cluster.py      (~2 minutes)
"""

from repro import AspPolicy, ClusterSpec, SpecSyncPolicy
from repro.utils.tables import TextTable
from repro.workloads import cifar10_workload


def main() -> None:
    workload = cifar10_workload()
    clusters = {
        "Cluster 1 (homogeneous)": ClusterSpec.homogeneous(40),
        "Cluster 2 (heterogeneous)": ClusterSpec.heterogeneous(),
    }

    table = TextTable(
        ["cluster", "scheme", "time to target", "mean staleness"],
        title=f"CIFAR-10, target loss {workload.convergence.target_loss}",
    )
    times = {}
    for cluster_name, cluster in clusters.items():
        print(f"running {cluster_name}: {cluster.describe()} ...")
        for scheme_name, policy in [
            ("Original", AspPolicy()),
            ("SpecSync-Adaptive", SpecSyncPolicy.adaptive()),
        ]:
            result = workload.run(cluster, policy, seed=3, early_stop=True)
            time_to_target = result.time_to_convergence(workload.convergence)
            times[(cluster_name, scheme_name)] = time_to_target
            table.add_row(
                [
                    cluster_name,
                    scheme_name,
                    f"{time_to_target:.0f}s" if time_to_target else "never",
                    f"{result.mean_staleness:.1f}",
                ]
            )
    print()
    print(table.render())

    for cluster_name in clusters:
        orig = times[(cluster_name, "Original")]
        spec = times[(cluster_name, "SpecSync-Adaptive")]
        if orig and spec:
            print(f"{cluster_name}: speedup {orig / spec:.2f}x")


if __name__ == "__main__":
    main()
