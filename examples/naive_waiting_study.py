#!/usr/bin/env python
"""Reproduce the paper's Section III empirical study on one machine.

Part 1 (paper Fig. 3): run plain ASP, trace every pull and push, and print
the distribution of pushes-after-a-pull (PAP) per 1-second interval — the
evidence that a short wait after a pull uncovers many fresh updates.

Part 2 (paper Fig. 5): apply naïve waiting with delays {0, 1, 3, 5}s and
show the crossover: a small delay helps, a large delay hurts — the
motivation for replacing fixed waits with speculation.

Run:
    python examples/naive_waiting_study.py      (~1 minute)
"""

from repro import AspPolicy, ClusterSpec, NaiveWaitingPolicy, PapAnalysis
from repro.utils.tables import TextTable
from repro.workloads import matrix_factorization_workload


def pap_study(cluster) -> None:
    workload = matrix_factorization_workload()
    result = workload.run(cluster, AspPolicy(), seed=3, horizon_s=240.0)
    analysis = PapAnalysis(result.traces, interval_s=1.0, num_intervals=3)

    table = TextTable(
        ["interval after pull", "p25", "median", "p75", "p95"],
        title="Fig. 3 style: pushes-after-a-pull per 1s interval (MF)",
    )
    for idx, box in sorted(analysis.boxes.items()):
        table.add_row(
            [f"{idx}-{idx + 1}s", f"{box.p25:.0f}", f"{box.median:.0f}",
             f"{box.p75:.0f}", f"{box.p95:.0f}"]
        )
    print(table.render())
    print(
        f"median updates uncovered within 2s of a pull: "
        f"{analysis.median_pap_within(2.0):.1f}\n"
    )


def naive_waiting_study(cluster) -> None:
    workload = matrix_factorization_workload()
    table = TextTable(
        ["pull delay", "time to target", "mean staleness"],
        title=(
            "Fig. 5 style: naive waiting on MF "
            f"(target {workload.convergence.target_loss})"
        ),
    )
    for delay in (0.0, 1.0, 3.0, 5.0):
        result = workload.run(
            cluster, NaiveWaitingPolicy(delay), seed=3, early_stop=True
        )
        time_to_target = result.time_to_convergence(workload.convergence)
        table.add_row(
            [
                "0s (Original)" if delay == 0 else f"{delay:.0f}s",
                f"{time_to_target:.0f}s" if time_to_target else "never",
                f"{result.mean_staleness:.1f}",
            ]
        )
    print(table.render())
    print(
        "\nThe 'right' delay is workload-dependent and fragile — "
        "which is why the paper replaces fixed waits with speculation."
    )


def main() -> None:
    cluster = ClusterSpec.homogeneous(40)
    print(f"Cluster: {cluster.describe()}\n")
    pap_study(cluster)
    naive_waiting_study(cluster)


if __name__ == "__main__":
    main()
