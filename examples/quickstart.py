#!/usr/bin/env python
"""Quickstart: compare ASP with SpecSync on one workload.

Builds the paper's Cluster-1 setup (40 simulated m4.xlarge workers — the
run takes under a minute of wall time), trains the matrix-factorization workload under the
Original asynchronous scheme and under SpecSync-Adaptive, and prints the
runtime-to-convergence comparison — the essence of the paper's Fig. 8.

Run:
    python examples/quickstart.py
"""

from repro import AspPolicy, ClusterSpec, SpecSyncPolicy
from repro.utils.tables import TextTable, format_bytes
from repro.workloads import matrix_factorization_workload


def main() -> None:
    cluster = ClusterSpec.homogeneous(40)
    workload = matrix_factorization_workload()
    print(f"Cluster: {cluster.describe()}")
    print(f"Workload: {workload.name} "
          f"(target loss {workload.convergence.target_loss})\n")

    table = TextTable(
        ["scheme", "time to converge", "iterations", "aborts",
         "mean staleness", "data transfer"]
    )
    results = {}
    for label, policy in [
        ("Original (ASP)", AspPolicy()),
        ("SpecSync-Adaptive", SpecSyncPolicy.adaptive()),
    ]:
        result = workload.run(cluster, policy, seed=3, early_stop=True)
        results[label] = result
        time_to_conv = result.time_to_convergence(workload.convergence)
        table.add_row(
            [
                label,
                f"{time_to_conv:.0f}s" if time_to_conv else "did not converge",
                result.total_iterations,
                result.total_aborts,
                f"{result.mean_staleness:.1f}",
                format_bytes(result.total_transfer_bytes),
            ]
        )
    print(table.render())

    asp_time = results["Original (ASP)"].time_to_convergence(workload.convergence)
    spec_time = results["SpecSync-Adaptive"].time_to_convergence(
        workload.convergence
    )
    if asp_time and spec_time:
        print(f"\nSpecSync speedup: {asp_time / spec_time:.2f}x "
              f"(paper reports up to 2.97x for MF at 40 workers)")


if __name__ == "__main__":
    main()
