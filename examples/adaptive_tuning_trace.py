#!/usr/bin/env python
"""Watch Algorithm 1 tune ABORT_TIME / ABORT_RATE epoch by epoch.

Runs SpecSync-Adaptive on the matrix-factorization workload and prints the
hyperparameters the scheduler chose at each epoch boundary, together with
the freshness-improvement estimate that picked them.  The tuned window
settles near a fraction of the iteration time, and the rate follows
Algorithm 1 line 7 (Γ = Δ·(m−1)/(T·m)).

Run:
    python examples/adaptive_tuning_trace.py      (~30 seconds)
"""

from repro import ClusterSpec, SpecSyncPolicy
from repro.utils.tables import TextTable
from repro.workloads import matrix_factorization_workload


def main() -> None:
    workload = matrix_factorization_workload()
    cluster = ClusterSpec.homogeneous(40)
    policy = SpecSyncPolicy.adaptive()
    result = workload.run(cluster, policy, seed=3, horizon_s=400.0)

    scheduler = policy.scheduler
    table = TextTable(
        ["epoch", "virtual time", "ABORT_TIME", "ABORT_RATE",
         "threshold (m x rate)"],
        title=f"Algorithm 1 tuning trace ({cluster.num_workers} workers, MF)",
    )
    for epoch, (time, hyperparams) in enumerate(scheduler.hyperparam_log[:25]):
        if hyperparams is None:
            table.add_row([epoch, f"{time:.0f}s", "-", "-", "speculation off"])
            continue
        table.add_row(
            [
                epoch,
                f"{time:.0f}s",
                f"{hyperparams.abort_time_s:.3f}s",
                f"{hyperparams.abort_rate:.3f}",
                f"{hyperparams.threshold_count(cluster.num_workers):.1f} pushes",
            ]
        )
    print(table.render())
    print(
        f"\nepochs tuned: {scheduler.epochs_completed}, "
        f"re-syncs sent: {scheduler.resyncs_sent}, "
        f"aborts honored: {result.total_aborts}"
    )
    print(
        f"mean iteration time ~{workload.paper_iteration_time_s:.0f}s -> "
        "the tuned window settles at a fraction of it."
    )


if __name__ == "__main__":
    main()
