#!/usr/bin/env python
"""SpecSync across real OS processes — the strongest protocol validation.

Workers are ``multiprocessing`` processes with no shared memory; the
parameter server is its own process; pulls, pushes, and notifications cross
real pipes; and the central scheduler (running in the parent, like the
paper's Fig. 7 architecture) aborts workers through IPC events.  Compare
the ASP and SpecSync rows: the abort machinery works identically to the
simulator, on genuinely concurrent hardware.

Run:
    python examples/multiprocess_backend.py      (~3 seconds)
"""

import numpy as np

from repro.cluster.compute import ComputeTimeModel
from repro.core.tuning import AdaptiveTuner
from repro.ml import SoftmaxRegressionModel, SyntheticImageDataset
from repro.ml.optim import ConstantSchedule, SgdUpdateRule
from repro.runtime import MultiprocessRun
from repro.utils.tables import TextTable


def build_run(tuner):
    dataset = SyntheticImageDataset(
        num_classes=5, feature_dim=12, num_samples=2500,
        class_separation=3.0, warp=False, seed=0,
    )
    partitions = dataset.partition(6, np.random.default_rng(0))
    return MultiprocessRun(
        model=SoftmaxRegressionModel(input_dim=12, num_classes=5),
        partitions=partitions,
        eval_batch=dataset.eval_batch(),
        update_rule=SgdUpdateRule(ConstantSchedule(0.3)),
        compute_model=ComputeTimeModel(mean_time_s=4.0, jitter_sigma=0.1),
        batch_size=48,
        time_scale=0.003,  # 1 virtual second -> 3 ms wall
        tuner=tuner,
        seed=1,
    )


def main() -> None:
    table = TextTable(
        ["backend", "iterations", "aborts", "re-syncs", "epochs tuned",
         "mean staleness", "final loss"],
        title="Multi-process backend: 6 worker processes + 1 server process",
    )
    for label, tuner in [
        ("processes + ASP", None),
        ("processes + SpecSync-Adaptive", AdaptiveTuner()),
    ]:
        result = build_run(tuner).run(duration_s=1.2)
        table.add_row(
            [
                label,
                result.total_iterations,
                result.total_aborts,
                result.resyncs_sent,
                result.epochs_tuned,
                f"{result.mean_staleness:.2f}",
                f"{result.final_loss:.4f}",
            ]
        )
    print(table.render())
    print(
        "\nEvery pull/push/notify crossed a real OS pipe; aborts were "
        "delivered through multiprocessing Events."
    )


if __name__ == "__main__":
    main()
