#!/usr/bin/env python
"""A four-worker micro-cluster walkthrough of the paper's Fig. 2 / Fig. 6.

The paper's running example uses four workers with different iteration
times: asynchrony makes some workers compute on badly stale parameters
(Fig. 2), and speculative synchronization fixes exactly the workers that
would otherwise miss a burst of peer pushes (Fig. 6).  This script builds
that situation deterministically — four workers with distinct constant
iteration times, no jitter — runs SpecSync with fixed hyperparameters, and
prints the event timeline (pulls, pushes, aborts) so the abort-and-refresh
decisions are visible one by one.

Run:
    python examples/paper_walkthrough.py
"""

import numpy as np

from repro import ClusterSpec, SpecSyncHyperparams, SpecSyncPolicy
from repro.cluster.compute import ComputeTimeModel
from repro.ps.engine import EngineConfig, TrainingEngine
from repro.utils.tables import TextTable
from repro.workloads import tiny_workload


def main() -> None:
    workload = tiny_workload()
    cluster = ClusterSpec.homogeneous(4)
    dataset = workload.dataset_factory(0)
    partitions = dataset.partition(4, np.random.default_rng(0))

    # Distinct, deterministic iteration times (the Fig. 2 setting).
    compute_models = [
        ComputeTimeModel(mean_time_s=t, jitter_sigma=0.0)
        for t in (1.0, 1.35, 1.7, 2.05)
    ]
    # Fixed speculation: watch 0.5s after each pull; abort when >= 2 of the
    # 4 workers (rate 0.4 -> threshold 1.6) pushed in that window.
    policy = SpecSyncPolicy.cherrypick(
        SpecSyncHyperparams(abort_time_s=0.5, abort_rate=0.4)
    )
    engine = TrainingEngine(
        model=workload.model_factory(),
        partitions=partitions,
        eval_batch=dataset.eval_batch(),
        update_rule=workload.update_rule_factory(),
        policy=policy,
        cluster=cluster,
        base_compute_model=compute_models[0],
        config=EngineConfig(
            batch_size=16, horizon_s=12.0, eval_interval_s=4.0,
            param_wire_bytes=1e5,
        ),
        seed=0,
        compute_models=compute_models,
        workload_name="walkthrough",
    )
    result = engine.run()

    events = []
    for pull in result.traces.pulls:
        kind = "re-pull (after abort)" if pull.is_restart else "pull"
        events.append((pull.time, pull.worker_id,
                       f"{kind}  (model version {pull.version})"))
    for push in result.traces.pushes:
        events.append((push.time, push.worker_id,
                       f"push  (missed {push.staleness} peer updates)"))
    for abort in result.traces.aborts:
        events.append((abort.time, abort.worker_id,
                       f"ABORT (discarded {abort.wasted_compute_s:.2f}s of compute)"))
    events.sort()

    table = TextTable(["virtual time", "worker", "event"],
                      title="SpecSync timeline, 4 workers (cf. paper Fig. 6)")
    for time, worker, text in events:
        table.add_row([f"{time:7.3f}s", f"worker-{worker}", text])
    print(table.render())

    print(
        f"\n{result.total_aborts} aborts in {result.total_iterations} "
        f"iterations; mean staleness {result.mean_staleness:.2f} "
        f"(ASP on this cluster would sit near 3)."
    )


if __name__ == "__main__":
    main()
