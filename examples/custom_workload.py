#!/usr/bin/env python
"""Bring your own workload: plug a custom model + dataset into SpecSync.

The library's Workload abstraction accepts any model implementing
``repro.ml.Model`` and any dataset implementing ``repro.ml.Dataset``.  This
example defines a fresh workload from library pieces — an MLP on a new
synthetic classification task with its own compute-time profile — and races
all five synchronization schemes on it.

Run:
    python examples/custom_workload.py      (~1 minute)
"""

from repro import (
    AspPolicy,
    BspPolicy,
    ClusterSpec,
    ComputeTimeModel,
    ConvergenceCriterion,
    NaiveWaitingPolicy,
    SpecSyncPolicy,
    SspPolicy,
    StragglerModel,
)
from repro.ml import MLPModel, SyntheticImageDataset
from repro.ml.optim import SgdUpdateRule, StepDecaySchedule
from repro.utils.tables import TextTable
from repro.workloads import Workload


def build_workload() -> Workload:
    """A brand-new workload: 20-class classification, 6s iterations."""
    return Workload(
        name="custom-20class",
        model_factory=lambda: MLPModel(
            input_dim=24, hidden_dims=[48], num_classes=20, reg=1e-4
        ),
        dataset_factory=lambda seed: SyntheticImageDataset(
            num_classes=20, feature_dim=24, num_samples=12_000,
            class_separation=3.0, warp=True, seed=11,
        ),
        update_rule_factory=lambda: SgdUpdateRule(
            schedule=StepDecaySchedule(
                initial_rate=0.45, milestones=(4000, 9000), decay=0.3
            ),
            clip_norm=10.0,
        ),
        batch_size=96,
        base_compute=ComputeTimeModel(
            mean_time_s=6.0,
            jitter_sigma=0.08,
            straggler=StragglerModel(probability=0.04, max_slowdown=3.0),
        ),
        param_wire_bytes=1.2e6 * 4,  # pretend the real model has 1.2M params
        convergence=ConvergenceCriterion(target_loss=1.0, consecutive=5),
        default_horizon_s=3000.0,
        eval_interval_s=12.0,
    )


def main() -> None:
    workload = build_workload()
    cluster = ClusterSpec.homogeneous(24)
    schemes = [
        ("Original (ASP)", AspPolicy()),
        ("BSP", BspPolicy()),
        ("SSP (s=3)", SspPolicy(staleness_bound=3)),
        ("Naive waiting (1s)", NaiveWaitingPolicy(1.0)),
        ("SpecSync-Adaptive", SpecSyncPolicy.adaptive()),
    ]

    table = TextTable(
        ["scheme", "time to target", "iterations", "mean staleness",
         "final loss"],
        title=(
            f"{workload.name} on {cluster.describe()} "
            f"(target {workload.convergence.target_loss})"
        ),
    )
    for name, policy in schemes:
        result = workload.run(cluster, policy, seed=5, early_stop=True)
        time_to_target = result.time_to_convergence(workload.convergence)
        table.add_row(
            [
                name,
                f"{time_to_target:.0f}s" if time_to_target else "never",
                result.total_iterations,
                f"{result.mean_staleness:.1f}",
                f"{result.final_loss:.3f}",
            ]
        )
        print(f"finished {name}")
    print()
    print(table.render())


if __name__ == "__main__":
    main()
