#!/usr/bin/env python
"""Run the SpecSync protocol on real threads instead of the simulator.

Everything in the other examples runs on a deterministic virtual clock.
This example exercises the *same* scheduler logic (notify → speculation
window → re-sync) with genuine concurrency: worker threads, a lock-guarded
parameter server, wall-clock timers.  Iteration times are scaled to
milliseconds so the demo finishes in about a second.

Run:
    python examples/threaded_backend.py
"""

import numpy as np

from repro.cluster.compute import ComputeTimeModel
from repro.core.tuning import AdaptiveTuner
from repro.ml import SoftmaxRegressionModel, SyntheticImageDataset
from repro.ml.optim import ConstantSchedule, SgdUpdateRule
from repro.runtime import ThreadedRun
from repro.utils.tables import TextTable


def build_run(tuner):
    dataset = SyntheticImageDataset(
        num_classes=5, feature_dim=12, num_samples=3000,
        class_separation=3.0, warp=False, seed=0,
    )
    partitions = dataset.partition(8, np.random.default_rng(0))
    return ThreadedRun(
        model=SoftmaxRegressionModel(input_dim=12, num_classes=5),
        partitions=partitions,
        eval_batch=dataset.eval_batch(),
        update_rule=SgdUpdateRule(ConstantSchedule(0.3)),
        compute_model=ComputeTimeModel(mean_time_s=4.0, jitter_sigma=0.1),
        batch_size=48,
        time_scale=0.001,  # 1 virtual second -> 1 ms of wall time
        tuner=tuner,
        seed=1,
    )


def main() -> None:
    table = TextTable(
        ["backend", "iterations", "aborts", "re-syncs", "epochs tuned",
         "mean staleness", "final loss"],
        title="Threaded backend: 8 worker threads, 0.6s wall each",
    )
    for label, tuner in [
        ("threads + ASP", None),
        ("threads + SpecSync-Adaptive", AdaptiveTuner()),
    ]:
        result = build_run(tuner).run(duration_s=0.6)
        table.add_row(
            [
                label,
                result.total_iterations,
                result.total_aborts,
                result.resyncs_sent,
                result.epochs_tuned,
                f"{result.mean_staleness:.2f}",
                f"{result.final_loss:.4f}",
            ]
        )
    print(table.render())
    print(
        "\nThe SpecSync scheduler class here is the same object the "
        "simulator uses — only the clock and timers differ."
    )


if __name__ == "__main__":
    main()
