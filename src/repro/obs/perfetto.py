"""Chrome trace-event (Perfetto) JSON export.

Lays a collected trace out in the JSON object format both
``chrome://tracing`` and https://ui.perfetto.dev open directly:

* one Perfetto *process* per clock domain (virtual time vs wall time —
  their microsecond axes must never share a timeline);
* one *thread* (track) per worker, plus server / scheduler / network
  tracks, named via ``M`` metadata events;
* spans as complete events (``ph: "X"``, microsecond ``ts``/``dur``),
  point events as instants (``ph: "i"``), causal links as flow pairs
  (``ph: "s"`` → ``ph: "f"``) — a re-synced worker's abort shows arrows
  from every peer push that triggered it.

The run's metrics snapshot rides along under a top-level ``"metrics"``
key and the profiler's snapshot under ``"perf"`` (the trace-event
format explicitly allows extra top-level keys); ``repro trace`` and
``repro perf report`` read them back for the text summaries.

Determinism: event order follows record order, flow ids are assigned
sequentially, and the JSON is dumped with sorted keys — a seeded DES run
exports byte-identical files, which the golden-file test pins.
"""

from __future__ import annotations

import json
import re
from typing import IO, Dict, List, Tuple, Union

from repro.obs.core import (
    FlowRecord,
    InstantRecord,
    SpanRecord,
    TraceCollector,
)

__all__ = ["to_chrome_trace", "write_chrome_trace", "TRACE_FORMAT_VERSION"]

#: Bumped whenever the layout of the exported JSON changes shape.
#: v2: top-level "perf" section; histogram snapshots carry exact
#: percentiles and non-empty buckets; metrics gained "gauges".
TRACE_FORMAT_VERSION = 2

#: Stable pid per clock domain (virtual first: it is the primary substrate).
_DOMAIN_PIDS = {"virtual": 1, "wall": 2}

_SECONDS_TO_US = 1e6

_WORKER_TRACK = re.compile(r"^(?:rt\.)?worker-(\d+)$")


def _track_sort_key(track: str) -> Tuple[int, int, str]:
    """Workers first (numeric order), then named tracks alphabetically."""
    match = _WORKER_TRACK.match(track)
    if match:
        return (0, int(match.group(1)), track)
    return (1, 0, track)


def _assign_tids(
    records: List[Union[SpanRecord, InstantRecord, FlowRecord]],
) -> Dict[Tuple[str, str], int]:
    """Deterministic (domain, track) → tid map, workers laid out first."""
    tracks = {}
    for record in records:
        if isinstance(record, FlowRecord):
            tracks[(record.domain, record.src_track)] = True
            tracks[(record.domain, record.dst_track)] = True
        else:
            tracks[(record.domain, record.track)] = True
    ordered = sorted(tracks, key=lambda key: (key[0], _track_sort_key(key[1])))
    return {key: tid for tid, key in enumerate(ordered, start=1)}


def _domain_origins(
    records: List[Union[SpanRecord, InstantRecord, FlowRecord]],
) -> Dict[str, float]:
    """Earliest timestamp per domain — wall clocks have arbitrary epochs."""
    origins: Dict[str, float] = {}
    for record in records:
        if isinstance(record, SpanRecord):
            first = record.start
        elif isinstance(record, InstantRecord):
            first = record.ts
        else:
            first = min(record.src_ts, record.dst_ts)
        held = origins.get(record.domain)
        if held is None or first < held:
            origins[record.domain] = first
    # The virtual clock starts at 0 by construction; keep its axis
    # absolute so span timestamps equal virtual seconds * 1e6.
    if "virtual" in origins:
        origins["virtual"] = min(origins["virtual"], 0.0)
    return origins


def to_chrome_trace(collector: TraceCollector) -> dict:
    """Render a collector as a Chrome trace-event JSON object."""
    records = list(collector.records)
    tids = _assign_tids(records)
    origins = _domain_origins(records)
    events: List[dict] = []

    # Metadata: name the processes (clock domains) and threads (tracks).
    named_domains = sorted({domain for domain, _track in tids})
    for domain in named_domains:
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": _DOMAIN_PIDS.get(domain, 99),
                "tid": 0,
                "args": {"name": f"{domain} time"},
            }
        )
    for (domain, track), tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _DOMAIN_PIDS.get(domain, 99),
                "tid": tid,
                "args": {"name": track},
            }
        )

    def _us(domain: str, seconds: float) -> float:
        return round((seconds - origins.get(domain, 0.0)) * _SECONDS_TO_US, 3)

    flow_id = 0
    for record in records:
        pid = _DOMAIN_PIDS.get(record.domain, 99)
        if isinstance(record, SpanRecord):
            event = {
                "ph": "X",
                "name": record.name,
                "cat": record.cat,
                "pid": pid,
                "tid": tids[(record.domain, record.track)],
                "ts": _us(record.domain, record.start),
                "dur": round(
                    max(record.end - record.start, 0.0) * _SECONDS_TO_US, 3
                ),
            }
            if record.args:
                event["args"] = record.args
            events.append(event)
        elif isinstance(record, InstantRecord):
            event = {
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "name": record.name,
                "cat": record.cat,
                "pid": pid,
                "tid": tids[(record.domain, record.track)],
                "ts": _us(record.domain, record.ts),
            }
            if record.args:
                event["args"] = record.args
            events.append(event)
        else:
            flow_id += 1
            start = {
                "ph": "s",
                "id": flow_id,
                "name": record.name,
                "cat": record.cat,
                "pid": pid,
                "tid": tids[(record.domain, record.src_track)],
                "ts": _us(record.domain, record.src_ts),
            }
            finish = {
                "ph": "f",
                "bp": "e",  # bind to the enclosing slice at the arrow head
                "id": flow_id,
                "name": record.name,
                "cat": record.cat,
                "pid": pid,
                "tid": tids[(record.domain, record.dst_track)],
                "ts": _us(record.domain, record.dst_ts),
            }
            if record.args:
                start["args"] = record.args
            events.append(start)
            events.append(finish)

    other_data = {"format_version": TRACE_FORMAT_VERSION}
    other_data.update({str(k): v for k, v in sorted(collector.metadata.items())})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other_data,
        "metrics": collector.metrics.snapshot(),
        "perf": collector.perf.snapshot(),
    }


def write_chrome_trace(collector: TraceCollector, destination: IO[str]) -> int:
    """Serialize the trace to an open text file; returns the event count."""
    trace = to_chrome_trace(collector)
    json.dump(trace, destination, indent=1, sort_keys=True)
    destination.write("\n")
    return len(trace["traceEvents"])
