"""The speculation ledger and staleness distributions.

SpecSync's objective F(Δ) = Σ(u_i − l_i) is a wasted-work-vs-freshness
ledger; this module computes its *realized* side from a trace:

* per worker: pulls / pushes / aborts, aborted-compute seconds (from the
  ``wasted_s`` the abort instants carry), the triggering peer-push
  counts, and the realized post-abort freshness gain — the version
  advance between the aborted iteration's original pull and its restart
  pull (exactly the staleness the abort avoided);
* per run: an empirical F(Δ) curve — the push history is reconstructed
  from the server's ``push_applied`` instants into a
  :class:`repro.core.tuning.EpochTrace` and replayed through the *same*
  Algorithm-1 estimators the adaptive tuner uses, so the analytic and
  empirical views are directly comparable;
* per worker staleness distributions: the ``staleness`` argument of each
  applied push (the PAP count of that iteration — pushes applied after
  the worker's pull), with the configured bound alongside for SSP
  schemes.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.core.tuning import (
    EpochTrace,
    candidate_windows,
    estimate_freshness_gain,
    freshness_improvement,
)
from repro.obs.analysis.graph import RunSegment, WORKER_TRACK_RE

__all__ = ["speculation_ledger", "staleness_distributions"]

#: cap on the F(Δ) curve's candidate windows (full runs have thousands of
#: pairwise push gaps; the curve is for reporting, not for tuning)
_MAX_CURVE_POINTS = 32

#: push-history sample size fed to :func:`candidate_windows` — the
#: candidate generator takes *pairwise* time diffs (quadratic in the
#: list), which is fine for the tuner's per-epoch traces but not for a
#: whole run's history; an evenly-spaced sample keeps the curve's
#: support without the blowup
_MAX_CANDIDATE_PUSHES = 256

_SSP_BOUND_RE = re.compile(r"\bssp\(s=(\d+)\)")


def _worker_id(track: str) -> Optional[int]:
    match = WORKER_TRACK_RE.match(track)
    return int(match.group(1)) if match else None


def _stats(values: List[float]) -> Dict[str, object]:
    """count/mean/max plus exact nearest-rank p50/p95 — tiny and stable."""
    if not values:
        return {"count": 0, "mean": None, "p50": None, "p95": None, "max": None}
    ordered = sorted(values)
    count = len(ordered)

    def _percentile(q: int) -> float:
        # exact nearest-rank: ceil(q/100 * n)
        rank = max(1, (q * count + 99) // 100)
        return ordered[rank - 1]

    return {
        "count": count,
        "mean": sum(ordered) / count,
        "p50": _percentile(50),
        "p95": _percentile(95),
        "max": ordered[-1],
    }


def _push_history(run: RunSegment) -> List[tuple]:
    """(time, worker) of every applied push, in time order."""
    pushes = []
    for instant in run.named_instants("push_applied"):
        worker = instant.args.get("worker")
        if worker is not None:
            pushes.append((instant.ts, int(worker)))
    pushes.sort()
    return pushes


def _reconstruct_epoch_trace(run: RunSegment) -> Optional[EpochTrace]:
    """Rebuild a tuner-compatible :class:`EpochTrace` from the push instants."""
    pushes = _push_history(run)
    if len(pushes) < 2:
        return None
    workers = {w for _t, w in pushes}
    last_push: Dict[int, float] = {}
    gaps: Dict[int, List[float]] = {}
    previous: Dict[int, float] = {}
    for ts, worker in pushes:
        last = previous.get(worker)
        if last is not None and ts > last:
            gaps.setdefault(worker, []).append(ts - last)
        previous[worker] = ts
        last_push[worker] = ts
    spans = {
        worker: sum(values) / len(values) for worker, values in gaps.items()
    }
    num_workers = run.meta.get("workers")
    if not isinstance(num_workers, int) or num_workers < 1:
        num_workers = max(workers) + 1
    return EpochTrace(
        num_workers=num_workers,
        pushes=pushes,
        last_push_by_worker=last_push,
        iteration_spans=spans,
    )


def _observed_window(run: RunSegment) -> Optional[float]:
    """Mean realized speculation window Δ from the re-sync decisions."""
    windows = []
    for instant in run.named_instants("resync_decision"):
        start = instant.args.get("window_start")
        if isinstance(start, (int, float)):
            windows.append(instant.ts - float(start))
    if not windows:
        return None
    return sum(windows) / len(windows)


def speculation_ledger(run: RunSegment) -> Dict[str, object]:
    """The per-run speculation ledger (see module docstring)."""
    per_worker: Dict[str, Dict[str, object]] = {}
    total_aborts = 0
    total_wasted = 0.0
    all_gains: List[float] = []
    empirical_by_worker: Dict[int, List[float]] = {}

    for track in run.worker_tracks():
        worker = _worker_id(track)
        spans = run.track_spans(track)
        pulls = [s for s in spans if s.name == "pull"]
        pushes = [s for s in spans if s.name == "push"]
        aborts = run.named_instants("abort", track)
        wasted = 0.0
        peer_pushes: List[int] = []
        for instant in aborts:
            if isinstance(instant.args.get("wasted_s"), (int, float)):
                wasted += float(instant.args["wasted_s"])
            if isinstance(instant.args.get("peer_pushes"), int):
                peer_pushes.append(instant.args["peer_pushes"])
        if wasted == 0.0 and aborts:
            # traces from older builds: fall back to the aborted spans
            wasted = sum(
                s.duration for s in spans
                if s.name == "compute" and s.args.get("aborted")
            )
        pulls_by_iteration: Dict[object, List] = {}
        for span in pulls:
            pulls_by_iteration.setdefault(
                span.args.get("iteration"), []
            ).append(span)
        gains: List[float] = []
        for instant in aborts:
            iteration = instant.args.get("iteration")
            if iteration is None:
                continue
            initial = None
            restart = None
            for span in pulls_by_iteration.get(iteration, ()):
                if span.args.get("restart"):
                    if span.end >= instant.ts and restart is None:
                        restart = span
                elif span.end <= instant.ts + 1e-9:
                    initial = span  # last original pull before the abort
            if (
                initial is not None and restart is not None
                and isinstance(initial.args.get("version"), int)
                and isinstance(restart.args.get("version"), int)
            ):
                gains.append(restart.args["version"] - initial.args["version"])
        total_aborts += len(aborts)
        total_wasted += wasted
        all_gains.extend(gains)
        if worker is not None and gains:
            empirical_by_worker[worker] = gains
        per_worker[track] = {
            "pulls": len(pulls),
            "pushes": len(pushes),
            "aborts": len(aborts),
            "aborted_compute_s": wasted,
            "peer_push_counts": peer_pushes,
            "realized_freshness_gain": _stats([float(g) for g in gains]),
        }

    ledger: Dict[str, object] = {
        "scheme": run.meta.get("scheme"),
        "per_worker": per_worker,
        "total_aborts": total_aborts,
        "total_aborted_compute_s": total_wasted,
        "mean_realized_gain": (
            sum(all_gains) / len(all_gains) if all_gains else None
        ),
    }

    trace = _reconstruct_epoch_trace(run)
    window = _observed_window(run)
    if trace is not None:
        push_times = trace.push_times()
        if len(push_times) > _MAX_CANDIDATE_PUSHES:
            step = len(push_times) / _MAX_CANDIDATE_PUSHES
            sample = [
                push_times[int(i * step)]
                for i in range(_MAX_CANDIDATE_PUSHES)
            ]
        else:
            sample = push_times
        candidates = candidate_windows(sample, _MAX_CURVE_POINTS)
        ledger["freshness_curve"] = [
            {
                "window_s": delta,
                "improvement": freshness_improvement(trace, delta, push_times),
            }
            for delta in candidates
        ]
        if window is not None:
            ledger["observed_window_s"] = window
            # The analytic side of the acceptance check: Algorithm 1's
            # ũ_i(Δ) on the reconstructed push trace at the realized Δ.
            ledger["analytic_gain_by_worker"] = {
                str(worker): estimate_freshness_gain(
                    trace, worker, window, push_times
                )
                for worker in sorted(empirical_by_worker)
            }
            ledger["empirical_gain_by_worker"] = {
                str(worker): sum(gains) / len(gains)
                for worker, gains in sorted(empirical_by_worker.items())
            }
    return ledger


def staleness_distributions(run: RunSegment) -> Dict[str, object]:
    """Per-worker staleness of applied pushes (effective vs bound for SSP)."""
    by_worker: Dict[int, List[float]] = {}
    for instant in run.named_instants("push_applied"):
        worker = instant.args.get("worker")
        staleness = instant.args.get("staleness")
        if worker is None or not isinstance(staleness, (int, float)):
            continue
        by_worker.setdefault(int(worker), []).append(float(staleness))
    scheme = str(run.meta.get("scheme") or "")
    bound_match = _SSP_BOUND_RE.search(scheme)
    bound = int(bound_match.group(1)) if bound_match else None
    return {
        "bound": bound,
        "per_worker": {
            str(worker): _stats(values)
            for worker, values in sorted(by_worker.items())
        },
    }
