"""Critical-path extraction and time attribution.

The attribution model walks one worker track over the run window and
classifies every second into exactly one category, so the categories
always sum to the walked window (the acceptance invariant ``repro
analyze`` is tested against):

* ``compute`` — clean (un-aborted) gradient computation;
* ``network`` — pull and push spans (wire time + server service);
* ``abort_wasted_work`` — the head of an aborted compute span, up to the
  moment the scheduler decided to re-sync: speculation's sunk cost;
* ``scheduler_decision`` — the tail of an aborted compute span between
  the re-sync decision and the abort landing on the worker (decision
  latency + control-message flight), recovered from the decision flow
  arrow (``args.decision``) the scheduler stages;
* ``sync_wait`` — everything else: barrier/bound parking, pull-delay
  gating, and the tail after a worker's last event (an in-flight
  iteration cut off by the horizon emits no span).

The *critical path* walks the track that determined the makespan (the
worker whose last event ends latest); :func:`per_worker_breakdown` runs
the same walk on every worker for the covering decomposition.  Per-epoch
splits clip the attributed pieces at the scheduler's ``epoch_retuned``
instants.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from repro.obs.analysis.graph import AnalyzedSpan, RunSegment

__all__ = ["ATTRIBUTION_CATEGORIES", "critical_path", "per_worker_breakdown"]

#: Every attributed second lands in exactly one of these.
ATTRIBUTION_CATEGORIES = (
    "compute",
    "network",
    "sync_wait",
    "scheduler_decision",
    "abort_wasted_work",
)

#: matching tolerance for "this flow arrow lands on this abort" — trace
#: timestamps are rounded to 1e-3 µs by the exporter, i.e. 1e-9 s
_TS_TOLERANCE = 1e-8

#: leaf span names attributed as wire/server time
_NETWORK_SPANS = frozenset({"pull", "push"})


def _decision_times(run: RunSegment) -> Dict[Tuple[str, float], float]:
    """(dst_track, rounded abort ts) → scheduler decision time.

    The scheduler stages one flow origin per contributing peer push plus
    one *decision* origin (``args.decision``); all close at the abort
    point.  The decision origin's source timestamp is when the scheduler
    committed to the re-sync.
    """
    decisions: Dict[Tuple[str, float], float] = {}
    for flow in run.flows:
        if flow.args.get("decision"):
            decisions[(flow.dst_track, round(flow.dst_ts, 7))] = flow.src_ts
    return decisions


def _decision_for(
    decisions: Dict[Tuple[str, float], float], span: AnalyzedSpan
) -> Optional[float]:
    exact = decisions.get((span.track, round(span.end, 7)))
    if exact is not None:
        return exact
    for (track, ts), decided in decisions.items():
        if track == span.track and abs(ts - span.end) <= _TS_TOLERANCE:
            return decided
    return None


def _walk_track(
    spans: List[AnalyzedSpan],
    window: Tuple[float, float],
    decisions: Dict[Tuple[str, float], float],
) -> List[Tuple[str, float, float]]:
    """Attribute ``window`` over a track's leaf spans.

    Returns ``(category, start, end)`` pieces that tile the window
    exactly: gaps become ``sync_wait``, overlaps are clipped (the DES
    never overlaps spans on one track; clipping keeps synthetic traces
    from double-counting).
    """
    start, end = window
    pieces: List[Tuple[str, float, float]] = []
    cursor = start
    for span in spans:
        if span.cat == "iteration" or span.name == "iteration":
            continue  # container span: its children are the leaves
        piece_start = max(span.start, cursor)
        piece_end = min(span.end, end)
        if piece_end <= piece_start:
            continue
        if piece_start > cursor:
            pieces.append(("sync_wait", cursor, piece_start))
        if span.name in _NETWORK_SPANS:
            pieces.append(("network", piece_start, piece_end))
        elif span.name == "compute" and span.args.get("aborted"):
            decided = _decision_for(decisions, span)
            if decided is None or decided <= piece_start:
                pieces.append(("abort_wasted_work", piece_start, piece_end))
            elif decided >= piece_end:
                pieces.append(("abort_wasted_work", piece_start, piece_end))
            else:
                pieces.append(("abort_wasted_work", piece_start, decided))
                pieces.append(("scheduler_decision", decided, piece_end))
        elif span.name == "compute":
            pieces.append(("compute", piece_start, piece_end))
        else:
            # unknown leaf span (future instrumentation): count it as
            # compute-side busy time rather than dropping the interval
            pieces.append(("compute", piece_start, piece_end))
        cursor = max(cursor, piece_end)
    if cursor < end:
        pieces.append(("sync_wait", cursor, end))
    return pieces


def _aggregate(
    pieces: List[Tuple[str, float, float]],
) -> Dict[str, float]:
    totals = {category: 0.0 for category in ATTRIBUTION_CATEGORIES}
    for category, start, end in pieces:
        totals[category] += end - start
    return totals


def _aggregate_by_epoch(
    pieces: List[Tuple[str, float, float]], edges: List[float]
) -> List[Dict[str, float]]:
    """Distribute pieces over the epoch windows ``edges`` in one pass.

    A per-epoch clip-and-rescan is quadratic when the tuner retunes
    thousands of times; here each piece is bisected to its first epoch
    and split forward only as far as it actually extends.
    """
    totals = [
        {category: 0.0 for category in ATTRIBUTION_CATEGORIES}
        for _ in range(len(edges) - 1)
    ]
    last = len(edges) - 2
    for category, start, end in pieces:
        index = min(max(bisect.bisect_right(edges, start) - 1, 0), last)
        while index <= last and edges[index] < end:
            lo = max(start, edges[index])
            hi = min(end, edges[index + 1])
            if hi > lo:
                totals[index][category] += hi - lo
            index += 1
    return totals


def _epoch_boundaries(run: RunSegment, window: Tuple[float, float]) -> List[float]:
    """Epoch split points: the scheduler's retune instants inside the window."""
    times = sorted(
        i.ts for i in run.named_instants("epoch_retuned")
        if window[0] < i.ts < window[1]
    )
    return times


def _critical_track(run: RunSegment) -> Optional[str]:
    """The worker track whose last leaf event ends latest (makespan)."""
    best: Optional[Tuple[float, int]] = None
    best_track: Optional[str] = None
    for order, track in enumerate(run.worker_tracks()):
        spans = [
            s for s in run.track_spans(track)
            if not (s.cat == "iteration" or s.name == "iteration")
        ]
        if not spans:
            continue
        last_end = max(s.end for s in spans)
        # later end wins; ties go to the earlier worker id for determinism
        key = (last_end, -order)
        if best is None or key > best:
            best = key
            best_track = track
    return best_track


def critical_path(run: RunSegment) -> Dict[str, object]:
    """Attribute the run window along the makespan-determining worker.

    The ``by_category`` seconds sum to ``total_s`` exactly (modulo float
    addition); ``epochs`` re-aggregates the same pieces between the
    scheduler's retune instants.
    """
    track = _critical_track(run)
    window = run.window()
    if track is None:
        return {
            "track": None,
            "total_s": 0.0,
            "by_category": {c: 0.0 for c in ATTRIBUTION_CATEGORIES},
            "epochs": [],
        }
    decisions = _decision_times(run)
    pieces = _walk_track(run.track_spans(track), window, decisions)
    boundaries = _epoch_boundaries(run, window)
    edges = [window[0]] + boundaries + [window[1]]
    epochs = [
        {
            "epoch": epoch_index,
            "start_s": edges[epoch_index],
            "end_s": edges[epoch_index + 1],
            "by_category": by_category,
        }
        for epoch_index, by_category in enumerate(
            _aggregate_by_epoch(pieces, edges)
        )
    ]
    return {
        "track": track,
        "total_s": window[1] - window[0],
        "by_category": _aggregate(pieces),
        "epochs": epochs,
    }


def per_worker_breakdown(run: RunSegment) -> Dict[str, Dict[str, object]]:
    """The same attribution walk on every worker track (covering view)."""
    window = run.window()
    decisions = _decision_times(run)
    breakdown: Dict[str, Dict[str, object]] = {}
    for track in run.worker_tracks():
        pieces = _walk_track(run.track_spans(track), window, decisions)
        breakdown[track] = {
            "total_s": window[1] - window[0],
            "by_category": _aggregate(pieces),
        }
    return breakdown
