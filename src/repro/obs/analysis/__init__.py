"""repro.obs.analysis — causal trace analytics.

Turns a trace-format-v2 capture (the write side: :mod:`repro.obs.perfetto`)
back into explanations:

* :mod:`graph` rebuilds the causal graph — spans, instants, and the
  abort flow arrows — and segments the event stream into runs;
* :mod:`critical_path` walks the makespan-determining worker track and
  attributes every second to compute / network / sync-wait /
  scheduler-decision / abort-wasted-work;
* :mod:`ledger` computes the speculation ledger: PAP counts, aborted
  compute seconds, realized post-abort freshness gains, and the
  empirical F(Δ) curve replayed through :mod:`repro.core.tuning`;
* :mod:`report` bundles all of it into schema-versioned JSON plus the
  text/comparison renderers behind ``repro analyze``.

See docs/observability.md ("Trace analytics") for the model.
"""

from repro.obs.analysis.critical_path import (
    ATTRIBUTION_CATEGORIES,
    critical_path,
    per_worker_breakdown,
)
from repro.obs.analysis.graph import (
    AnalysisError,
    CausalGraph,
    RunSegment,
)
from repro.obs.analysis.ledger import speculation_ledger, staleness_distributions
from repro.obs.analysis.report import (
    ANALYSIS_SCHEMA_VERSION,
    analysis_bench_payload,
    analyze_trace,
    render_analysis_comparison,
    render_analysis_text,
)

__all__ = [
    "ATTRIBUTION_CATEGORIES",
    "AnalysisError",
    "CausalGraph",
    "RunSegment",
    "ANALYSIS_SCHEMA_VERSION",
    "analysis_bench_payload",
    "analyze_trace",
    "critical_path",
    "per_worker_breakdown",
    "render_analysis_comparison",
    "render_analysis_text",
    "speculation_ledger",
    "staleness_distributions",
]
