"""Causal-graph reconstruction from exported Chrome trace-event JSON.

The exporter (:mod:`repro.obs.perfetto`) lays one Perfetto process per
clock domain and one thread per track; this module inverts that layout:
``M`` metadata events rebuild the (pid, tid) → (domain, track) map,
complete spans and instants come back in seconds, and ``s``/``f`` flow
pairs are re-joined by id into causal arrows.

Because several engines may share one collector (``repro compare
--trace`` runs every scheme back to back, each restarting virtual time
at 0), the event stream is segmented into :class:`RunSegment` objects on
the ``run_start`` instants the engine emits; traces captured before
those markers existed fall back to a single implicit segment per clock
domain.

Malformed causality is a hard error, not a silent skip: a flow finish
with no matching start (or a start that never finishes) means the trace
cannot support attribution, and :class:`AnalysisError` says exactly
which id broke.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "AnalysisError",
    "AnalyzedSpan",
    "AnalyzedInstant",
    "AnalyzedFlow",
    "RunSegment",
    "CausalGraph",
    "WORKER_TRACK_RE",
]

_US_TO_S = 1e-6

#: Worker tracks in both namespaces (DES ``worker-N``, runtime
#: ``rt.worker-N``) — everything else is infrastructure (server,
#: scheduler, network).
WORKER_TRACK_RE = re.compile(r"^(?:rt\.)?worker-(\d+)$")


class AnalysisError(ValueError):
    """The trace cannot support causal analysis (schema/causality defect)."""


@dataclass(frozen=True)
class AnalyzedSpan:
    """One complete span, back in seconds on a named track."""

    track: str
    name: str
    cat: str
    start: float
    end: float
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class AnalyzedInstant:
    """One point event on a named track."""

    track: str
    name: str
    cat: str
    ts: float
    args: dict = field(default_factory=dict)


@dataclass(frozen=True)
class AnalyzedFlow:
    """One causal arrow (flow pair re-joined by id)."""

    name: str
    cat: str
    src_track: str
    src_ts: float
    dst_track: str
    dst_ts: float
    args: dict = field(default_factory=dict)


@dataclass
class RunSegment:
    """One engine run's worth of events on one clock domain."""

    index: int
    domain: str
    #: the ``run_start`` instant's args (workload/scheme/seed/workers/
    #: horizon_s), or the trace's ``otherData`` for implicit segments
    meta: Dict[str, object] = field(default_factory=dict)
    #: the matching ``run_end`` instant's args, when present
    end_meta: Dict[str, object] = field(default_factory=dict)
    spans: List[AnalyzedSpan] = field(default_factory=list)
    instants: List[AnalyzedInstant] = field(default_factory=list)
    flows: List[AnalyzedFlow] = field(default_factory=list)
    #: explicit run boundaries (run_start/run_end instants), when present
    start_ts: Optional[float] = None
    end_ts: Optional[float] = None

    @property
    def explicit(self) -> bool:
        """True when the segment came from a ``run_start`` marker."""
        return self.start_ts is not None

    def worker_tracks(self) -> List[str]:
        """Worker tracks present, sorted by worker id."""
        tracks = {s.track for s in self.spans} | {i.track for i in self.instants}
        workers = []
        for track in tracks:
            match = WORKER_TRACK_RE.match(track)
            if match:
                workers.append((int(match.group(1)), track))
        return [track for _id, track in sorted(workers)]

    def window(self) -> Tuple[float, float]:
        """The analysis window ``[start, end]`` in seconds.

        Explicit segments use the run markers (the run's virtual
        duration); implicit ones span the observed events.
        """
        if self.start_ts is not None:
            end = self.end_ts
            if end is None:
                end = max(
                    [self.start_ts]
                    + [s.end for s in self.spans]
                    + [i.ts for i in self.instants]
                )
            return (self.start_ts, end)
        starts = [s.start for s in self.spans] + [i.ts for i in self.instants]
        ends = [s.end for s in self.spans] + [i.ts for i in self.instants]
        if not starts:
            return (0.0, 0.0)
        return (min(starts), max(ends))

    @property
    def duration_s(self) -> float:
        start, end = self.window()
        return end - start

    def track_spans(self, track: str) -> List[AnalyzedSpan]:
        """Spans on one track, ordered by start time."""
        return sorted(
            (s for s in self.spans if s.track == track),
            key=lambda s: (s.start, s.end),
        )

    def named_instants(self, name: str, track: Optional[str] = None) -> List[AnalyzedInstant]:
        """Instants with ``name`` (optionally restricted to one track)."""
        return [
            i for i in self.instants
            if i.name == name and (track is None or i.track == track)
        ]


@dataclass
class CausalGraph:
    """Every run segment reconstructed from one trace file."""

    runs: List[RunSegment] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)
    format_version: Optional[int] = None

    @classmethod
    def from_trace(cls, trace: dict) -> "CausalGraph":
        """Rebuild the causal graph from a parsed trace-event object.

        Raises:
            AnalysisError: on structural defects — missing/foreign
                ``traceEvents``, events on unnamed threads, or flow
                pairs with a missing parent.
        """
        events = trace.get("traceEvents")
        if not isinstance(events, list):
            raise AnalysisError(
                "not a Chrome trace-event object (missing 'traceEvents' list)"
            )
        metadata = trace.get("otherData", {})
        if not isinstance(metadata, dict):
            raise AnalysisError("'otherData' must be an object")
        format_version = metadata.get("format_version")
        if format_version is not None and not isinstance(format_version, int):
            raise AnalysisError(
                f"non-integer format_version {format_version!r}"
            )

        domains: Dict[int, str] = {}
        tracks: Dict[Tuple[int, int], str] = {}
        for event in events:
            if event.get("ph") != "M":
                continue
            if event.get("name") == "process_name":
                label = str(event.get("args", {}).get("name", ""))
                # the exporter names processes "<domain> time"
                domains[event["pid"]] = (
                    label[: -len(" time")] if label.endswith(" time") else label
                )
            elif event.get("name") == "thread_name":
                tracks[(event["pid"], event["tid"])] = str(
                    event.get("args", {}).get("name", "")
                )

        graph = cls(metadata=dict(metadata), format_version=format_version)
        #: current segment per domain (created lazily / on run_start)
        current: Dict[str, RunSegment] = {}
        #: open flow starts by id: (segment, name, cat, track, ts, args)
        open_flows: Dict[object, Tuple[RunSegment, str, str, str, float, dict]] = {}

        def _track_of(event: dict) -> str:
            key = (event.get("pid"), event.get("tid"))
            track = tracks.get(key)
            if track is None:
                raise AnalysisError(
                    f"event {event.get('name')!r} on unnamed thread "
                    f"pid={key[0]} tid={key[1]} (missing thread_name metadata)"
                )
            return track

        def _domain_of(event: dict) -> str:
            return domains.get(event.get("pid"), f"pid-{event.get('pid')}")

        def _segment_for(event: dict) -> RunSegment:
            domain = _domain_of(event)
            segment = current.get(domain)
            if segment is None:
                segment = RunSegment(
                    index=len(graph.runs), domain=domain,
                    meta={
                        k: v for k, v in graph.metadata.items()
                        if k != "format_version"
                    },
                )
                graph.runs.append(segment)
                current[domain] = segment
            return segment

        for event in events:
            phase = event.get("ph")
            if phase == "M":
                continue
            if phase == "X":
                start = float(event.get("ts", 0.0)) * _US_TO_S
                end = start + float(event.get("dur", 0.0)) * _US_TO_S
                _segment_for(event).spans.append(
                    AnalyzedSpan(
                        track=_track_of(event),
                        name=str(event.get("name", "")),
                        cat=str(event.get("cat", "")),
                        start=start,
                        end=end,
                        args=dict(event.get("args") or {}),
                    )
                )
            elif phase == "i":
                ts = float(event.get("ts", 0.0)) * _US_TO_S
                name = str(event.get("name", ""))
                args = dict(event.get("args") or {})
                domain = _domain_of(event)
                if name == "run_start":
                    segment = RunSegment(
                        index=len(graph.runs), domain=domain,
                        meta=args, start_ts=ts,
                    )
                    graph.runs.append(segment)
                    current[domain] = segment
                segment = _segment_for(event)
                if name == "run_end":
                    segment.end_meta = args
                    segment.end_ts = ts
                segment.instants.append(
                    AnalyzedInstant(
                        track=_track_of(event), name=name,
                        cat=str(event.get("cat", "")), ts=ts, args=args,
                    )
                )
            elif phase == "s":
                flow_id = event.get("id")
                if flow_id in open_flows:
                    raise AnalysisError(
                        f"duplicate flow start id={flow_id!r}"
                    )
                open_flows[flow_id] = (
                    _segment_for(event),
                    str(event.get("name", "")),
                    str(event.get("cat", "")),
                    _track_of(event),
                    float(event.get("ts", 0.0)) * _US_TO_S,
                    dict(event.get("args") or {}),
                )
            elif phase == "f":
                flow_id = event.get("id")
                start = open_flows.pop(flow_id, None)
                if start is None:
                    raise AnalysisError(
                        f"flow finish id={flow_id!r} has no matching start "
                        "(missing parent)"
                    )
                segment, name, cat, src_track, src_ts, args = start
                segment.flows.append(
                    AnalyzedFlow(
                        name=name, cat=cat,
                        src_track=src_track, src_ts=src_ts,
                        dst_track=_track_of(event),
                        dst_ts=float(event.get("ts", 0.0)) * _US_TO_S,
                        args=args,
                    )
                )
            # other phases (counter events etc.) are not produced by our
            # exporter; ignore them so foreign-but-valid traces still load
        if open_flows:
            ids = ", ".join(repr(i) for i in sorted(open_flows, key=repr)[:5])
            raise AnalysisError(
                f"{len(open_flows)} flow start(s) never finished "
                f"(dangling ids: {ids})"
            )
        return graph
