"""``repro analyze`` — the analytics bundle, renderers, and bench bridge.

:func:`analyze_trace` reduces a parsed trace file to one JSON-ready
object::

    {
      "schema_version": 1,
      "trace_format_version": 2,
      "runs": [
        {"index": 0, "domain": "virtual", "scheme": "...", ...,
         "critical_path": {...}, "per_worker": {...},
         "ledger": {...}, "staleness": {...}}
      ]
    }

Determinism: every float is rounded to 9 decimals and consumers dump
with ``sort_keys=True``, so a seeded DES run produces a byte-identical
analytics file (pinned by a golden test, ``REPRO_REGEN_GOLDEN=1`` to
regenerate).

:func:`analysis_bench_payload` re-expresses the speculation-efficiency
headline numbers in the ``BENCH_*.json`` schema so ``repro bench
--compare`` can gate them alongside the throughput benchmarks.
"""

from __future__ import annotations

from typing import Dict, List

from repro.obs.analysis.critical_path import (
    ATTRIBUTION_CATEGORIES,
    critical_path,
    per_worker_breakdown,
)
from repro.obs.analysis.graph import CausalGraph
from repro.obs.analysis.ledger import speculation_ledger, staleness_distributions
from repro.utils.tables import TextTable

__all__ = [
    "ANALYSIS_SCHEMA_VERSION",
    "analyze_trace",
    "render_analysis_text",
    "render_analysis_comparison",
    "analysis_bench_payload",
]

#: Bumped whenever the analytics JSON changes shape.
ANALYSIS_SCHEMA_VERSION = 1


def _rounded(value):
    """Round every float in a nested structure to 9 decimals (determinism)."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return round(value, 9)
    if isinstance(value, dict):
        return {key: _rounded(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_rounded(item) for item in value]
    return value


def analyze_trace(trace: dict) -> dict:
    """Full analytics for one parsed trace object.

    Raises:
        AnalysisError: when the trace cannot support causal analysis
            (see :class:`repro.obs.analysis.graph.CausalGraph`).
    """
    graph = CausalGraph.from_trace(trace)
    runs: List[dict] = []
    for run in graph.runs:
        runs.append(
            {
                "index": run.index,
                "domain": run.domain,
                "explicit": run.explicit,
                "workload": run.meta.get("workload"),
                "scheme": run.meta.get("scheme"),
                "seed": run.meta.get("seed"),
                "workers": len(run.worker_tracks()),
                "duration_s": run.duration_s,
                "total_iterations": run.end_meta.get("total_iterations"),
                "total_aborts": run.end_meta.get("total_aborts"),
                "critical_path": critical_path(run),
                "per_worker": per_worker_breakdown(run),
                "ledger": speculation_ledger(run),
                "staleness": staleness_distributions(run),
            }
        )
    return _rounded(
        {
            "schema_version": ANALYSIS_SCHEMA_VERSION,
            "trace_format_version": graph.format_version,
            "runs": runs,
        }
    )


# ----------------------------------------------------------------------
# Text rendering
# ----------------------------------------------------------------------
def _run_label(run: dict) -> str:
    parts = [f"run {run['index']}"]
    if run.get("workload"):
        parts.append(str(run["workload"]))
    if run.get("scheme"):
        parts.append(str(run["scheme"]))
    parts.append(f"{run['domain']} time")
    return " · ".join(parts)


def _category_row(by_category: Dict[str, float], total: float) -> List[str]:
    cells = []
    for category in ATTRIBUTION_CATEGORIES:
        seconds = by_category.get(category, 0.0)
        share = f" ({seconds / total:.1%})" if total else ""
        cells.append(f"{seconds:.4g}s{share}")
    return cells


def render_analysis_text(analysis: dict) -> str:
    """Human-readable analytics report, one section group per run."""
    sections: List[str] = [
        f"trace analytics (schema v{analysis['schema_version']}, "
        f"{len(analysis['runs'])} run(s))"
    ]
    for run in analysis["runs"]:
        path = run["critical_path"]
        table = TextTable(
            ["path"] + [c.replace("_", "-") for c in ATTRIBUTION_CATEGORIES],
            title=f"{_run_label(run)} — critical-path attribution "
                  f"(total {path['total_s']:.6g}s on {path['track']})",
        )
        table.add_row(
            ["critical"] + _category_row(path["by_category"], path["total_s"])
        )
        for track in sorted(run["per_worker"]):
            worker = run["per_worker"][track]
            table.add_row(
                [track]
                + _category_row(worker["by_category"], worker["total_s"])
            )
        sections.append(table.render())

        ledger = run["ledger"]
        lines = [
            f"speculation ledger: {ledger['total_aborts']} aborts, "
            f"{ledger['total_aborted_compute_s']:.6g}s aborted compute"
        ]
        if ledger.get("mean_realized_gain") is not None:
            lines.append(
                f"  mean realized freshness gain: "
                f"{ledger['mean_realized_gain']:.3g} versions/abort"
            )
        if ledger.get("observed_window_s") is not None:
            lines.append(
                f"  observed speculation window Δ ≈ "
                f"{ledger['observed_window_s']:.6g}s"
            )
        analytic = ledger.get("analytic_gain_by_worker") or {}
        empirical = ledger.get("empirical_gain_by_worker") or {}
        for worker in sorted(analytic, key=int):
            lines.append(
                f"  w{worker}: empirical gain {empirical.get(worker, 0):.3g} "
                f"vs analytic ũ(Δ) {analytic[worker]:.3g}"
            )
        curve = ledger.get("freshness_curve") or []
        if curve:
            best = max(curve, key=lambda p: p["improvement"])
            lines.append(
                f"  empirical F(Δ) curve: {len(curve)} candidates, "
                f"best Δ={best['window_s']:.6g}s "
                f"(F̃={best['improvement']:.4g})"
            )
        sections.append("\n".join(lines))

        staleness = run["staleness"]
        if staleness["per_worker"]:
            bound = staleness.get("bound")
            title = "staleness of applied pushes"
            if bound is not None:
                title += f" (SSP bound s={bound})"
            table = TextTable(
                ["worker", "pushes", "mean", "p95", "max"], title=title
            )
            for worker in sorted(staleness["per_worker"], key=int):
                stats = staleness["per_worker"][worker]
                table.add_row(
                    [
                        f"w{worker}",
                        str(stats["count"]),
                        f"{stats['mean']:.3g}" if stats["mean"] is not None else "-",
                        f"{stats['p95']:.3g}" if stats["p95"] is not None else "-",
                        f"{stats['max']:.3g}" if stats["max"] is not None else "-",
                    ]
                )
            sections.append(table.render())
    return "\n\n".join(sections)


# ----------------------------------------------------------------------
# Comparison rendering
# ----------------------------------------------------------------------
def _run_key(run: dict) -> tuple:
    return (run.get("workload"), run.get("scheme"), run.get("domain"))


def render_analysis_comparison(old: dict, new: dict) -> str:
    """Delta view between two analyses (matched by workload/scheme/domain)."""
    old_runs = {_run_key(run): run for run in old["runs"]}
    sections: List[str] = []
    table = TextTable(
        ["run", "category", "old s", "new s", "delta"],
        title="critical-path attribution deltas",
    )
    matched = 0
    for run in new["runs"]:
        other = old_runs.get(_run_key(run))
        if other is None:
            continue
        matched += 1
        label = _run_label(run)
        for category in ATTRIBUTION_CATEGORIES:
            old_s = other["critical_path"]["by_category"].get(category, 0.0)
            new_s = run["critical_path"]["by_category"].get(category, 0.0)
            if old_s == 0.0 and new_s == 0.0:
                continue
            table.add_row(
                [
                    label,
                    category.replace("_", "-"),
                    f"{old_s:.6g}",
                    f"{new_s:.6g}",
                    f"{new_s - old_s:+.6g}",
                ]
            )
        old_ledger, new_ledger = other["ledger"], run["ledger"]
        table.add_row(
            [
                label,
                "aborted-compute",
                f"{old_ledger['total_aborted_compute_s']:.6g}",
                f"{new_ledger['total_aborted_compute_s']:.6g}",
                f"{new_ledger['total_aborted_compute_s'] - old_ledger['total_aborted_compute_s']:+.6g}",
            ]
        )
    if not matched:
        return (
            "no comparable runs (workload/scheme/domain keys do not "
            "overlap between the two analyses)"
        )
    sections.append(table.render())
    return "\n\n".join(sections)


# ----------------------------------------------------------------------
# Bench bridge
# ----------------------------------------------------------------------
def _bench_name(run: dict) -> str:
    scheme = str(run.get("scheme") or "unknown")
    safe = "".join(ch if ch.isalnum() or ch in "+-." else "_" for ch in scheme)
    return f"analysis.run{run['index']}.{safe}"


def analysis_bench_payload(analysis: dict, scale: str = "analysis") -> dict:
    """Speculation-efficiency columns in the ``BENCH_*.json`` schema.

    The result loads through
    :func:`repro.perfbench.load_bench_payload` unchanged, so ``repro
    bench --compare old.json new.json`` gates analytics drift with the
    same PERF-* findings as the throughput benchmarks.  Virtual-time
    quantities are deterministic, hence ``kind="count"``.
    """
    from repro.perfbench.core import BenchResult, bench_payload

    results = []
    for run in analysis["runs"]:
        result = BenchResult(name=_bench_name(run), scale=scale)
        path = run["critical_path"]
        for category in ATTRIBUTION_CATEGORIES:
            result.add(
                f"critical_{category}_s",
                round(path["by_category"].get(category, 0.0), 9),
                unit="s",
                higher_is_better=(category == "compute"),
                kind="count",
            )
        ledger = run["ledger"]
        result.add(
            "aborted_compute_s",
            round(ledger["total_aborted_compute_s"], 9),
            unit="s", higher_is_better=False, kind="count",
        )
        result.add(
            "total_aborts", float(ledger["total_aborts"]),
            unit="aborts", higher_is_better=False, kind="count",
        )
        if ledger.get("mean_realized_gain") is not None:
            result.add(
                "mean_realized_gain",
                round(ledger["mean_realized_gain"], 9),
                unit="versions/abort", higher_is_better=True, kind="count",
            )
        results.append(result)
    return bench_payload(results, scale)
