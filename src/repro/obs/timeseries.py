"""Windowed time series and EWMA rates for online performance signals.

These are the raw material for the straggler/anomaly detectors: each
series keeps a bounded window of ``(timestamp, value)`` samples plus an
exponentially-weighted moving average over the *entire* stream.  Like
the rest of ``repro.obs`` this module never reads a clock — timestamps
are supplied by the caller (virtual seconds in the DES, injected wall
seconds in the runtime backends), so the DES side stays deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

__all__ = ["Ewma", "WindowedSeries"]


class Ewma:
    """Exponentially-weighted moving average with smoothing factor ``alpha``.

    The first sample initializes the average; subsequent samples fold in
    as ``alpha * sample + (1 - alpha) * value``.
    """

    def __init__(self, alpha: float = 0.2) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.value: Optional[float] = None

    def update(self, sample: float) -> float:
        """Fold one sample in; returns the updated average."""
        if self.value is None:
            self.value = float(sample)
        else:
            self.value = self.alpha * sample + (1.0 - self.alpha) * self.value
        return self.value

    def __repr__(self) -> str:
        return f"Ewma(alpha={self.alpha:g}, value={self.value})"


class WindowedSeries:
    """A named, bounded window of ``(timestamp, value)`` samples.

    Keeps the most recent ``window`` samples for windowed statistics
    (mean, rate, sparkline rendering) plus stream-lifetime aggregates
    (count, EWMA) that survive window eviction.
    """

    def __init__(
        self, name: str, window: int = 256, ewma_alpha: float = 0.2
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.name = name
        self.window = window
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=window)
        self._ewma = Ewma(ewma_alpha)
        self.count = 0

    def append(self, ts: float, value: float) -> None:
        """Record one sample at timestamp ``ts``."""
        self._samples.append((float(ts), float(value)))
        self._ewma.update(value)
        self.count += 1

    @property
    def last(self) -> Optional[float]:
        """Most recent value (None when empty)."""
        return self._samples[-1][1] if self._samples else None

    @property
    def ewma(self) -> Optional[float]:
        """Stream-lifetime EWMA of the values (None when empty)."""
        return self._ewma.value

    def values(self) -> List[float]:
        """The windowed values, oldest first."""
        return [v for _, v in self._samples]

    def mean(self) -> Optional[float]:
        """Mean of the windowed values (None when empty)."""
        if not self._samples:
            return None
        return sum(v for _, v in self._samples) / len(self._samples)

    def rate(self) -> Optional[float]:
        """Samples per time unit across the window (None if < 2 samples
        or zero elapsed time)."""
        if len(self._samples) < 2:
            return None
        elapsed = self._samples[-1][0] - self._samples[0][0]
        if elapsed <= 0:
            return None
        return (len(self._samples) - 1) / elapsed

    def snapshot(self) -> dict:
        """JSON-ready deterministic view: lifetime count/EWMA plus the
        windowed samples and their mean/rate."""
        return {
            "count": self.count,
            "window": [[t, v] for t, v in self._samples],
            "mean": self.mean(),
            "last": self.last,
            "ewma": self.ewma,
            "rate": self.rate(),
        }

    def __repr__(self) -> str:
        return (
            f"WindowedSeries({self.name!r}, count={self.count}, "
            f"window={len(self._samples)}/{self.window})"
        )
