"""repro.obs — unified observability: tracing, metrics, Perfetto export.

A zero-dependency span/counter/histogram layer that is **clock-agnostic**
(virtual time inside the DES, wall time in the runtime backends) and
**free when disabled** (every instrumentation site talks to a shared
no-op tracer).  See ``docs/observability.md`` for the span model, clock
domains, and a Perfetto walkthrough.

Typical use::

    from repro import obs

    with obs.collecting() as collector:
        result = workload.run(cluster, SpecSyncPolicy.adaptive(), seed=3)
    with open("out.json", "w", encoding="utf-8") as handle:
        obs.write_chrome_trace(collector, handle)

The resulting file opens directly in ``chrome://tracing`` or
https://ui.perfetto.dev with one track per worker, server and scheduler
tracks, and abort causality drawn as flow arrows.
"""

from repro.obs.clock import VIRTUAL, WALL, Clock, FunctionClock, VirtualClock
from repro.obs.core import (
    NULL_TRACER,
    FlowRecord,
    InstantRecord,
    NullTracer,
    SpanRecord,
    TraceCollector,
    Tracer,
    collecting,
    current_collector,
    disable,
    enable,
    tracer_for,
)
from repro.obs.analysis import (
    ANALYSIS_SCHEMA_VERSION,
    ATTRIBUTION_CATEGORIES,
    AnalysisError,
    CausalGraph,
    analysis_bench_payload,
    analyze_trace,
    render_analysis_comparison,
    render_analysis_text,
)
from repro.obs.log import (
    VirtualTimeLoggerAdapter,
    attach_cli_handler,
    get_logger,
    install_null_handler,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.perf import (
    NULL_PROFILER,
    PERF_SCHEMA_VERSION,
    NullProfiler,
    PerfProfile,
    Profiler,
    profiler_for,
)
from repro.obs.perf_report import render_perf_report
from repro.obs.perfetto import (
    TRACE_FORMAT_VERSION,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.straggler import AbortStormDetector, StragglerDetector
from repro.obs.timeseries import Ewma, WindowedSeries
from repro.obs.tracks import (
    RT_RUN_TRACK,
    RT_SCHEDULER_TRACK,
    RT_SERVER_TRACK,
    SCHEDULER_TRACK,
    SERVER_TRACK,
    resync_flow_key,
    rt_worker_track,
    worker_track,
)
from repro.obs.summary import (
    TraceSummary,
    load_trace,
    render_summary,
    summarize_trace,
)

__all__ = [
    "VIRTUAL",
    "WALL",
    "Clock",
    "FunctionClock",
    "VirtualClock",
    "NULL_TRACER",
    "FlowRecord",
    "InstantRecord",
    "NullTracer",
    "SpanRecord",
    "TraceCollector",
    "Tracer",
    "collecting",
    "current_collector",
    "disable",
    "enable",
    "tracer_for",
    "VirtualTimeLoggerAdapter",
    "attach_cli_handler",
    "get_logger",
    "install_null_handler",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_PROFILER",
    "PERF_SCHEMA_VERSION",
    "NullProfiler",
    "PerfProfile",
    "Profiler",
    "profiler_for",
    "render_perf_report",
    "AbortStormDetector",
    "StragglerDetector",
    "Ewma",
    "WindowedSeries",
    "TRACE_FORMAT_VERSION",
    "to_chrome_trace",
    "write_chrome_trace",
    "ANALYSIS_SCHEMA_VERSION",
    "ATTRIBUTION_CATEGORIES",
    "AnalysisError",
    "CausalGraph",
    "analysis_bench_payload",
    "analyze_trace",
    "render_analysis_comparison",
    "render_analysis_text",
    "TraceSummary",
    "load_trace",
    "render_summary",
    "summarize_trace",
    "SERVER_TRACK",
    "SCHEDULER_TRACK",
    "RT_SERVER_TRACK",
    "RT_SCHEDULER_TRACK",
    "RT_RUN_TRACK",
    "worker_track",
    "rt_worker_track",
    "resync_flow_key",
]
