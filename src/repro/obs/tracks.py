"""Track-name and flow-key conventions shared by all instrumented layers.

The exporter lays out one Perfetto thread per track name; the scheduler
registers abort-flow origins under the same key the engine closes at the
abort point.  Centralizing both here keeps the DES (``worker-N``) and
runtime (``rt.worker-N``) namespaces consistent and the causal pairing
typo-proof.
"""

from __future__ import annotations

from typing import Tuple

__all__ = [
    "SERVER_TRACK",
    "SCHEDULER_TRACK",
    "RT_SERVER_TRACK",
    "RT_SCHEDULER_TRACK",
    "RT_RUN_TRACK",
    "worker_track",
    "rt_worker_track",
    "resync_flow_key",
]

#: DES tracks (virtual-time domain)
SERVER_TRACK = "server"
SCHEDULER_TRACK = "scheduler"

#: Runtime-backend tracks (wall-time domain)
RT_SERVER_TRACK = "rt.server"
RT_SCHEDULER_TRACK = "rt.scheduler"
RT_RUN_TRACK = "rt.run"


def worker_track(worker_id: int) -> str:
    """The DES track for one worker."""
    return f"worker-{worker_id}"


def rt_worker_track(worker_id: int) -> str:
    """The runtime-backend track for one worker."""
    return f"rt.worker-{worker_id}"


def resync_flow_key(worker_id: int, iteration: int) -> Tuple[str, int, int]:
    """Pending-flow key linking a re-sync decision to the abort it causes."""
    return ("resync", worker_id, iteration)
