"""Text summaries of exported traces — the read side of ``repro trace``.

Works from the JSON file (not the live collector), so a trace captured on
one machine can be summarized on another, and the summary doubles as a
sanity check that the export is well-formed Chrome trace-event JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Dict, List, Optional, Tuple

from repro.utils.tables import TextTable

__all__ = ["TraceSummary", "summarize_trace", "load_trace", "render_summary"]


@dataclass
class TraceSummary:
    """Aggregates extracted from one trace file."""

    total_events: int = 0
    tracks: int = 0
    #: span name -> (count, total duration in µs)
    spans: Dict[str, Tuple[int, float]] = field(default_factory=dict)
    #: instant name -> count
    instants: Dict[str, int] = field(default_factory=dict)
    #: flow name -> complete (start, finish) pair count
    flows: Dict[str, int] = field(default_factory=dict)
    unpaired_flows: int = 0
    #: track name -> abort instants observed on it
    aborts_by_track: Dict[str, int] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, dict] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)
    #: the trace's top-level "perf" section (profiler snapshot), if any
    perf: Dict[str, object] = field(default_factory=dict)

    @property
    def abort_flow_pairs(self) -> int:
        """Complete causal arrows in the abort category."""
        return self.flows.get("abort", 0)

    @property
    def flow_accounting(self) -> Dict[str, float]:
        """Collector-side flow lifecycle counts (emitted/closed/discarded).

        Read from the ``obs.flow_*`` counters the collector maintains;
        older traces simply report zeros.
        """
        return {
            "emitted": self.counters.get("obs.flow_origins_registered", 0),
            "closed": self.counters.get("obs.flow_arrows_closed", 0),
            "discarded": self.counters.get("obs.flow_origins_discarded", 0),
        }

    @property
    def empty(self) -> bool:
        """True when the file carries neither events nor metrics/perf data
        (e.g. a capture where instrumentation never fired)."""
        return not (
            self.total_events
            or self.counters
            or self.gauges
            or self.histograms
            or self.perf
        )


def load_trace(source: IO[str]) -> dict:
    """Parse a trace file, validating the minimal structure we rely on."""
    trace = json.load(source)
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError(
            "not a Chrome trace-event file (missing 'traceEvents'); "
            "was this written by --trace?"
        )
    if not isinstance(trace["traceEvents"], list):
        raise ValueError("'traceEvents' must be a list")
    return trace


def summarize_trace(trace: dict) -> TraceSummary:
    """Reduce a parsed trace object to a :class:`TraceSummary`."""
    summary = TraceSummary()
    events = trace["traceEvents"]
    summary.total_events = len(events)
    open_flows: Dict[object, str] = {}
    tracks = set()
    track_names: Dict[Tuple[object, object], str] = {}
    for event in events:
        phase = event.get("ph")
        name = event.get("name", "<unnamed>")
        if phase == "M":
            if name == "thread_name":
                key = (event.get("pid"), event.get("tid"))
                tracks.add(key)
                track_names[key] = str(event.get("args", {}).get("name", ""))
            continue
        if phase == "X":
            count, dur = summary.spans.get(name, (0, 0.0))
            summary.spans[name] = (count + 1, dur + float(event.get("dur", 0.0)))
        elif phase == "i":
            summary.instants[name] = summary.instants.get(name, 0) + 1
            if name == "abort":
                track = track_names.get(
                    (event.get("pid"), event.get("tid")),
                    f"pid-{event.get('pid')}.tid-{event.get('tid')}",
                )
                summary.aborts_by_track[track] = (
                    summary.aborts_by_track.get(track, 0) + 1
                )
        elif phase == "s":
            open_flows[event.get("id")] = name
        elif phase == "f":
            started = open_flows.pop(event.get("id"), None)
            if started is None:
                summary.unpaired_flows += 1
            else:
                summary.flows[started] = summary.flows.get(started, 0) + 1
    summary.unpaired_flows += len(open_flows)
    summary.tracks = len(tracks)

    metrics = trace.get("metrics", {})
    summary.counters = dict(metrics.get("counters", {}))
    summary.gauges = dict(metrics.get("gauges", {}))
    summary.histograms = dict(metrics.get("histograms", {}))
    summary.metadata = dict(trace.get("otherData", {}))
    perf = trace.get("perf", {})
    if isinstance(perf, dict) and any(
        perf.get(section) for section in ("phases", "counters", "series", "reports")
    ):
        summary.perf = dict(perf)
    return summary


def render_summary(summary: TraceSummary) -> str:
    """Human-readable report: spans, counters, and abort causality."""
    lines: List[str] = []
    context = ", ".join(
        f"{key}={summary.metadata[key]}"
        for key in sorted(summary.metadata)
        if key != "format_version"
    )
    header = f"{summary.total_events} trace events on {summary.tracks} tracks"
    if context:
        header += f" ({context})"
    lines.append(header)

    if summary.empty:
        lines.append(
            "trace file is empty (no events, metrics, or perf data) — "
            "was instrumentation enabled during capture?"
        )
        return "\n\n".join(lines)
    if summary.total_events == 0:
        lines.append(
            "no trace events (metrics-only capture); metric sections follow"
        )

    if summary.spans:
        table = TextTable(["span", "count", "total ms", "mean ms"], title="spans")
        for name in sorted(summary.spans):
            count, total_us = summary.spans[name]
            table.add_row(
                [
                    name,
                    str(count),
                    f"{total_us / 1000:.3f}",
                    f"{total_us / count / 1000:.3f}",
                ]
            )
        lines.append(table.render())

    if summary.instants:
        table = TextTable(["instant", "count"], title="instant events")
        for name in sorted(summary.instants):
            table.add_row([name, str(summary.instants[name])])
        lines.append(table.render())

    if summary.counters or summary.gauges or summary.histograms:
        table = TextTable(["metric", "value"], title="metrics")
        for name in sorted(summary.counters):
            table.add_row([name, f"{summary.counters[name]:g}"])
        for name in sorted(summary.gauges):
            table.add_row([name, f"{summary.gauges[name]:g}"])
        for name in sorted(summary.histograms):
            agg = summary.histograms[name]
            mean: Optional[float] = agg.get("mean")
            rendered = f"count={agg.get('count')}"
            if mean is not None:
                rendered += f" mean={mean:.6g}"
            p99 = agg.get("p99")
            if p99 is not None:
                rendered += f" p99={p99:.6g}"
            table.add_row([name, rendered])
        lines.append(table.render())

    if summary.perf:
        phases = summary.perf.get("phases", {})
        if isinstance(phases, dict) and phases:
            table = TextTable(
                ["phase", "count", "p50 s", "p99 s"], title="perf phases"
            )
            for name in sorted(phases):
                agg = phases[name]
                p50 = agg.get("p50")
                p99 = agg.get("p99")
                table.add_row(
                    [
                        name,
                        str(agg.get("count")),
                        f"{p50:.6g}" if p50 is not None else "-",
                        f"{p99:.6g}" if p99 is not None else "-",
                    ]
                )
            lines.append(table.render())
        lines.append("perf data present — see `repro perf report` for the dashboard")

    if summary.total_events:
        causality = (
            f"abort causality: {summary.abort_flow_pairs} complete flow pairs"
        )
        total_pairs = sum(summary.flows.values())
        other_pairs = total_pairs - summary.abort_flow_pairs
        if other_pairs:
            causality += f", {other_pairs} other"
        if summary.unpaired_flows:
            causality += f", {summary.unpaired_flows} unpaired"
        accounting = summary.flow_accounting
        if any(accounting.values()):
            causality += (
                f"; flow origins: {accounting['emitted']:g} emitted, "
                f"{accounting['closed']:g} closed, "
                f"{accounting['discarded']:g} discarded"
            )
        lines.append(causality)
        if summary.aborts_by_track:
            aborts = ", ".join(
                f"{track}={summary.aborts_by_track[track]}"
                for track in sorted(summary.aborts_by_track)
            )
            lines.append(f"aborts by track: {aborts}")
    return "\n\n".join(lines)
