"""The low-overhead deterministic profiler: phases, hot-path counters, series.

Mirrors the tracer's design (see :mod:`repro.obs.core`):

1. **Disabled is free.**  ``profiler_for`` hands out the shared
   :data:`NULL_PROFILER` while no collector is enabled; every method on
   it is an empty body, and sites that would build expensive arguments
   guard on ``profiler.enabled`` first.
2. **Clock-agnostic.**  A :class:`Profiler` is bound to a
   :class:`~repro.obs.clock.Clock` — a ``VirtualClock`` inside the DES
   (phase durations in virtual seconds, fully deterministic) or an
   injected wall clock in the runtime backends.  This module itself
   never reads a clock, so it stays inside the determinism lint zone.
3. **Deterministic snapshots.**  :class:`PerfProfile` renders sorted by
   name with exact percentiles, so two identical seeded DES runs produce
   byte-identical perf snapshots.

Phase durations land in :class:`~repro.obs.metrics.Histogram` instances
(p50/p90/p99 in every snapshot), hot paths in ``Counter``s, per-worker
signals in :class:`~repro.obs.timeseries.WindowedSeries`, and detector
verdicts in free-form ``reports``.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Union

from repro.obs.clock import Clock
from repro.obs.metrics import Counter, Histogram
from repro.obs.timeseries import WindowedSeries

__all__ = [
    "PERF_SCHEMA_VERSION",
    "PerfProfile",
    "Profiler",
    "NullProfiler",
    "NULL_PROFILER",
    "profiler_for",
]

#: Version stamp embedded in every perf snapshot so downstream consumers
#: (``repro perf report``, the bench compare gate) can detect drift.
PERF_SCHEMA_VERSION = 1


class PerfProfile:
    """The shared perf sink: phase histograms, counters, series, reports.

    One profile spans one collection (it lives on the
    :class:`~repro.obs.core.TraceCollector`); profilers for any number
    of clocks feed it.  Instrument creation is lock-guarded like the
    metrics registry; recording is plain attribute updates.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._phases: Dict[str, Histogram] = {}
        self._counters: Dict[str, Counter] = {}
        self._series: Dict[str, WindowedSeries] = {}
        #: free-form named payloads (detector verdicts), JSON-ready
        self.reports: Dict[str, dict] = {}

    def phase(self, name: str) -> Histogram:
        """The phase-duration histogram named ``name``, created on first use."""
        phase = self._phases.get(name)
        if phase is None:
            with self._lock:
                phase = self._phases.setdefault(name, Histogram(name))
        return phase

    def counter(self, name: str) -> Counter:
        """The hot-path counter named ``name``, created on first use."""
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter(name))
        return counter

    def series(self, name: str, window: int = 256) -> WindowedSeries:
        """The windowed series named ``name``, created on first use."""
        series = self._series.get(name)
        if series is None:
            with self._lock:
                series = self._series.setdefault(
                    name, WindowedSeries(name, window=window)
                )
        return series

    def add_report(self, name: str, payload: dict) -> None:
        """Attach a named JSON-ready payload (e.g. a detector verdict)."""
        self.reports[name] = payload

    @property
    def empty(self) -> bool:
        """True when nothing has been recorded."""
        return not (
            self._phases or self._counters or self._series or self.reports
        )

    def snapshot(self) -> dict:
        """All perf data, sorted by name — JSON-ready and deterministic."""
        return {
            "schema_version": PERF_SCHEMA_VERSION,
            "phases": {
                name: self._phases[name].snapshot()
                for name in sorted(self._phases)
            },
            "counters": {
                name: self._counters[name].snapshot()
                for name in sorted(self._counters)
            },
            "series": {
                name: self._series[name].snapshot()
                for name in sorted(self._series)
            },
            "reports": {
                name: self.reports[name] for name in sorted(self.reports)
            },
        }

    def __repr__(self) -> str:
        return (
            f"PerfProfile(phases={len(self._phases)}, "
            f"counters={len(self._counters)}, series={len(self._series)}, "
            f"reports={len(self.reports)})"
        )


class _PhaseScope:
    """Context manager timing a lexically-scoped phase (wall backends)."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_PhaseScope":
        self._start = self._profiler.clock.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._profiler.phase(self._name, start=self._start)
        return False


class Profiler:
    """A clock-bound handle onto a :class:`PerfProfile`."""

    #: instrumentation sites may guard expensive argument construction
    enabled = True

    def __init__(self, profile: PerfProfile, clock: Clock) -> None:
        self.profile = profile
        self.clock = clock

    def phase(self, name: str, start: float, end: Optional[float] = None) -> None:
        """Record one ``[start, end]`` phase duration (``end`` defaults to now)."""
        stop = self.clock.now() if end is None else end
        self.profile.phase(name).observe(stop - start)

    def measure(self, name: str) -> _PhaseScope:
        """Phase as a ``with`` block — for lexically-scoped operations."""
        return _PhaseScope(self, name)

    def hit(self, name: str, amount: float = 1.0) -> None:
        """Increment the hot-path counter ``name``."""
        self.profile.counter(name).inc(amount)

    def sample(self, name: str, value: float, ts: Optional[float] = None) -> None:
        """Append one sample to the series ``name`` (``ts`` defaults to now)."""
        self.profile.series(name).append(
            self.clock.now() if ts is None else ts, value
        )

    def report(self, name: str, payload: dict) -> None:
        """Attach a named JSON-ready payload to the profile."""
        self.profile.add_report(name, payload)

    def __repr__(self) -> str:
        return f"Profiler(domain={self.clock.domain!r}, profile={self.profile!r})"


class _NullScope:
    """Shared stateless no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class NullProfiler:
    """The disabled fast path: every method is an empty body.

    A single shared instance (:data:`NULL_PROFILER`) is handed to every
    instrumentation site while no collector is enabled — the per-call
    cost is one attribute lookup plus one no-op call, bounded by the
    overhead-guard test.
    """

    enabled = False

    def phase(self, *_args, **_kwargs) -> None:
        """No-op."""

    def measure(self, *_args, **_kwargs) -> _NullScope:
        """No-op context manager (shared, stateless)."""
        return _NULL_SCOPE

    def hit(self, *_args, **_kwargs) -> None:
        """No-op."""

    def sample(self, *_args, **_kwargs) -> None:
        """No-op."""

    def report(self, *_args, **_kwargs) -> None:
        """No-op."""

    def __repr__(self) -> str:
        return "NullProfiler()"


#: Shared disabled profiler — what ``profiler_for`` returns when
#: observability is off.  Instrumented classes may import it as a default.
NULL_PROFILER = NullProfiler()

#: Either flavor — what instrumented code should annotate with.
ProfilerLike = Union[Profiler, NullProfiler]


def profiler_for(clock: Clock) -> ProfilerLike:
    """A profiler on the active collector's profile, or the shared null
    profiler when observability is disabled."""
    from repro.obs.core import current_collector

    collector = current_collector()
    if collector is None:
        return NULL_PROFILER
    return Profiler(collector.perf, clock)
