"""Structured logging for the repro package, done the stdlib way.

The ``repro`` root logger carries a ``NullHandler`` (installed from
``repro/__init__``), so importing the library never prints anything and
never trips the "No handlers could be found" warning; applications — and
the CLI via ``-v`` — opt into output by attaching their own handler.

Subsystems log through children of the root (``repro.engine``,
``repro.scheduler``, ``repro.experiments`` …) obtained from
:func:`get_logger`.  DES code paths wrap theirs in a
:class:`VirtualTimeLoggerAdapter` so every line is stamped with the
*virtual* clock — the only time that means anything inside a simulated
run — without the logging layer ever touching the wall clock itself
(record wall timestamps still come from the logging module; the adapter
only adds the simulation time to the message).
"""

from __future__ import annotations

import logging
from typing import Callable, MutableMapping, Tuple

__all__ = [
    "ROOT_LOGGER_NAME",
    "install_null_handler",
    "get_logger",
    "VirtualTimeLoggerAdapter",
    "attach_cli_handler",
]

ROOT_LOGGER_NAME = "repro"


def install_null_handler() -> None:
    """Give the ``repro`` root logger a ``NullHandler`` (idempotent)."""
    root = logging.getLogger(ROOT_LOGGER_NAME)
    if not any(isinstance(h, logging.NullHandler) for h in root.handlers):
        root.addHandler(logging.NullHandler())


def get_logger(subsystem: str) -> logging.Logger:
    """The child logger for one subsystem, e.g. ``get_logger("engine")``."""
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{subsystem}")


class VirtualTimeLoggerAdapter(logging.LoggerAdapter):
    """Prefixes every message with the current virtual time.

    ``now_fn`` is the simulation clock (``lambda: sim.now`` or the
    engine's ``now`` property); it is read lazily at emit time so one
    adapter serves a whole run.
    """

    def __init__(
        self, logger: logging.Logger, now_fn: Callable[[], float]
    ) -> None:
        super().__init__(logger, {})
        self._now_fn = now_fn

    def process(
        self, msg: object, kwargs: MutableMapping
    ) -> Tuple[str, MutableMapping]:
        return f"[vt={self._now_fn():.6g}s] {msg}", kwargs


def attach_cli_handler(level: int = logging.INFO) -> logging.Handler:
    """Attach a stderr handler to the ``repro`` root (the CLI's ``-v``).

    Returns the handler so callers (tests) can detach it again.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(levelname).1s %(name)s: %(message)s")
    )
    handler.setLevel(level)
    root.addHandler(handler)
    if root.level == logging.NOTSET or root.level > level:
        root.setLevel(level)
    return handler
