"""A small metrics registry: named counters, gauges, and histograms.

Instruments are created lazily by name and live for the length of one
collection (a run, an experiment).  The registry is shared between the
DES and the runtime backends, so instrument *creation* is guarded by a
lock; single increments/observations are intentionally plain attribute
updates — under CPython's GIL an occasional lost increment from two
racing runtime threads is acceptable for telemetry, and the DES path is
single-threaded anyway.

Snapshots are deterministic: instruments render sorted by name, so a
seeded DES run produces byte-identical metric reports.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Default histogram bucket upper bounds (seconds-flavored but unitless):
#: covers microseconds to hours with ~3 buckets per decade.
_DEFAULT_BUCKETS = tuple(
    base * scale
    for scale in (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3)
    for base in (1.0, 2.5, 5.0)
)


class Counter:
    """A monotonically increasing named value."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease: {amount}")
        self.value += amount

    def snapshot(self) -> float:
        """Current value."""
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value:g})"


class Gauge:
    """A named value that may move in either direction (queue depth, rate)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.value -= amount

    def snapshot(self) -> float:
        """Current value."""
        return self.value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value:g})"


class Histogram:
    """Aggregates observations: count/sum/min/max, exact percentiles, buckets.

    Raw observations are retained (one float per ``observe``) so snapshots
    report *exact* nearest-rank percentiles rather than bucket-interpolated
    estimates; collections here are bounded by one run's instrumentation
    volume, which keeps that affordable.
    """

    def __init__(self, name: str, buckets: Optional[tuple] = None) -> None:
        self.name = name
        self.bounds = tuple(buckets) if buckets is not None else _DEFAULT_BUCKETS
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +1 = overflow
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        self._values.append(value)
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> Optional[float]:
        """Mean of all observations (None when empty)."""
        if self.count == 0:
            return None
        return self.total / self.count

    def percentile(self, q: float) -> Optional[float]:
        """Exact nearest-rank percentile ``q`` in [0, 100] (None when empty)."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._values:
            return None
        ordered = sorted(self._values)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def snapshot(self) -> dict:
        """Aggregate view: count/sum/min/max/mean, p50/p90/p99, non-empty buckets.

        ``buckets`` maps the upper bound (``"+inf"`` for overflow) to its
        count, listing only non-empty buckets so snapshots stay compact.
        """
        buckets: Dict[str, int] = {}
        for index, bound in enumerate(self.bounds):
            if self.bucket_counts[index]:
                buckets[f"{bound:g}"] = self.bucket_counts[index]
        if self.bucket_counts[-1]:
            buckets["+inf"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "buckets": buckets,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean})"


class MetricsRegistry:
    """Lazily-created named instruments with a deterministic snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created on first use."""
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter(name))
        return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created on first use."""
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge(name))
        return gauge

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name``, created on first use."""
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(name, Histogram(name))
        return histogram

    def snapshot(self) -> dict:
        """All instruments, sorted by name — JSON-ready and deterministic."""
        return {
            "counters": {
                name: self._counters[name].snapshot()
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].snapshot()
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
        }

    def render_text(self) -> str:
        """Human-readable snapshot: counters, then gauges, then histograms,
        each section alphabetical — stable-ordered for golden comparisons."""
        lines: List[str] = []
        snap = self.snapshot()
        for name, value in snap["counters"].items():
            lines.append(f"counter   {name} = {value:g}")
        for name, value in snap["gauges"].items():
            lines.append(f"gauge     {name} = {value:g}")
        for name, agg in snap["histograms"].items():
            mean = f"{agg['mean']:.6g}" if agg["mean"] is not None else "-"
            p50 = f"{agg['p50']:.6g}" if agg["p50"] is not None else "-"
            p99 = f"{agg['p99']:.6g}" if agg["p99"] is not None else "-"
            lines.append(
                f"histogram {name}: count={agg['count']} mean={mean} "
                f"p50={p50} p99={p99} min={agg['min']} max={agg['max']}"
            )
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )
