"""Online straggler and abort-storm detection from push timing streams.

The straggler study of the parameter-server literature (see PAPERS.md)
identifies per-worker timing skew as *the* signal worth surfacing: a
straggler's pushes arrive at longer intervals than its peers', which
under SpecSync both wastes peer work (stale reads) and triggers abort
cascades.  :class:`StragglerDetector` flags workers whose mean push
interval is a z-score outlier against the population of per-worker
means; :class:`AbortStormDetector` watches the recent abort/push mix
for re-sync storms (aborts feeding aborts).

Both detectors are fed timestamps by the caller and never read a clock,
so on the DES substrate their reports are deterministic for a fixed
seed.  The scheduler keeps a detector pair and exposes their verdicts
through ``SpecSyncScheduler.anomaly_report()``; the engine keeps its own
pair (covering non-SpecSync schemes) when profiling is enabled.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional

__all__ = ["StragglerDetector", "AbortStormDetector"]


class StragglerDetector:
    """Flags workers whose push intervals are z-score outliers.

    Per worker, the last ``window`` push intervals are retained; a worker
    with at least ``min_samples`` intervals whose mean interval sits more
    than ``z_threshold`` standard deviations *above* the population mean
    (slower than peers) is reported as a straggler.
    """

    def __init__(
        self,
        num_workers: int,
        window: int = 16,
        z_threshold: float = 2.0,
        min_samples: int = 3,
    ) -> None:
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        if min_samples < 2:
            raise ValueError(f"min_samples must be >= 2, got {min_samples}")
        self.num_workers = num_workers
        self.window = window
        self.z_threshold = z_threshold
        self.min_samples = min_samples
        self._last_push: Dict[int, float] = {}
        self._intervals: Dict[int, Deque[float]] = {
            w: deque(maxlen=window) for w in range(num_workers)
        }
        self.total_pushes = 0

    def record_push(self, worker_id: int, ts: float) -> Optional[float]:
        """Record a push from ``worker_id`` at ``ts``; returns the interval
        since that worker's previous push (None for its first push)."""
        self.total_pushes += 1
        previous = self._last_push.get(worker_id)
        self._last_push[worker_id] = ts
        if previous is None:
            return None
        interval = ts - previous
        # A worker id beyond the configured count (a replayed trace with
        # more workers than expected) gets a window on the fly rather
        # than crashing the feed; only ids < num_workers are z-scored.
        intervals = self._intervals.get(worker_id)
        if intervals is None:
            intervals = deque(maxlen=self.window)
            self._intervals[worker_id] = intervals
        intervals.append(interval)
        return interval

    def mean_interval(self, worker_id: int) -> Optional[float]:
        """Mean of the retained intervals for ``worker_id`` (None if too few)."""
        intervals = self._intervals.get(worker_id)
        if intervals is None or len(intervals) < self.min_samples:
            return None
        return sum(intervals) / len(intervals)

    def z_scores(self) -> Dict[int, float]:
        """Per-worker z-score of mean interval vs the population of means.

        Empty until at least two workers have ``min_samples`` intervals;
        all-zero when the population has no spread.
        """
        means = {
            worker: mean
            for worker in range(self.num_workers)
            if (mean := self.mean_interval(worker)) is not None
        }
        if len(means) < 2:
            return {}
        population = list(means.values())
        mu = sum(population) / len(population)
        variance = sum((m - mu) ** 2 for m in population) / len(population)
        sigma = math.sqrt(variance)
        # Zero-variance guard, relative to the population mean: workers
        # pushing at constant (or float-rounding-identical) intervals
        # have no spread to score against, and dividing by a denormal
        # sigma would manufacture huge z-scores (or NaN at exactly 0)
        # from noise far below timer resolution.
        if sigma <= abs(mu) * 1e-9:
            return {worker: 0.0 for worker in means}
        return {worker: (mean - mu) / sigma for worker, mean in means.items()}

    def stragglers(self) -> List[int]:
        """Worker ids currently flagged (z-score above threshold), sorted."""
        return sorted(
            worker
            for worker, z in self.z_scores().items()
            if z > self.z_threshold
        )

    def report(self) -> dict:
        """JSON-ready deterministic verdict: per-worker means/z-scores and
        the flagged straggler set."""
        z = self.z_scores()
        return {
            "num_workers": self.num_workers,
            "total_pushes": self.total_pushes,
            "z_threshold": self.z_threshold,
            "mean_intervals": {
                str(worker): mean
                for worker in range(self.num_workers)
                if (mean := self.mean_interval(worker)) is not None
            },
            "z_scores": {str(worker): z[worker] for worker in sorted(z)},
            "stragglers": self.stragglers(),
        }

    def __repr__(self) -> str:
        return (
            f"StragglerDetector(num_workers={self.num_workers}, "
            f"pushes={self.total_pushes}, stragglers={self.stragglers()})"
        )


class AbortStormDetector:
    """Flags abort storms: aborts dominating recent protocol activity.

    Keeps the last ``window`` protocol events (pushes and aborts); the
    storm flag raises when aborts make up at least ``ratio_threshold`` of
    the window *and* at least ``min_aborts`` aborts are present — the
    signature of re-syncs feeding further re-syncs rather than progress.
    """

    def __init__(
        self,
        window: int = 32,
        ratio_threshold: float = 0.5,
        min_aborts: int = 4,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if not 0 < ratio_threshold <= 1:
            raise ValueError(
                f"ratio_threshold must be in (0, 1], got {ratio_threshold}"
            )
        self.window = window
        self.ratio_threshold = ratio_threshold
        self.min_aborts = min_aborts
        #: recent protocol events: (timestamp, is_abort)
        self._events: Deque[tuple] = deque(maxlen=window)
        self.total_pushes = 0
        self.total_aborts = 0
        self.storm_count = 0
        self._in_storm = False

    def record_push(self, ts: float) -> None:
        """Record a successful push at ``ts``."""
        self.total_pushes += 1
        self._events.append((ts, False))
        self._update_storm_state()

    def record_abort(self, ts: float) -> None:
        """Record an abort/re-sync at ``ts``."""
        self.total_aborts += 1
        self._events.append((ts, True))
        self._update_storm_state()

    def _update_storm_state(self) -> None:
        storming = self.storming()
        if storming and not self._in_storm:
            self.storm_count += 1
        self._in_storm = storming

    def abort_ratio(self) -> Optional[float]:
        """Fraction of the windowed events that are aborts (None when empty)."""
        if not self._events:
            return None
        aborts = sum(1 for _, is_abort in self._events if is_abort)
        return aborts / len(self._events)

    def storming(self) -> bool:
        """True while the windowed abort ratio exceeds the threshold."""
        aborts = sum(1 for _, is_abort in self._events if is_abort)
        if aborts < self.min_aborts:
            return False
        return aborts / len(self._events) >= self.ratio_threshold

    def report(self) -> dict:
        """JSON-ready deterministic verdict: totals, windowed ratio, and
        how many distinct storms were entered."""
        return {
            "window": self.window,
            "ratio_threshold": self.ratio_threshold,
            "total_pushes": self.total_pushes,
            "total_aborts": self.total_aborts,
            "abort_ratio": self.abort_ratio(),
            "storming": self.storming(),
            "storm_count": self.storm_count,
        }

    def __repr__(self) -> str:
        return (
            f"AbortStormDetector(pushes={self.total_pushes}, "
            f"aborts={self.total_aborts}, storming={self.storming()})"
        )
