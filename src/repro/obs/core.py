"""The tracing core: spans, instants, flows, and the collector they feed.

Design constraints, in order:

1. **Disabled is free.**  Observability is off by default; every
   instrumentation site calls methods on a :class:`NullTracer` whose
   bodies are empty.  Sites that would *build* expensive arguments guard
   on ``tracer.enabled`` first.
2. **Clock-agnostic.**  A :class:`Tracer` is bound to a
   :class:`~repro.obs.clock.Clock`; inside the DES that is a
   :class:`~repro.obs.clock.VirtualClock` and every stamp is virtual
   time, in the runtime backends an injected wall clock.  Records carry
   their clock domain so the exporter never mixes the two timelines.
3. **Deterministic.**  With a fixed seed, a DES run appends records in
   event order, so two runs produce identical collections (this is
   covered by the replay sanitizer — the tracer itself is tapped into
   the same multi-tap bus).

Spans in the DES are not lexically scoped (a pull starts in one event
callback and ends in another), so the primary span API takes an explicit
``start`` timestamp: the instrumented code remembers when the operation
began and emits one complete span when it ends.  The runtime backends,
where operations *are* lexically scoped, use :meth:`Tracer.measure`.

Causality (the paper's re-sync decisions) is recorded with *pending
flows*: the scheduler registers flow origins under a key — one per peer
push that contributed to a re-sync decision, plus the decision itself —
and the engine closes the key at the abort point.  Origins whose re-sync
arrived too late are never closed and never exported.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.obs.clock import Clock
from repro.obs.metrics import Counter, MetricsRegistry
from repro.obs.perf import PerfProfile

__all__ = [
    "SpanRecord",
    "InstantRecord",
    "FlowRecord",
    "TraceCollector",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "enable",
    "disable",
    "current_collector",
    "tracer_for",
    "collecting",
]

#: Hashable identity of a pending flow, e.g. ``("resync", worker_id, it)``.
FlowKey = Tuple[object, ...]


@dataclass(frozen=True)
class SpanRecord:
    """One completed operation on a track: ``[start, end]`` in seconds."""

    domain: str
    track: str
    name: str
    cat: str
    start: float
    end: float
    args: Optional[dict] = None


@dataclass(frozen=True)
class InstantRecord:
    """One point event on a track."""

    domain: str
    track: str
    name: str
    cat: str
    ts: float
    args: Optional[dict] = None


@dataclass(frozen=True)
class FlowRecord:
    """A causal arrow from one (track, time) to another."""

    domain: str
    name: str
    cat: str
    src_track: str
    src_ts: float
    dst_track: str
    dst_ts: float
    args: Optional[dict] = None


@dataclass(frozen=True)
class _FlowOrigin:
    """A registered-but-unclosed flow source."""

    domain: str
    track: str
    name: str
    cat: str
    ts: float
    args: Optional[dict] = None


class TraceCollector:
    """The shared sink: records, metrics, pending flows, run metadata.

    One collector spans one logical collection (a run, a comparison, an
    experiment); tracers for any number of clocks feed it.  Appends use
    ``list.append`` (atomic under the GIL) so runtime threads need no
    lock on the hot path; the pending-flow table, which is read-modify-
    write, takes one.
    """

    def __init__(self) -> None:
        self.records: List[Union[SpanRecord, InstantRecord, FlowRecord]] = []
        self.metrics = MetricsRegistry()
        #: profiler sink (phase histograms, hot-path counters, series)
        self.perf = PerfProfile()
        #: free-form run context (workload, scheme, seed) for the export
        self.metadata: Dict[str, object] = {}
        self._flow_lock = threading.Lock()
        self._pending_flows: Dict[FlowKey, List[_FlowOrigin]] = {}

    # ------------------------------------------------------------------
    def append(self, record: Union[SpanRecord, InstantRecord, FlowRecord]) -> None:
        """Add one finished record."""
        self.records.append(record)

    def register_flow_origin(self, key: FlowKey, origin: _FlowOrigin) -> None:
        """Remember a causal source until ``close_flows(key)`` lands."""
        with self._flow_lock:
            self._pending_flows.setdefault(key, []).append(origin)
        # Flow accounting: every origin is either closed into an arrow,
        # discarded (late re-sync), or still pending at export.  Lazily
        # created so empty collections stay metric-free.
        self.metrics.counter("obs.flow_origins_registered").inc()

    def close_flows(
        self, key: FlowKey, domain: str, track: str, ts: float
    ) -> int:
        """Materialize every origin under ``key`` as a flow into (track, ts).

        Returns the number of arrows drawn; 0 when the key was never
        registered (a flow end with no recorded cause is not an error —
        the cause-side instrumentation may be disabled).
        """
        with self._flow_lock:
            origins = self._pending_flows.pop(key, [])
        if origins:
            self.metrics.counter("obs.flow_arrows_closed").inc(len(origins))
        for origin in origins:
            self.records.append(
                FlowRecord(
                    domain=origin.domain,
                    name=origin.name,
                    cat=origin.cat,
                    src_track=origin.track,
                    src_ts=origin.ts,
                    dst_track=track,
                    dst_ts=ts,
                    args=origin.args,
                )
            )
        return len(origins)

    def discard_flows(self, key: FlowKey) -> None:
        """Drop pending origins under ``key`` without exporting them."""
        with self._flow_lock:
            dropped = self._pending_flows.pop(key, None)
        if dropped:
            self.metrics.counter("obs.flow_origins_discarded").inc(len(dropped))

    @property
    def pending_flow_count(self) -> int:
        """Registered-but-unclosed flow origins (dropped at export)."""
        with self._flow_lock:
            return sum(len(v) for v in self._pending_flows.values())

    def __repr__(self) -> str:
        return (
            f"TraceCollector(records={len(self.records)}, "
            f"pending_flows={self.pending_flow_count})"
        )


class _SpanScope:
    """Context manager measuring a lexically-scoped span (wall backends)."""

    __slots__ = ("_tracer", "_track", "_name", "_cat", "_args", "_start")

    def __init__(
        self,
        tracer: "Tracer",
        track: str,
        name: str,
        cat: str,
        args: Optional[dict],
    ) -> None:
        self._tracer = tracer
        self._track = track
        self._name = name
        self._cat = cat
        self._args = args
        self._start = 0.0

    def __enter__(self) -> "_SpanScope":
        self._start = self._tracer.clock.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer.span(
            self._track, self._name, start=self._start,
            cat=self._cat, args=self._args,
        )
        return False


class Tracer:
    """A clock-bound handle onto a :class:`TraceCollector`."""

    #: instrumentation sites may guard expensive argument construction
    enabled = True

    def __init__(self, collector: TraceCollector, clock: Clock) -> None:
        self.collector = collector
        self.clock = clock
        self._domain = clock.domain

    # ------------------------------------------------------------------
    # Spans and instants
    # ------------------------------------------------------------------
    def span(
        self,
        track: str,
        name: str,
        start: float,
        end: Optional[float] = None,
        cat: str = "span",
        args: Optional[dict] = None,
    ) -> None:
        """Record a completed ``[start, end]`` span (``end`` defaults to now)."""
        self.collector.append(
            SpanRecord(
                domain=self._domain,
                track=track,
                name=name,
                cat=cat,
                start=start,
                end=self.clock.now() if end is None else end,
                args=args,
            )
        )

    def instant(
        self,
        track: str,
        name: str,
        ts: Optional[float] = None,
        cat: str = "instant",
        args: Optional[dict] = None,
    ) -> None:
        """Record a point event (``ts`` defaults to now)."""
        self.collector.append(
            InstantRecord(
                domain=self._domain,
                track=track,
                name=name,
                cat=cat,
                ts=self.clock.now() if ts is None else ts,
                args=args,
            )
        )

    def measure(
        self,
        track: str,
        name: str,
        cat: str = "span",
        args: Optional[dict] = None,
    ) -> _SpanScope:
        """Span as a ``with`` block — for lexically-scoped (wall) operations."""
        return _SpanScope(self, track, name, cat, args)

    # ------------------------------------------------------------------
    # Causal flows
    # ------------------------------------------------------------------
    def flow_begin(
        self,
        key: FlowKey,
        track: str,
        name: str,
        ts: Optional[float] = None,
        cat: str = "flow",
        args: Optional[dict] = None,
    ) -> None:
        """Register a causal source under ``key`` (closed by ``flow_end``)."""
        self.collector.register_flow_origin(
            key,
            _FlowOrigin(
                domain=self._domain,
                track=track,
                name=name,
                cat=cat,
                ts=self.clock.now() if ts is None else ts,
                args=args,
            ),
        )

    def flow_end(self, key: FlowKey, track: str, ts: Optional[float] = None) -> int:
        """Draw arrows from every origin under ``key`` to here; returns count."""
        return self.collector.close_flows(
            key,
            domain=self._domain,
            track=track,
            ts=self.clock.now() if ts is None else ts,
        )

    def flow_discard(self, key: FlowKey) -> None:
        """Forget pending origins under ``key`` (decision not honored)."""
        self.collector.discard_flows(key)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment the counter ``name``."""
        self.collector.metrics.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""
        self.collector.metrics.histogram(name).observe(value)

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its current level (queue depth etc.)."""
        self.collector.metrics.gauge(name).set(value)

    def __repr__(self) -> str:
        return f"Tracer(domain={self._domain!r}, collector={self.collector!r})"


_NULL_SCOPE = nullcontext()


class NullTracer:
    """The disabled fast path: every method is an empty body.

    A single shared instance (:data:`NULL_TRACER`) is handed to every
    instrumentation site while no collector is enabled, so the per-call
    cost of disabled observability is one attribute lookup plus one
    no-op method call — bounded by the overhead-guard benchmark.
    """

    enabled = False

    def span(self, *_args, **_kwargs) -> None:
        """No-op."""

    def instant(self, *_args, **_kwargs) -> None:
        """No-op."""

    def measure(self, *_args, **_kwargs):
        """No-op context manager (shared, stateless)."""
        return _NULL_SCOPE

    def flow_begin(self, *_args, **_kwargs) -> None:
        """No-op."""

    def flow_end(self, *_args, **_kwargs) -> int:
        """No-op (no arrows drawn)."""
        return 0

    def flow_discard(self, *_args, **_kwargs) -> None:
        """No-op."""

    def count(self, *_args, **_kwargs) -> None:
        """No-op."""

    def observe(self, *_args, **_kwargs) -> None:
        """No-op."""

    def gauge(self, *_args, **_kwargs) -> None:
        """No-op."""

    def __repr__(self) -> str:
        return "NullTracer()"


#: Shared disabled tracer — what ``tracer_for`` returns when observability
#: is off.  Instrumented classes may also import it as a default.
NULL_TRACER = NullTracer()


# ----------------------------------------------------------------------
# Process-wide enablement
# ----------------------------------------------------------------------
#: The active collector, or None when observability is disabled.  Like
#: the Simulator's tap bus this is process-wide on purpose: engines are
#: constructed deep inside workload/experiment code the enabling caller
#: never sees.
_ACTIVE: Optional[TraceCollector] = None
_SIM_TAP = None


def enable(collector: TraceCollector) -> None:
    """Turn observability on: subsequent ``tracer_for`` calls are live.

    Also installs a simulator tap (on the multi-tap bus, so the replay
    sanitizer can run concurrently) that counts fired DES events into
    the ``sim.events_fired`` metric and per-callback dispatch counts
    (``sim.dispatch.<qualname>``) into the collector's perf profile —
    the event loop's hot-path breakdown.
    """
    global _ACTIVE, _SIM_TAP
    if _ACTIVE is not None:
        raise RuntimeError("an observability collector is already enabled")
    from repro.events.simulator import Simulator

    counter = collector.metrics.counter("sim.events_fired")
    perf = collector.perf
    dispatch_counters: Dict[str, Counter] = {}

    def _tap(_time: float, _seq: int, fn, _tap_args: tuple) -> None:
        counter.inc()
        name = getattr(fn, "__qualname__", None) or type(fn).__name__
        dispatch = dispatch_counters.get(name)
        if dispatch is None:
            dispatch = perf.counter(f"sim.dispatch.{name}")
            dispatch_counters[name] = dispatch
        dispatch.inc()

    Simulator.install_tap(_tap)
    _SIM_TAP = _tap
    _ACTIVE = collector


def disable() -> None:
    """Turn observability off (no-op when already off)."""
    global _ACTIVE, _SIM_TAP
    if _SIM_TAP is not None:
        from repro.events.simulator import Simulator

        Simulator.remove_tap(_SIM_TAP)
        _SIM_TAP = None
    _ACTIVE = None


def current_collector() -> Optional[TraceCollector]:
    """The enabled collector, or None."""
    return _ACTIVE


def tracer_for(clock: Clock) -> Union[Tracer, NullTracer]:
    """A tracer on the active collector, or the shared null tracer."""
    if _ACTIVE is None:
        return NULL_TRACER
    return Tracer(_ACTIVE, clock)


@contextmanager
def collecting(
    collector: Optional[TraceCollector] = None,
) -> Iterator[TraceCollector]:
    """Enable observability for a block; yields the (possibly new) collector."""
    active = collector if collector is not None else TraceCollector()
    enable(active)
    try:
        yield active
    finally:
        disable()
