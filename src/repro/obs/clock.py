"""Clock abstraction: the tracer never decides where time comes from.

Observability spans the repo's two execution substrates (see
``docs/architecture.md``): the discrete-event simulator runs on a
*virtual* clock, the ``repro.runtime`` backends on *wall* time.  A span
stamped with the wrong clock is worse than no span — it silently breaks
determinism (a wall read inside the DES) or produces nonsense timelines
(virtual stamps on real threads).  So every :class:`~repro.obs.core.Tracer`
is constructed around an explicit clock carrying its **domain**, and this
module deliberately contains no wall-clock call: wall time enters only as
a ``now_fn`` injected by the runtime backends (which are exempt from the
``DET-WALLCLOCK`` rule — ``repro.obs`` itself is inside the deterministic
zone and must stay clean).
"""

from __future__ import annotations

from typing import Callable, Protocol

__all__ = ["Clock", "VirtualClock", "FunctionClock", "VIRTUAL", "WALL"]

#: Clock-domain labels; exported traces keep the domains on separate
#: Perfetto "processes" so virtual and wall microseconds never mix.
VIRTUAL = "virtual"
WALL = "wall"


class Clock(Protocol):
    """What a tracer needs from a time source."""

    #: one of :data:`VIRTUAL` / :data:`WALL`
    domain: str

    def now(self) -> float:
        """Current time in seconds (virtual or wall, per ``domain``)."""


class VirtualClock:
    """Reads the virtual clock of a :class:`repro.events.Simulator`."""

    domain = VIRTUAL

    def __init__(self, sim) -> None:
        self._sim = sim

    def now(self) -> float:
        """Current virtual time of the wrapped simulator."""
        return self._sim.now

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._sim.now:.6g})"


class FunctionClock:
    """Wraps an injected ``now_fn`` — how wall time reaches the tracer.

    Runtime backends pass ``time.monotonic`` here; the DES never
    constructs one.  Keeping the wall read at the *call site* keeps
    ``repro.obs`` inside the deterministic zone with zero waivers.
    """

    def __init__(self, now_fn: Callable[[], float], domain: str = WALL) -> None:
        self._now_fn = now_fn
        self.domain = domain

    def now(self) -> float:
        """Current time from the injected function."""
        return self._now_fn()

    def __repr__(self) -> str:
        return f"FunctionClock(domain={self.domain!r})"
