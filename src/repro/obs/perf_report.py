"""The ``repro perf report`` terminal dashboard — the read side of the
profiler.

Renders the ``"perf"`` section of an exported trace file (see
:mod:`repro.obs.perfetto`): phase latency percentiles, event-loop hot
paths, per-worker time-series sparklines, and the straggler/abort-storm
detector verdicts.  Pure formatting over a parsed JSON object — no clock
reads, no collector access — so it can run anywhere a trace file can be
copied.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.utils.ascii_plot import sparkline
from repro.utils.tables import TextTable

__all__ = ["render_perf_report"]

#: hot-path counters shown before the listing is elided
_TOP_COUNTERS = 15


def _fmt(value: Optional[float]) -> str:
    return f"{value:.6g}" if value is not None else "-"


def _render_phases(phases: Dict[str, dict]) -> str:
    table = TextTable(
        ["phase", "count", "mean s", "p50 s", "p90 s", "p99 s", "max s"],
        title="phase latency percentiles",
    )
    for name in sorted(phases):
        agg = phases[name]
        table.add_row(
            [
                name,
                str(agg.get("count")),
                _fmt(agg.get("mean")),
                _fmt(agg.get("p50")),
                _fmt(agg.get("p90")),
                _fmt(agg.get("p99")),
                _fmt(agg.get("max")),
            ]
        )
    return table.render()

def _render_counters(counters: Dict[str, float]) -> str:
    ranked = sorted(counters.items(), key=lambda item: (-item[1], item[0]))
    table = TextTable(["counter", "hits"], title="hot paths")
    for name, value in ranked[:_TOP_COUNTERS]:
        table.add_row([name, f"{value:g}"])
    rendered = table.render()
    if len(ranked) > _TOP_COUNTERS:
        rendered += f"\n  … {len(ranked) - _TOP_COUNTERS} more counters elided"
    return rendered


def _render_series(series: Dict[str, dict]) -> str:
    table = TextTable(
        ["series", "n", "mean", "ewma", "window"], title="time series"
    )
    for name in sorted(series):
        snap = series[name]
        window = snap.get("window") or []
        values = [point[1] for point in window]
        table.add_row(
            [
                name,
                str(snap.get("count")),
                _fmt(snap.get("mean")),
                _fmt(snap.get("ewma")),
                sparkline(values, width=24) if values else "-",
            ]
        )
    return table.render()


def _render_straggler(name: str, verdict: dict) -> List[str]:
    lines = []
    stragglers = verdict.get("stragglers", [])
    if stragglers:
        flagged = ", ".join(f"w{worker}" for worker in stragglers)
        lines.append(f"  {name}: STRAGGLERS {flagged}")
    else:
        lines.append(f"  {name}: no stragglers flagged")
    z_scores = verdict.get("z_scores", {})
    if z_scores:
        ranked = sorted(z_scores.items(), key=lambda kv: (-kv[1], kv[0]))
        worst = ", ".join(f"w{worker} z={z:+.2f}" for worker, z in ranked[:4])
        lines.append(f"    interval z-scores: {worst}")
    return lines


def _render_reports(reports: Dict[str, dict]) -> str:
    lines: List[str] = ["anomaly detectors"]
    for name in sorted(reports):
        payload = reports[name]
        straggler = payload.get("straggler")
        if isinstance(straggler, dict):
            lines.extend(_render_straggler(name, straggler))
        storm = payload.get("abort_storm")
        if isinstance(storm, dict):
            ratio = storm.get("abort_ratio")
            state = "STORMING" if storm.get("storming") else "calm"
            lines.append(
                f"  {name}: abort storm {state} "
                f"(ratio={_fmt(ratio)}, storms={storm.get('storm_count', 0)}, "
                f"aborts={storm.get('total_aborts', 0)})"
            )
    return "\n".join(lines)


def _render_breakdown(trace: dict) -> Optional[str]:
    """Critical-path attribution per run, from the causal analytics.

    Imported lazily and allowed to fail soft: the perf dashboard must
    still render for traces whose event stream cannot support causal
    analysis (the analytics have their own strict entry point,
    ``repro analyze``).
    """
    from repro.obs.analysis import (
        ATTRIBUTION_CATEGORIES,
        AnalysisError,
        analyze_trace,
    )

    try:
        analysis = analyze_trace(trace)
    except AnalysisError as exc:
        return f"trace analytics unavailable: {exc}"
    runs = [run for run in analysis["runs"] if run["critical_path"]["track"]]
    if not runs:
        return None
    table = TextTable(
        ["run", "total s"]
        + [c.replace("_", "-") for c in ATTRIBUTION_CATEGORIES],
        title="critical-path breakdown (see `repro analyze` for detail)",
    )
    for run in runs:
        path = run["critical_path"]
        label = f"{run.get('scheme') or 'run ' + str(run['index'])}"
        table.add_row(
            [label, f"{path['total_s']:.6g}"]
            + [
                f"{path['by_category'].get(c, 0.0):.4g}"
                for c in ATTRIBUTION_CATEGORIES
            ]
        )
    return table.render()


def render_perf_report(trace: dict) -> str:
    """Render the perf dashboard for a parsed trace object.

    Degrades gracefully: traces captured before format v2 (or with the
    profiler idle) get a clear one-line message instead of empty tables.
    """
    sections: List[str] = []
    metadata = trace.get("otherData", {})
    context = ", ".join(
        f"{key}={metadata[key]}" for key in sorted(metadata)
    )
    sections.append(f"perf report ({context})" if context else "perf report")

    breakdown = _render_breakdown(trace)
    if breakdown:
        sections.append(breakdown)

    perf = trace.get("perf")
    if not isinstance(perf, dict):
        sections.append(
            "no perf data in this trace — re-capture with --trace using a "
            "format v2+ build"
        )
        return "\n\n".join(sections)

    phases = perf.get("phases") or {}
    counters = perf.get("counters") or {}
    series = perf.get("series") or {}
    reports = perf.get("reports") or {}
    if not (phases or counters or series or reports):
        sections.append("perf section present but empty — profiler never fired")
        return "\n\n".join(sections)

    if phases:
        sections.append(_render_phases(phases))
    if counters:
        sections.append(_render_counters(counters))
    if series:
        sections.append(_render_series(series))
    if reports:
        sections.append(_render_reports(reports))
    return "\n\n".join(sections)
