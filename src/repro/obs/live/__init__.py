"""Live cross-process telemetry plane.

``repro.obs.live`` streams spans, counters, gauges, and perf samples out
of running processes through per-process lock-free shared-memory rings
(:mod:`repro.obs.live.ring`), aggregates them online in the parent
(:mod:`repro.obs.live.aggregate`), wires whole runs together through
:mod:`repro.obs.live.session`, and renders them as the ``repro top``
dashboard (:mod:`repro.obs.live.top`).  A drained capture serializes to
trace-format-v2, so every post-hoc tool works unchanged on live runs.
"""

from repro.obs.live.aggregate import (
    SNAPSHOT_SCHEMA_VERSION,
    TelemetryAggregator,
)
from repro.obs.live.ring import (
    DEFAULT_RING_BYTES,
    NULL_RING_WRITER,
    LiveAnnounce,
    LiveCount,
    LiveGauge,
    LiveInstant,
    LiveRecord,
    LiveSample,
    LiveSpan,
    NullRingWriter,
    RingSpec,
    RingWriter,
    ShmRing,
    decode_record,
    encode_record,
)
from repro.obs.live.session import (
    LIVE_SPEC_SCHEMA_VERSION,
    PARENT_SOURCE,
    SERVER_SOURCE,
    LiveTelemetrySession,
    worker_source,
)
from repro.obs.live.top import (
    iter_trace_records,
    render_dashboard,
    replay_trace,
    run_dashboard,
    trace_worker_count,
)

__all__ = [
    "DEFAULT_RING_BYTES",
    "LIVE_SPEC_SCHEMA_VERSION",
    "NULL_RING_WRITER",
    "PARENT_SOURCE",
    "SERVER_SOURCE",
    "SNAPSHOT_SCHEMA_VERSION",
    "LiveAnnounce",
    "LiveCount",
    "LiveGauge",
    "LiveInstant",
    "LiveRecord",
    "LiveSample",
    "LiveSpan",
    "LiveTelemetrySession",
    "NullRingWriter",
    "RingSpec",
    "RingWriter",
    "ShmRing",
    "TelemetryAggregator",
    "decode_record",
    "encode_record",
    "iter_trace_records",
    "render_dashboard",
    "replay_trace",
    "run_dashboard",
    "trace_worker_count",
    "worker_source",
]
