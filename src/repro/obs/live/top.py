"""``repro top`` — the live telemetry dashboard (render + replay logic).

This module owns everything the CLI command needs except the clock: the
text renderer over :meth:`TelemetryAggregator.snapshot`, the refresh
loop, and the trace replayer that feeds a recorded trace-format-v2 file
back through the same aggregation path (so the dashboard works on saved
runs exactly as on live ones).

Determinism: ``repro.obs`` is inside the determinism lint zone, so no
wall clock or sleep is read here — ``repro.cli`` injects ``now_fn`` and
``sleep_fn``.  Given the same record stream and the same injected
timestamps, the dashboard output is reproducible.
"""

from __future__ import annotations

import json
from typing import Callable, Iterator, List, Optional, Tuple

from repro.obs.analysis.graph import WORKER_TRACK_RE
from repro.obs.live.aggregate import TelemetryAggregator
from repro.obs.live.ring import LiveInstant, LiveRecord, LiveSpan
from repro.utils.tables import TextTable

__all__ = [
    "render_dashboard",
    "run_dashboard",
    "iter_trace_records",
    "replay_trace",
    "trace_worker_count",
]

#: ANSI: clear screen + cursor home (the refresh between frames).
_CLEAR = "\x1b[2J\x1b[H"

_US_TO_S = 1e-6


def _fmt(value: Optional[float], pattern: str = "{:.2f}") -> str:
    return "-" if value is None else pattern.format(value)


def render_dashboard(snapshot: dict) -> str:
    """The refreshing terminal view over one aggregator snapshot."""
    totals = snapshot.get("totals", {})
    lines: List[str] = [
        "repro top — live telemetry "
        f"({totals.get('records', 0)} records, "
        f"{totals.get('dropped_records', 0)} dropped)",
        "",
    ]

    workers = snapshot.get("workers", {})
    table = TextTable(
        ["worker", "iters", "rate/s", "aborts", "staleness", "seen(s)"],
        title="workers",
    )
    for worker_id in sorted(workers, key=int):
        entry = workers[worker_id]
        table.add_row([
            worker_id,
            str(entry.get("iterations", 0)),
            _fmt(entry.get("rate_per_s")),
            str(entry.get("aborts", 0)),
            _fmt(entry.get("staleness"), "{:.1f}"),
            _fmt(entry.get("last_seen_s_ago")),
        ])
    lines.append(table.render())

    phases = snapshot.get("phases", {})
    if phases:
        phase_table = TextTable(
            ["phase", "count", "total s"], title="phase breakdown"
        )
        for name, entry in phases.items():
            phase_table.add_row([
                name, str(entry["count"]), f"{entry['total_s']:.3f}",
            ])
        lines.append("")
        lines.append(phase_table.render())

    gauges = snapshot.get("gauges", {})
    if gauges:
        gauge_table = TextTable(["source", "gauge", "value"], title="gauges")
        for source, values in gauges.items():
            for name, value in values.items():
                gauge_table.add_row([source, name, f"{value:g}"])
        lines.append("")
        lines.append(gauge_table.render())

    detectors = snapshot.get("detectors", {})
    straggler = detectors.get("straggler", {})
    storm = detectors.get("abort_storm", {})
    lines.append("")
    lines.append(
        "detectors: stragglers="
        + (str(straggler.get("stragglers", [])) or "[]")
        + f" | abort_storm storming={storm.get('storming', False)}"
        + f" storms={storm.get('storm_count', 0)}"
        + f" ratio={_fmt(storm.get('abort_ratio'))}"
    )

    rings = snapshot.get("rings", {})
    if rings:
        ring_bits = ", ".join(
            f"{source}: {stats['pushed']} pushed/{stats['dropped']} dropped"
            for source, stats in rings.items()
        )
        lines.append(f"rings: {ring_bits}")
    return "\n".join(lines)


def run_dashboard(
    aggregator: TelemetryAggregator,
    *,
    now_fn: Callable[[], float],
    sleep_fn: Callable[[float], None],
    write: Callable[[str], None],
    interval_s: float = 1.0,
    duration_s: Optional[float] = None,
    once: bool = False,
    as_json: bool = False,
    clear_screen: bool = True,
    stop_when: Optional[Callable[[], bool]] = None,
) -> dict:
    """Poll + render until the duration elapses (or ``stop_when`` fires).

    Returns the final snapshot (what ``--json`` prints).  With ``once``
    the aggregator is polled a single time and one frame is emitted —
    the CI/scripting mode.
    """
    started = now_fn()
    while True:
        now = now_fn()
        aggregator.poll(now)
        snapshot = aggregator.snapshot(now)
        done = (
            once
            or (duration_s is not None and now - started >= duration_s)
            or (stop_when is not None and stop_when())
        )
        if not as_json:
            frame = render_dashboard(snapshot)
            if clear_screen and not once:
                frame = _CLEAR + frame
            write(frame + "\n")
        if done:
            if as_json:
                write(json.dumps(snapshot, indent=1, sort_keys=True) + "\n")
            return snapshot
        sleep_fn(interval_s)


# ----------------------------------------------------------------------
# Trace replay
# ----------------------------------------------------------------------
def trace_worker_count(trace: dict) -> int:
    """Worker count implied by a trace's track metadata (at least 1)."""
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return 1
    worker_ids = []
    for event in events:
        if event.get("ph") != "M" or event.get("name") != "thread_name":
            continue
        match = WORKER_TRACK_RE.match(
            str(event.get("args", {}).get("name", ""))
        )
        if match:
            worker_ids.append(int(match.group(1)))
    return max(worker_ids) + 1 if worker_ids else 1


def iter_trace_records(
    trace: dict,
) -> Iterator[Tuple[float, str, LiveRecord]]:
    """Spans/instants of a trace-format-v2 file as live records.

    Yields ``(ts_seconds, source, record)`` in timestamp order; the
    source is derived from the track (worker tracks map to their worker
    ring name, everything else to ``"replay"``).  Flow events and
    metrics are skipped — the dashboard aggregates what the live plane
    exports.
    """
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("not a Chrome trace-event object (no 'traceEvents')")
    tracks = {
        (event.get("pid"), event.get("tid")): str(
            event.get("args", {}).get("name", "")
        )
        for event in events
        if event.get("ph") == "M" and event.get("name") == "thread_name"
    }

    decoded: List[Tuple[float, str, LiveRecord]] = []
    for event in events:
        phase = event.get("ph")
        track = tracks.get((event.get("pid"), event.get("tid")), "")
        if not track:
            continue
        match = WORKER_TRACK_RE.match(track)
        source = f"worker-{match.group(1)}" if match else "replay"
        if phase == "X":
            start = float(event.get("ts", 0.0)) * _US_TO_S
            end = start + float(event.get("dur", 0.0)) * _US_TO_S
            decoded.append((
                end, source,
                LiveSpan(
                    track=track, name=str(event.get("name", "")),
                    cat=str(event.get("cat", "")), start=start, end=end,
                ),
            ))
        elif phase == "i":
            ts = float(event.get("ts", 0.0)) * _US_TO_S
            args = event.get("args") or {}
            decoded.append((
                ts, source,
                LiveInstant(
                    track=track, name=str(event.get("name", "")),
                    cat=str(event.get("cat", "")), ts=ts,
                    args_json=json.dumps(args) if args else "",
                ),
            ))
    decoded.sort(key=lambda item: item[0])
    return iter(decoded)


def replay_trace(
    trace: dict,
    aggregator: TelemetryAggregator,
    *,
    speed: float = 0.0,
    sleep_fn: Optional[Callable[[float], None]] = None,
    on_frame: Optional[Callable[[dict], None]] = None,
    frame_interval_s: float = 0.5,
) -> dict:
    """Feed a recorded trace through the aggregator.

    With ``speed`` > 0 (and a ``sleep_fn``), replays at that multiple of
    recorded time and emits a dashboard frame via ``on_frame`` roughly
    every ``frame_interval_s`` of *replayed* time; with ``speed`` == 0
    the whole trace is applied instantly.  Returns the final snapshot.
    """
    last_ts: Optional[float] = None
    next_frame: Optional[float] = None
    for ts, source, record in iter_trace_records(trace):
        if speed > 0 and sleep_fn is not None and last_ts is not None:
            delay = (ts - last_ts) / speed
            if delay > 0:
                sleep_fn(delay)
        last_ts = ts
        aggregator.apply(source, record, recv_ts=ts)
        if on_frame is not None:
            if next_frame is None or ts >= next_frame:
                on_frame(aggregator.snapshot(ts))
                next_frame = ts + frame_interval_s
    return aggregator.snapshot(last_ts if last_ts is not None else None)
