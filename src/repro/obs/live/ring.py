"""Lock-free SPSC shared-memory telemetry ring (the live exporter's wire).

Each exporting process owns exactly one :class:`ShmRing`: a single
``multiprocessing.shared_memory`` segment holding an int64 cursor header
plus a byte payload area.  The writer (the instrumented child process)
appends variable-length binary records and publishes them by advancing
the ``tail`` cursor; the reader (the parent's aggregator) consumes up to
the published ``tail`` and advances ``head``.  Cursors are monotonically
increasing byte counts — positions are taken modulo the capacity — so a
single aligned int64 store *is* the publish, the same single-writer
memory model :mod:`repro.ps.shm` builds its seqlock on (and the reason
this needs no locks: one producer, one consumer, each owning one cursor).

Overflow never blocks the training hot path: a record that does not fit
is **dropped, newest-first**, and counted in the ``dropped`` header slot
so the aggregator can report exactly how much telemetry was lost.

Record wire format (little-endian, packed)::

    u32 length | u8 kind | payload…

with strings as ``u16 length + utf-8`` and all scalars ``f64``.  The
decoded form is the small ``Live*`` record dataclasses below — the
currency between the ring, the aggregator, and the trace replayer.

Like the rest of ``repro.obs`` this module never reads a clock:
timestamps are stamped by the caller (the runtime backends inject
``time.monotonic`` into :class:`RingWriter`).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, List, Optional, Tuple, Union

from repro.ps.shm import _retrack, _untrack

__all__ = [
    "DEFAULT_RING_BYTES",
    "LiveSpan",
    "LiveInstant",
    "LiveCount",
    "LiveGauge",
    "LiveSample",
    "LiveAnnounce",
    "LiveRecord",
    "RingSpec",
    "ShmRing",
    "RingWriter",
    "NullRingWriter",
    "NULL_RING_WRITER",
]

#: int64 header slots: read cursor, write cursor, dropped records,
#: pushed records.  Cursors count bytes since creation (never wrap).
_HEADER_SLOTS = 4
_HEAD = 0
_TAIL = 1
_DROPPED = 2
_PUSHED = 3
_HEADER_BYTES = _HEADER_SLOTS * 8

#: Record kinds on the wire.
_KIND_SPAN = 1
_KIND_INSTANT = 2
_KIND_COUNT = 3
_KIND_GAUGE = 4
_KIND_SAMPLE = 5
_KIND_ANNOUNCE = 6

_LEN = struct.Struct("<I")
_KIND = struct.Struct("<B")
_F64 = struct.Struct("<d")
_STR_LEN = struct.Struct("<H")

#: Default ring capacity: 256 KiB of payload per process comfortably
#: holds several seconds of per-iteration records at smoke-bench rates.
DEFAULT_RING_BYTES = 256 * 1024


# ----------------------------------------------------------------------
# Decoded records — the currency between ring, aggregator, and replay
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LiveSpan:
    """One completed operation ``[start, end]`` on a track."""

    track: str
    name: str
    cat: str
    start: float
    end: float


@dataclass(frozen=True)
class LiveInstant:
    """One point event on a track (``args_json`` may carry decoration)."""

    track: str
    name: str
    cat: str
    ts: float
    args_json: str = ""


@dataclass(frozen=True)
class LiveCount:
    """A counter increment (``amount`` since the previous record)."""

    name: str
    amount: float
    ts: float


@dataclass(frozen=True)
class LiveGauge:
    """A gauge level at ``ts`` (queue depth, staleness, pending timers)."""

    name: str
    value: float
    ts: float


@dataclass(frozen=True)
class LiveSample:
    """One histogram/series observation (latency, byte size)."""

    name: str
    value: float
    ts: float


@dataclass(frozen=True)
class LiveAnnounce:
    """The writer's hello: its source name, clock reading, and metadata."""

    source: str
    writer_ts: float
    meta_json: str = ""


LiveRecord = Union[
    LiveSpan, LiveInstant, LiveCount, LiveGauge, LiveSample, LiveAnnounce
]


# ----------------------------------------------------------------------
# Binary encoding
# ----------------------------------------------------------------------
def _pack_str(parts: List[bytes], text: str) -> None:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raw = raw[:0xFFFF]
    parts.append(_STR_LEN.pack(len(raw)))
    parts.append(raw)


def _unpack_str(buf: bytes, offset: int) -> Tuple[str, int]:
    (length,) = _STR_LEN.unpack_from(buf, offset)
    offset += _STR_LEN.size
    return buf[offset:offset + length].decode("utf-8"), offset + length


def encode_record(record: LiveRecord) -> bytes:
    """One record as its framed wire bytes (length prefix included)."""
    parts: List[bytes] = []
    if isinstance(record, LiveSpan):
        parts.append(_KIND.pack(_KIND_SPAN))
        parts.append(_F64.pack(record.start))
        parts.append(_F64.pack(record.end))
        _pack_str(parts, record.track)
        _pack_str(parts, record.name)
        _pack_str(parts, record.cat)
    elif isinstance(record, LiveInstant):
        parts.append(_KIND.pack(_KIND_INSTANT))
        parts.append(_F64.pack(record.ts))
        _pack_str(parts, record.track)
        _pack_str(parts, record.name)
        _pack_str(parts, record.cat)
        _pack_str(parts, record.args_json)
    elif isinstance(record, LiveCount):
        parts.append(_KIND.pack(_KIND_COUNT))
        parts.append(_F64.pack(record.ts))
        parts.append(_F64.pack(record.amount))
        _pack_str(parts, record.name)
    elif isinstance(record, LiveGauge):
        parts.append(_KIND.pack(_KIND_GAUGE))
        parts.append(_F64.pack(record.ts))
        parts.append(_F64.pack(record.value))
        _pack_str(parts, record.name)
    elif isinstance(record, LiveSample):
        parts.append(_KIND.pack(_KIND_SAMPLE))
        parts.append(_F64.pack(record.ts))
        parts.append(_F64.pack(record.value))
        _pack_str(parts, record.name)
    elif isinstance(record, LiveAnnounce):
        parts.append(_KIND.pack(_KIND_ANNOUNCE))
        parts.append(_F64.pack(record.writer_ts))
        _pack_str(parts, record.source)
        _pack_str(parts, record.meta_json)
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown live record {record!r}")
    body = b"".join(parts)
    return _LEN.pack(len(body)) + body


def decode_record(body: bytes) -> Optional[LiveRecord]:
    """One record back from its body bytes (no length prefix).

    Returns None for an unknown kind — a newer writer talking to an
    older reader degrades to dropped records, not a crash.
    """
    (kind,) = _KIND.unpack_from(body, 0)
    offset = _KIND.size
    if kind == _KIND_SPAN:
        start, end = struct.unpack_from("<dd", body, offset)
        offset += 16
        track, offset = _unpack_str(body, offset)
        name, offset = _unpack_str(body, offset)
        cat, _ = _unpack_str(body, offset)
        return LiveSpan(track=track, name=name, cat=cat, start=start, end=end)
    if kind == _KIND_INSTANT:
        (ts,) = _F64.unpack_from(body, offset)
        offset += 8
        track, offset = _unpack_str(body, offset)
        name, offset = _unpack_str(body, offset)
        cat, offset = _unpack_str(body, offset)
        args_json, _ = _unpack_str(body, offset)
        return LiveInstant(
            track=track, name=name, cat=cat, ts=ts, args_json=args_json
        )
    if kind in (_KIND_COUNT, _KIND_GAUGE, _KIND_SAMPLE):
        ts, value = struct.unpack_from("<dd", body, offset)
        offset += 16
        name, _ = _unpack_str(body, offset)
        if kind == _KIND_COUNT:
            return LiveCount(name=name, amount=value, ts=ts)
        if kind == _KIND_GAUGE:
            return LiveGauge(name=name, value=value, ts=ts)
        return LiveSample(name=name, value=value, ts=ts)
    if kind == _KIND_ANNOUNCE:
        (writer_ts,) = _F64.unpack_from(body, offset)
        offset += 8
        source, offset = _unpack_str(body, offset)
        meta_json, _ = _unpack_str(body, offset)
        return LiveAnnounce(
            source=source, writer_ts=writer_ts, meta_json=meta_json
        )
    return None


# ----------------------------------------------------------------------
# The ring itself
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RingSpec:
    """Picklable/JSON-able attach handle for one ring."""

    source: str
    shm_name: str
    capacity: int

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "shm_name": self.shm_name,
            "capacity": self.capacity,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RingSpec":
        return cls(
            source=str(data["source"]),
            shm_name=str(data["shm_name"]),
            capacity=int(data["capacity"]),
        )


class ShmRing:
    """One SPSC byte ring over a shared-memory segment.

    The *creator* is the owner (closes **and** unlinks); an attacher
    only closes.  In the multiprocess backend the parent creates every
    ring pre-fork and children inherit the mapping, mirroring the
    ownership protocol of :class:`repro.ps.shm.ShmParamStore`.
    """

    def __init__(
        self,
        source: str,
        shm: shared_memory.SharedMemory,
        capacity: int,
        owner: bool,
    ):
        self.source = source
        self.capacity = capacity
        self._shm = shm
        self._owner = owner
        self._closed = False

    # -- construction ---------------------------------------------------
    @classmethod
    def create(
        cls, source: str, capacity: int = DEFAULT_RING_BYTES
    ) -> "ShmRing":
        """Allocate a ring with ``capacity`` payload bytes."""
        if capacity < 64:
            raise ValueError(f"ring capacity too small: {capacity}")
        shm = shared_memory.SharedMemory(
            create=True, size=_HEADER_BYTES + capacity
        )
        shm.buf[:_HEADER_BYTES] = b"\x00" * _HEADER_BYTES
        return cls(source, shm, capacity, owner=True)

    @classmethod
    def attach(cls, spec: RingSpec) -> "ShmRing":
        """Map an existing ring by spec (non-owning)."""
        shm = shared_memory.SharedMemory(name=spec.shm_name)
        _untrack(shm)
        return cls(spec.source, shm, spec.capacity, owner=False)

    def spec(self) -> RingSpec:
        return RingSpec(
            source=self.source, shm_name=self._shm.name, capacity=self.capacity
        )

    # -- cursor header --------------------------------------------------
    def _load(self, slot: int) -> int:
        return int.from_bytes(
            self._shm.buf[slot * 8:slot * 8 + 8], "little", signed=True
        )

    def _store(self, slot: int, value: int) -> None:
        self._shm.buf[slot * 8:slot * 8 + 8] = value.to_bytes(
            8, "little", signed=True
        )

    @property
    def dropped(self) -> int:
        """Records dropped on overflow since creation."""
        return self._load(_DROPPED)

    @property
    def pushed(self) -> int:
        """Records successfully published since creation."""
        return self._load(_PUSHED)

    def pending_bytes(self) -> int:
        """Published-but-unconsumed payload bytes."""
        return self._load(_TAIL) - self._load(_HEAD)

    def stats(self) -> dict:
        """JSON-ready cursor/drop summary."""
        return {
            "capacity": self.capacity,
            "pushed": self.pushed,
            "dropped": self.dropped,
            "pending_bytes": self.pending_bytes(),
        }

    # -- producer side --------------------------------------------------
    def try_push(self, framed: bytes) -> bool:
        """Publish one framed record; False (and a drop count) on overflow.

        Writer-only.  The payload bytes land before the single tail
        store that publishes them — the write order the consumer's
        tail-snapshot read depends on.
        """
        size = len(framed)
        head = self._load(_HEAD)
        tail = self._load(_TAIL)
        if size > self.capacity - (tail - head):
            self._store(_DROPPED, self._load(_DROPPED) + 1)
            return False
        position = _HEADER_BYTES + tail % self.capacity
        first = min(size, _HEADER_BYTES + self.capacity - position)
        self._shm.buf[position:position + first] = framed[:first]
        if first < size:
            self._shm.buf[_HEADER_BYTES:_HEADER_BYTES + size - first] = (
                framed[first:]
            )
        self._store(_PUSHED, self._load(_PUSHED) + 1)
        self._store(_TAIL, tail + size)
        return True

    def push(self, record: LiveRecord) -> bool:
        """Encode and publish one record (writer-only)."""
        return self.try_push(encode_record(record))

    # -- consumer side --------------------------------------------------
    def drain(self, max_records: Optional[int] = None) -> List[LiveRecord]:
        """Consume every published record (reader-only).

        Snapshots the tail once, decodes the records between the
        cursors, then advances the head in one store — partial records
        are impossible because the producer publishes the tail only
        after the payload bytes are in place.
        """
        tail = self._load(_TAIL)
        head = self._load(_HEAD)
        records: List[LiveRecord] = []
        cursor = head
        while cursor < tail:
            if max_records is not None and len(records) >= max_records:
                break
            body_len = int.from_bytes(self._read_bytes(cursor, 4), "little")
            cursor += 4
            body = self._read_bytes(cursor, body_len)
            cursor += body_len
            decoded = decode_record(bytes(body))
            if decoded is not None:
                records.append(decoded)
        self._store(_HEAD, cursor)
        return records

    def _read_bytes(self, cursor: int, size: int) -> bytes:
        position = _HEADER_BYTES + cursor % self.capacity
        first = min(size, _HEADER_BYTES + self.capacity - position)
        chunk = bytes(self._shm.buf[position:position + first])
        if first < size:
            chunk += bytes(
                self._shm.buf[_HEADER_BYTES:_HEADER_BYTES + size - first]
            )
        return chunk

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Unmap the segment in this process (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()

    def unlink(self) -> None:
        """Free the OS object (owner only)."""
        if not self._owner:
            raise RuntimeError("only the owning ring may unlink its segment")
        _retrack(self._shm)
        self._shm.unlink()

    def __repr__(self) -> str:
        return (
            f"ShmRing({self.source!r}, capacity={self.capacity}, "
            f"owner={self._owner})"
        )


# ----------------------------------------------------------------------
# Writer facade
# ----------------------------------------------------------------------
class RingWriter:
    """The instrumentation-facing handle: tracer-shaped methods that
    encode straight into the ring.

    ``now_fn`` is injected by the runtime backend (the only layer allowed
    to read a wall clock); every method also accepts an explicit ``ts``
    so call sites that already stamped a time don't read the clock twice.
    """

    enabled = True

    def __init__(
        self,
        ring: ShmRing,
        source: str,
        now_fn: Callable[[], float],
        meta_json: str = "",
    ):
        self.ring = ring
        self.source = source
        self._now = now_fn
        self.ring.push(
            LiveAnnounce(source=source, writer_ts=now_fn(), meta_json=meta_json)
        )

    def span(
        self,
        track: str,
        name: str,
        start: float,
        end: Optional[float] = None,
        cat: str = "span",
    ) -> None:
        self.ring.push(
            LiveSpan(
                track=track, name=name, cat=cat, start=start,
                end=self._now() if end is None else end,
            )
        )

    def instant(
        self,
        track: str,
        name: str,
        ts: Optional[float] = None,
        cat: str = "instant",
        args_json: str = "",
    ) -> None:
        self.ring.push(
            LiveInstant(
                track=track, name=name, cat=cat,
                ts=self._now() if ts is None else ts, args_json=args_json,
            )
        )

    def count(
        self, name: str, amount: float = 1.0, ts: Optional[float] = None
    ) -> None:
        self.ring.push(
            LiveCount(
                name=name, amount=amount,
                ts=self._now() if ts is None else ts,
            )
        )

    def gauge(self, name: str, value: float, ts: Optional[float] = None) -> None:
        self.ring.push(
            LiveGauge(
                name=name, value=value,
                ts=self._now() if ts is None else ts,
            )
        )

    def sample(self, name: str, value: float, ts: Optional[float] = None) -> None:
        self.ring.push(
            LiveSample(
                name=name, value=value,
                ts=self._now() if ts is None else ts,
            )
        )

    def now(self) -> float:
        """The injected clock, for call sites that span an operation."""
        return self._now()

    def __repr__(self) -> str:
        return f"RingWriter({self.source!r}, ring={self.ring!r})"


class NullRingWriter:
    """The disabled fast path: every method is an empty body.

    The shared :data:`NULL_RING_WRITER` is what instrumentation sites
    hold when live export is off — one attribute lookup plus one no-op
    call, bounded by the overhead-guard test alongside the null tracer.
    """

    enabled = False

    def span(self, *_args, **_kwargs) -> None:
        """No-op."""

    def instant(self, *_args, **_kwargs) -> None:
        """No-op."""

    def count(self, *_args, **_kwargs) -> None:
        """No-op."""

    def gauge(self, *_args, **_kwargs) -> None:
        """No-op."""

    def sample(self, *_args, **_kwargs) -> None:
        """No-op."""

    def now(self) -> float:
        """No-op (no clock behind it)."""
        return 0.0

    def __repr__(self) -> str:
        return "NullRingWriter()"


#: Shared disabled writer — instrumented code's default when live export
#: is off.
NULL_RING_WRITER = NullRingWriter()
