"""Run-level wiring for live telemetry: one ring per process, one spec file.

A :class:`LiveTelemetrySession` is what a runtime backend (or ``repro
top --smoke``) holds: the parent creates one ring per worker plus a
``server`` and a ``parent`` ring *before* forking, children inherit
their mapping, and the parent stays the single owner that unlinks at
teardown — the same ownership protocol as the shm parameter store.

The session is JSON-serializable (:meth:`spec` / :meth:`write_spec`) so
a *separate* ``repro top`` process can attach to a run already in
flight.  SPSC discipline: each ring has exactly one consumer, so either
the run's own parent polls the aggregator (``--smoke``, in-process
monitoring) or an external dashboard does (spec-file attach) — never
both at once.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.live.aggregate import TelemetryAggregator
from repro.obs.live.ring import DEFAULT_RING_BYTES, RingSpec, ShmRing

__all__ = [
    "LIVE_SPEC_SCHEMA_VERSION",
    "SERVER_SOURCE",
    "PARENT_SOURCE",
    "LiveTelemetrySession",
    "worker_source",
]

#: Version stamp of the spec-file JSON.
LIVE_SPEC_SCHEMA_VERSION = 1

SERVER_SOURCE = "server"
PARENT_SOURCE = "parent"


def worker_source(worker_id: int) -> str:
    """Ring source name for one worker process."""
    return f"worker-{worker_id}"


class LiveTelemetrySession:
    """All the rings of one live-exported run, plus their lifecycle."""

    def __init__(
        self, rings: Dict[str, ShmRing], num_workers: int, owner: bool
    ) -> None:
        self._rings = rings
        self.num_workers = num_workers
        self._owner = owner

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, num_workers: int, ring_bytes: int = DEFAULT_RING_BYTES
    ) -> "LiveTelemetrySession":
        """Allocate one ring per worker plus server and parent rings."""
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        rings: Dict[str, ShmRing] = {}
        try:
            for worker_id in range(num_workers):
                source = worker_source(worker_id)
                rings[source] = ShmRing.create(source, ring_bytes)
            rings[SERVER_SOURCE] = ShmRing.create(SERVER_SOURCE, ring_bytes)
            rings[PARENT_SOURCE] = ShmRing.create(PARENT_SOURCE, ring_bytes)
        except Exception:
            for ring in rings.values():
                ring.close()
                ring.unlink()
            raise
        return cls(rings, num_workers, owner=True)

    @classmethod
    def attach(cls, spec: dict) -> "LiveTelemetrySession":
        """Map an existing session from its spec dict (non-owning)."""
        version = spec.get("schema_version")
        if version != LIVE_SPEC_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported live spec schema_version {version!r} "
                f"(this build reads v{LIVE_SPEC_SCHEMA_VERSION})"
            )
        rings: Dict[str, ShmRing] = {}
        try:
            for entry in spec.get("rings", []):
                ring = ShmRing.attach(RingSpec.from_dict(entry))
                rings[ring.source] = ring
        except Exception:
            for ring in rings.values():
                ring.close()
            raise
        return cls(rings, int(spec.get("num_workers", 0)), owner=False)

    @classmethod
    def load_spec(cls, path: str) -> "LiveTelemetrySession":
        """Attach from a spec file written by :meth:`write_spec`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.attach(json.load(handle))

    # ------------------------------------------------------------------
    # Spec
    # ------------------------------------------------------------------
    def spec(self) -> dict:
        """The JSON-able attach handle for every ring."""
        return {
            "schema_version": LIVE_SPEC_SCHEMA_VERSION,
            "num_workers": self.num_workers,
            "rings": [
                self._rings[source].spec().to_dict()
                for source in sorted(self._rings)
            ],
        }

    def write_spec(self, path: str) -> None:
        """Write the spec file an external ``repro top`` attaches through."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.spec(), handle, indent=1, sort_keys=True)
            handle.write("\n")

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def ring(self, source: str) -> ShmRing:
        return self._rings[source]

    def worker_ring(self, worker_id: int) -> ShmRing:
        return self._rings[worker_source(worker_id)]

    @property
    def server_ring(self) -> ShmRing:
        return self._rings[SERVER_SOURCE]

    @property
    def parent_ring(self) -> ShmRing:
        return self._rings[PARENT_SOURCE]

    def sources(self) -> List[str]:
        return sorted(self._rings)

    def aggregator(
        self, retain_records: bool = True,
        num_workers: Optional[int] = None,
    ) -> TelemetryAggregator:
        """A fresh aggregator polling every ring of this session."""
        aggregator = TelemetryAggregator(
            num_workers if num_workers is not None else max(self.num_workers, 1),
            retain_records=retain_records,
        )
        for source in sorted(self._rings):
            aggregator.add_ring(self._rings[source])
        return aggregator

    def stats(self) -> Dict[str, dict]:
        """Per-ring cursor/drop stats (JSON-ready)."""
        return {
            source: self._rings[source].stats()
            for source in sorted(self._rings)
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unmap every ring in this process (idempotent)."""
        for ring in self._rings.values():
            ring.close()

    def unlink(self) -> None:
        """Free the OS segments (owner only, after every process closed)."""
        if not self._owner:
            raise RuntimeError("only the creating session may unlink its rings")
        for ring in self._rings.values():
            ring.unlink()

    def __repr__(self) -> str:
        return (
            f"LiveTelemetrySession(workers={self.num_workers}, "
            f"rings={len(self._rings)}, owner={self._owner})"
        )
