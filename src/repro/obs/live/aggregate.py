"""Parent-side online aggregation of the live telemetry streams.

:class:`TelemetryAggregator` polls any number of :class:`ShmRing`
exporters (one per process), aligns their timestamps, and folds the
records into rolling state: per-worker iteration rates, phase
breakdowns, queue-depth gauges, staleness, and the existing
:class:`~repro.obs.straggler.StragglerDetector` /
:class:`~repro.obs.straggler.AbortStormDetector` verdicts — the online
signals the ROADMAP's detection→mitigation loop needs *during* a run,
not after it.

Clock alignment
---------------
Every source announces its clock mode.  Processes on one host sharing
``CLOCK_MONOTONIC`` (the fork-based multiprocess backend) declare
``shared``: no offset is applied, and the minimum observed
``receive_ts - record_ts`` is only *reported* as the skew/latency bound.
A source with an ``independent`` clock (a future socket backend peer on
another host) gets the classic one-way estimate: the minimum observed
``receive_ts - record_ts`` over all its records approaches the true
offset from below-plus-minimum-latency, and drained timestamps are
shifted by it.

Like the rest of ``repro.obs`` this module never reads a clock — the
poller passes ``now`` in, so the aggregator itself stays deterministic
given its inputs (the replay tests exploit exactly that).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.obs.analysis.graph import WORKER_TRACK_RE
from repro.obs.core import InstantRecord, SpanRecord, TraceCollector
from repro.obs.live.ring import (
    LiveAnnounce,
    LiveCount,
    LiveGauge,
    LiveInstant,
    LiveRecord,
    LiveSample,
    LiveSpan,
    ShmRing,
)
from repro.obs.straggler import AbortStormDetector, StragglerDetector

__all__ = ["SNAPSHOT_SCHEMA_VERSION", "TelemetryAggregator"]

#: Version stamp on every :meth:`TelemetryAggregator.snapshot`.
SNAPSHOT_SCHEMA_VERSION = 1

#: Iteration-end timestamps retained per worker for the rolling rate.
_RATE_WINDOW = 64

#: Clock modes a source may announce.
_CLOCK_SHARED = "shared"
_CLOCK_INDEPENDENT = "independent"


class _SourceState:
    """Rolling per-source (per-process) aggregation state."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.clock_mode = _CLOCK_SHARED
        #: min(receive_ts - record_ts): the one-way offset/latency bound
        self.skew_bound_s: Optional[float] = None
        self.last_record_ts: Optional[float] = None
        self.records_seen = 0
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        #: span name → [count, total seconds]
        self.span_stats: Dict[str, List[float]] = {}
        self.meta: Dict[str, object] = {}

    @property
    def offset_s(self) -> float:
        """The offset applied when aligning this source's timestamps."""
        if self.clock_mode == _CLOCK_INDEPENDENT and self.skew_bound_s:
            return self.skew_bound_s
        return 0.0

    def observe_skew(self, record_ts: float, recv_ts: float) -> None:
        delta = recv_ts - record_ts
        if self.skew_bound_s is None or delta < self.skew_bound_s:
            self.skew_bound_s = delta


class _WorkerView:
    """Rolling per-worker view (keyed by worker id across all sources)."""

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.iterations = 0
        self.aborts = 0
        self.iteration_ends: Deque[float] = deque(maxlen=_RATE_WINDOW)
        self.last_event_ts: Optional[float] = None

    def rate_per_s(self) -> Optional[float]:
        if len(self.iteration_ends) < 2:
            return None
        elapsed = self.iteration_ends[-1] - self.iteration_ends[0]
        if elapsed <= 0:
            return None
        return (len(self.iteration_ends) - 1) / elapsed


class TelemetryAggregator:
    """Polls worker rings, maintains rolling gauges, feeds the detectors.

    Records are retained (in arrival order, with their source) so
    :meth:`drain_to_collector` can serialize the whole captured stream
    to trace-format-v2 after the run; pass ``retain_records=False`` for
    a pure monitoring deployment where memory must stay bounded.
    """

    def __init__(
        self,
        num_workers: int,
        retain_records: bool = True,
        straggler: Optional[StragglerDetector] = None,
        abort_storm: Optional[AbortStormDetector] = None,
    ) -> None:
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        self.num_workers = num_workers
        self.retain_records = retain_records
        self.straggler = (
            straggler if straggler is not None else StragglerDetector(num_workers)
        )
        self.abort_storm = (
            abort_storm if abort_storm is not None else AbortStormDetector()
        )
        self._rings: Dict[str, ShmRing] = {}
        self._sources: Dict[str, _SourceState] = {}
        self._workers: Dict[int, _WorkerView] = {
            w: _WorkerView(w) for w in range(num_workers)
        }
        #: retained ``(source, record)`` stream for drain-to-trace
        self._retained: List[Tuple[str, LiveRecord]] = []
        self.records_applied = 0

    # ------------------------------------------------------------------
    # Sources
    # ------------------------------------------------------------------
    def add_ring(self, ring: ShmRing) -> None:
        """Start polling ``ring`` (keyed by its source name)."""
        if ring.source in self._rings:
            raise ValueError(f"duplicate ring source {ring.source!r}")
        self._rings[ring.source] = ring
        self._sources.setdefault(ring.source, _SourceState(ring.source))

    def sources(self) -> List[str]:
        return sorted(self._sources)

    def _source(self, source: str) -> _SourceState:
        state = self._sources.get(source)
        if state is None:
            state = _SourceState(source)
            self._sources[source] = state
        return state

    # ------------------------------------------------------------------
    # Polling and record application
    # ------------------------------------------------------------------
    def poll(self, now: float) -> int:
        """Drain every ring once; returns the records consumed."""
        consumed = 0
        for source in sorted(self._rings):
            for record in self._rings[source].drain():
                self.apply(source, record, recv_ts=now)
                consumed += 1
        return consumed

    def apply(self, source: str, record: LiveRecord, recv_ts: float) -> None:
        """Fold one record into the rolling state.

        Public so the trace replayer (``repro top --replay``) and the
        tests can feed synthetic streams without a ring.
        """
        state = self._source(source)
        state.records_seen += 1
        self.records_applied += 1
        if self.retain_records:
            self._retained.append((source, record))

        if isinstance(record, LiveAnnounce):
            state.observe_skew(record.writer_ts, recv_ts)
            state.last_record_ts = record.writer_ts
            if record.meta_json:
                try:
                    meta = json.loads(record.meta_json)
                except ValueError:
                    meta = {}
                if isinstance(meta, dict):
                    state.meta.update(meta)
                    mode = meta.get("clock")
                    if mode in (_CLOCK_SHARED, _CLOCK_INDEPENDENT):
                        state.clock_mode = str(mode)
            return

        ts = _record_ts(record)
        state.observe_skew(ts, recv_ts)
        state.last_record_ts = ts
        offset = state.offset_s

        if isinstance(record, LiveSpan):
            stats = state.span_stats.setdefault(record.name, [0, 0.0])
            stats[0] += 1
            stats[1] += max(record.end - record.start, 0.0)
            self._apply_worker_span(record, offset)
        elif isinstance(record, LiveInstant):
            self._apply_worker_instant(record, offset)
        elif isinstance(record, LiveCount):
            state.counters[record.name] = (
                state.counters.get(record.name, 0.0) + record.amount
            )
        elif isinstance(record, LiveGauge):
            state.gauges[record.name] = record.value
        elif isinstance(record, LiveSample):
            # Samples aggregate at drain time; online we keep the last
            # value visible next to the gauges.
            state.gauges[record.name] = record.value

    def _worker_for_track(self, track: str) -> Optional[_WorkerView]:
        match = WORKER_TRACK_RE.match(track)
        if not match:
            return None
        worker_id = int(match.group(1))
        view = self._workers.get(worker_id)
        if view is None:
            view = _WorkerView(worker_id)
            self._workers[worker_id] = view
        return view

    def _apply_worker_span(self, record: LiveSpan, offset: float) -> None:
        view = self._worker_for_track(record.track)
        if view is None:
            return
        end = record.end + offset
        view.last_event_ts = end
        if record.name == "iteration":
            view.iterations += 1
            view.iteration_ends.append(end)
        elif record.name == "push":
            self.straggler.record_push(view.worker_id, end)
            self.abort_storm.record_push(end)

    def _apply_worker_instant(self, record: LiveInstant, offset: float) -> None:
        view = self._worker_for_track(record.track)
        if view is None:
            return
        ts = record.ts + offset
        view.last_event_ts = ts
        if record.name == "abort":
            view.aborts += 1
            self.abort_storm.record_abort(ts)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self, now: Optional[float] = None) -> dict:
        """JSON-ready rolling state: workers, gauges, rings, detectors."""
        workers = {}
        for worker_id in sorted(self._workers):
            view = self._workers[worker_id]
            entry: Dict[str, object] = {
                "iterations": view.iterations,
                "aborts": view.aborts,
                "rate_per_s": view.rate_per_s(),
                "staleness": self._staleness_for(worker_id),
            }
            if now is not None and view.last_event_ts is not None:
                entry["last_seen_s_ago"] = max(now - view.last_event_ts, 0.0)
            workers[str(worker_id)] = entry

        counters: Dict[str, float] = {}
        for state in self._sources.values():
            for name, value in state.counters.items():
                counters[name] = counters.get(name, 0.0) + value

        return {
            "schema_version": SNAPSHOT_SCHEMA_VERSION,
            "workers": workers,
            "phases": self._phase_breakdown(),
            "gauges": {
                source: dict(sorted(state.gauges.items()))
                for source, state in sorted(self._sources.items())
                if state.gauges
            },
            "counters": dict(sorted(counters.items())),
            "rings": {
                source: self._rings[source].stats()
                for source in sorted(self._rings)
            },
            "clock": {
                source: {
                    "mode": state.clock_mode,
                    "offset_applied_s": state.offset_s,
                    "skew_bound_s": state.skew_bound_s,
                }
                for source, state in sorted(self._sources.items())
            },
            "detectors": {
                "straggler": self.straggler.report(),
                "abort_storm": self.abort_storm.report(),
            },
            "totals": {
                "records": self.records_applied,
                "iterations": sum(v.iterations for v in self._workers.values()),
                "aborts": sum(v.aborts for v in self._workers.values()),
                "dropped_records": sum(
                    ring.stats()["dropped"] for ring in self._rings.values()
                ),
            },
        }

    def _staleness_for(self, worker_id: int) -> Optional[float]:
        """Last staleness the server observed for ``worker_id``'s pushes."""
        for state in self._sources.values():
            value = state.gauges.get(f"rt.staleness.w{worker_id}")
            if value is not None:
                return value
        return None

    def _phase_breakdown(self) -> Dict[str, dict]:
        """Span time by name across all sources (count + total seconds)."""
        merged: Dict[str, List[float]] = {}
        for state in self._sources.values():
            for name, (count, total) in state.span_stats.items():
                entry = merged.setdefault(name, [0, 0.0])
                entry[0] += count
                entry[1] += total
        return {
            name: {"count": int(count), "total_s": total}
            for name, (count, total) in sorted(merged.items())
        }

    # ------------------------------------------------------------------
    # Drain to trace-format-v2
    # ------------------------------------------------------------------
    def drain_to_collector(self, collector: TraceCollector) -> int:
        """Serialize the retained stream into ``collector``.

        Spans and instants land as wall-domain records, counts and
        samples as metrics/perf entries — the exact shapes
        :func:`repro.obs.perfetto.to_chrome_trace` serializes, so the
        resulting file is a first-class trace-format-v2 artifact that
        ``repro analyze``, ``repro trace``, and ``repro perf report``
        consume unchanged.  Returns the number of records drained.
        """
        if not self.retain_records:
            raise RuntimeError(
                "aggregator was built with retain_records=False; nothing "
                "to drain"
            )
        drained = 0
        for source, record in self._retained:
            drained += 1
            offset = self._source(source).offset_s
            if isinstance(record, LiveSpan):
                collector.append(
                    SpanRecord(
                        domain="wall", track=record.track, name=record.name,
                        cat=record.cat, start=record.start + offset,
                        end=record.end + offset,
                    )
                )
            elif isinstance(record, LiveInstant):
                args: Optional[dict] = None
                if record.args_json:
                    try:
                        parsed = json.loads(record.args_json)
                    except ValueError:
                        parsed = None
                    if isinstance(parsed, dict):
                        args = parsed
                collector.append(
                    InstantRecord(
                        domain="wall", track=record.track, name=record.name,
                        cat=record.cat, ts=record.ts + offset, args=args,
                    )
                )
            elif isinstance(record, LiveCount):
                collector.metrics.counter(record.name).inc(record.amount)
            elif isinstance(record, LiveGauge):
                collector.metrics.gauge(record.name).set(record.value)
            elif isinstance(record, LiveSample):
                collector.metrics.histogram(record.name).observe(record.value)
                collector.perf.series(record.name).append(
                    record.ts + offset, record.value
                )
            elif isinstance(record, LiveAnnounce):
                collector.metadata.setdefault(
                    f"live.source.{source}", record.source
                )
        for source in sorted(self._rings):
            stats = self._rings[source].stats()
            collector.metrics.gauge(f"live.ring.{source}.pushed").set(
                stats["pushed"]
            )
            collector.metrics.gauge(f"live.ring.{source}.dropped").set(
                stats["dropped"]
            )
        collector.perf.add_report("live.telemetry", {
            "straggler": self.straggler.report(),
            "abort_storm": self.abort_storm.report(),
        })
        collector.metadata.setdefault("live_capture", True)
        return drained

    def __repr__(self) -> str:
        return (
            f"TelemetryAggregator(workers={self.num_workers}, "
            f"sources={len(self._sources)}, applied={self.records_applied})"
        )


def _record_ts(record: LiveRecord) -> float:
    """The representative timestamp of a non-announce record."""
    if isinstance(record, LiveSpan):
        return record.end
    if isinstance(record, LiveAnnounce):  # pragma: no cover - handled earlier
        return record.writer_ts
    return record.ts
