"""repro — a from-scratch reproduction of *Stay Fresh: Speculative
Synchronization for Fast Distributed Machine Learning* (ICDCS 2018).

The package simulates a parameter-server ML cluster on a deterministic
virtual clock, trains real numpy models through pluggable synchronization
schemes (ASP / BSP / SSP / naïve waiting / SpecSync), and regenerates every
table and figure of the paper's evaluation.

Quickstart::

    from repro import ClusterSpec, AspPolicy, SpecSyncPolicy
    from repro.workloads import cifar10_workload

    cluster = ClusterSpec.homogeneous(40)
    workload = cifar10_workload()
    baseline = workload.run(cluster, AspPolicy(), seed=1)
    specsync = workload.run(cluster, SpecSyncPolicy.adaptive(), seed=1)
    print(specsync.speedup_over(baseline, workload.convergence))
"""

from repro.obs.log import install_null_handler

# Library etiquette: the package never configures logging output; the "repro"
# logger tree stays silent unless the application attaches a handler (the CLI
# does so for -v).
install_null_handler()

from repro.cluster import ClusterSpec, InstanceType, ComputeTimeModel, StragglerModel
from repro.core import (
    AdaptiveTuner,
    FixedTuner,
    SpecSyncHyperparams,
    SpecSyncPolicy,
    SpecSyncScheduler,
)
from repro.events import Simulator
from repro.metrics import ConvergenceCriterion, LossCurve, PapAnalysis, TraceRecorder
from repro.ml import ParamSet
from repro.netsim import Network, TransferLedger
from repro.ps import EngineConfig, ParameterStore, RunResult, TrainingEngine
from repro.sync import AspPolicy, BspPolicy, NaiveWaitingPolicy, SspPolicy
from repro.workloads import (
    Workload,
    cifar10_workload,
    imagenet_workload,
    matrix_factorization_workload,
    tiny_workload,
)

__version__ = "1.0.0"

__all__ = [
    "ClusterSpec",
    "InstanceType",
    "ComputeTimeModel",
    "StragglerModel",
    "AdaptiveTuner",
    "FixedTuner",
    "SpecSyncHyperparams",
    "SpecSyncPolicy",
    "SpecSyncScheduler",
    "Simulator",
    "ConvergenceCriterion",
    "LossCurve",
    "PapAnalysis",
    "TraceRecorder",
    "ParamSet",
    "Network",
    "TransferLedger",
    "EngineConfig",
    "ParameterStore",
    "RunResult",
    "TrainingEngine",
    "AspPolicy",
    "BspPolicy",
    "NaiveWaitingPolicy",
    "SspPolicy",
    "Workload",
    "cifar10_workload",
    "imagenet_workload",
    "matrix_factorization_workload",
    "tiny_workload",
    "__version__",
]
