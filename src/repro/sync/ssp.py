"""Stale synchronous parallel (SSP).

A worker may run ahead of the slowest worker by at most ``staleness_bound``
iterations; beyond that it blocks until the straggler catches up.  With
bound 0 SSP degenerates to BSP; with bound ∞ it is ASP — both relationships
are asserted by the test suite.
"""

from __future__ import annotations

from repro.ps.policy import SyncPolicy
from repro.utils.validation import check_non_negative

__all__ = ["SspPolicy"]


class SspPolicy(SyncPolicy):
    """Bounded-staleness execution (paper refs [6], [10], [13])."""

    def __init__(self, staleness_bound: int = 3):
        super().__init__()
        check_non_negative("staleness_bound", staleness_bound)
        self.staleness_bound = int(staleness_bound)
        self._bound_waits = 0

    @property
    def name(self) -> str:
        return f"ssp(s={self.staleness_bound})"

    def can_start_iteration(self, worker_id: int) -> bool:
        completed = self.engine.worker_view(worker_id).iterations_completed
        min_completed = min(
            self.engine.worker_view(w).iterations_completed
            for w in range(self.engine.num_workers)
        )
        if completed - min_completed > self.staleness_bound:
            self._bound_waits += 1
            return False
        return True

    def on_iteration_complete(self, worker_id: int, iteration: int) -> None:
        # A completion can only raise min_completed, which can only unblock
        # parked workers; re-check all of them.
        views = [
            self.engine.worker_view(w) for w in range(self.engine.num_workers)
        ]
        min_completed = min(v.iterations_completed for v in views)
        for view in views:
            if (
                view.parked
                and view.iterations_completed - min_completed <= self.staleness_bound
            ):
                self.engine.release_worker(view.worker_id)

    def summary(self) -> dict:
        return {"staleness_bound": self.staleness_bound, "bound_waits": self._bound_waits}
