"""Asynchronous parallel (ASP) — the paper's "Original" baseline.

Workers never wait and never abort: each one pulls, computes, and pushes as
fast as it can, maximizing update rate at the cost of stale snapshots.  The
base :class:`SyncPolicy` already encodes exactly this, so the class only
supplies a name.
"""

from __future__ import annotations

from repro.ps.policy import SyncPolicy

__all__ = ["AspPolicy"]


class AspPolicy(SyncPolicy):
    """Free-running asynchronous execution (MXNet's default dist_async)."""

    @property
    def name(self) -> str:
        return "asp"
