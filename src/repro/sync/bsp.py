"""Bulk synchronous parallel (BSP).

Workers synchronize at the end of each iteration: nobody starts iteration
k+1 until every worker has completed iteration k.  Fast workers idle at the
barrier — the synchronization overhead that motivates relaxed schemes, and
the reason BSP loses badly on heterogeneous clusters (paper Section VI-C).
"""

from __future__ import annotations

from repro.ps.policy import SyncPolicy

__all__ = ["BspPolicy"]


class BspPolicy(SyncPolicy):
    """A per-iteration barrier over all workers."""

    def __init__(self):
        super().__init__()
        self._barrier_waits = 0

    @property
    def name(self) -> str:
        return "bsp"

    def can_start_iteration(self, worker_id: int) -> bool:
        completed = self.engine.worker_view(worker_id).iterations_completed
        min_completed = min(
            self.engine.worker_view(w).iterations_completed
            for w in range(self.engine.num_workers)
        )
        if completed > min_completed:
            self._barrier_waits += 1
            return False
        return True

    def on_iteration_complete(self, worker_id: int, iteration: int) -> None:
        # If this completion closed the round, open the barrier for everyone
        # parked on it.
        views = [
            self.engine.worker_view(w) for w in range(self.engine.num_workers)
        ]
        min_completed = min(v.iterations_completed for v in views)
        for view in views:
            if view.parked and view.iterations_completed == min_completed:
                self.engine.release_worker(view.worker_id)

    def summary(self) -> dict:
        return {"barrier_waits": self._barrier_waits}
