"""Naïve waiting (paper Section III-B).

Every pull request is deferred by a fixed delay so the snapshot includes
pushes that would otherwise be invisible.  The paper shows a 1-second delay
helps both benchmark workloads, a 3-second delay yields little benefit, and
5 seconds does more harm than good (Fig. 5) — our Fig.-5 bench reproduces
that crossover shape.  SpecSync exists because picking the "right" fixed
delay is workload-dependent and fragile.
"""

from __future__ import annotations

from repro.ps.policy import SyncPolicy
from repro.utils.validation import check_non_negative

__all__ = ["NaiveWaitingPolicy"]


class NaiveWaitingPolicy(SyncPolicy):
    """Defer every pull by a constant number of virtual seconds."""

    def __init__(self, delay_s: float):
        super().__init__()
        self.delay_s = check_non_negative("delay_s", delay_s)
        self._total_delay = 0.0

    @property
    def name(self) -> str:
        return f"naive-wait({self.delay_s:g}s)"

    def pull_delay(self, worker_id: int) -> float:
        self._total_delay += self.delay_s
        return self.delay_s

    def summary(self) -> dict:
        return {"delay_s": self.delay_s, "total_delay_s": self._total_delay}
