"""Baseline synchronization schemes (paper Section II-C).

* :class:`AspPolicy` — asynchronous parallel, MXNet's default ("Original").
* :class:`BspPolicy` — bulk synchronous parallel with a per-iteration barrier.
* :class:`SspPolicy` — stale synchronous parallel with a bounded clock gap.
* :class:`NaiveWaitingPolicy` — Section III's fixed pull-delay strategy.

SpecSync itself lives in :mod:`repro.core` (it is the paper's contribution);
it composes with ASP and SSP via :class:`repro.core.specsync.SpecSyncPolicy`.
"""

from repro.sync.asp import AspPolicy
from repro.sync.bsp import BspPolicy
from repro.sync.ssp import SspPolicy
from repro.sync.naive_wait import NaiveWaitingPolicy

__all__ = ["AspPolicy", "BspPolicy", "SspPolicy", "NaiveWaitingPolicy"]
