"""Event objects for the simulation kernel."""

from __future__ import annotations

from typing import Callable

__all__ = ["Event", "EventCanceled"]


class EventCanceled(Exception):
    """Raised when interacting with an event that has been canceled."""


class Event:
    """One scheduled callback on the virtual timeline.

    Events order by ``(time, seq)``; ``seq`` is a monotonically increasing
    sequence number assigned by the simulator, which makes the ordering a
    total order and keeps simultaneous events in scheduling order.  Events
    can be canceled before they fire (lazy deletion: the heap entry stays,
    the simulator skips it on pop).
    """

    __slots__ = ("time", "seq", "fn", "args", "canceled", "fired", "recycle")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.canceled = False
        self.fired = False
        #: True for fire-and-forget events (``Simulator.defer``): no handle
        #: escaped to user code, so the simulator may reset and reuse this
        #: object after the callback runs.
        self.recycle = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Canceling a fired event is an error."""
        if self.fired:
            raise EventCanceled(f"cannot cancel event at t={self.time}: already fired")
        self.canceled = True

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and neither fired nor canceled."""
        return not (self.canceled or self.fired)

    def __lt__(self, other: "Event") -> bool:
        # Tuple-free compare: this runs O(log n) times per heap operation
        # on the dispatch path, and (time, seq) < (...) allocates two
        # tuples per call.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:
        state = "canceled" if self.canceled else ("fired" if self.fired else "pending")
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"Event(t={self.time:.6g}, seq={self.seq}, fn={name}, {state})"
