"""The discrete-event simulator: a virtual clock over a binary heap of events."""

from __future__ import annotations

import heapq
from typing import Callable, Optional, Tuple

from repro.events.event import Event

__all__ = ["Simulator", "SimulationError", "EventTap"]

#: Signature of an event tap: ``tap(time, seq, fn, args)`` called for every
#: event immediately before it fires.  See :meth:`Simulator.install_tap`.
EventTap = Callable[[float, int, Callable, tuple], None]


class SimulationError(Exception):
    """Raised on invalid simulator usage (negative delays, time travel)."""


def _recycled(*_args) -> None:
    """Placeholder callback on recycled Event slots, so a slot sitting in
    the free list retains neither the fired callback nor its arguments."""


class Simulator:
    """A deterministic discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, worker.start)
        sim.run(until=3600.0)

    Events scheduled for the same instant fire in scheduling order.  The
    clock only moves when an event fires; ``schedule`` with delay 0 fires the
    callback on the next ``step`` without advancing time, which is how
    instantaneous hand-offs (e.g. a worker reacting to a delivered message)
    are expressed.
    """

    #: Class-wide tap bus observing every fired event (see
    #: :meth:`install_tap`).  Class-level so instrumentation reaches
    #: simulators constructed deep inside engine code the caller never
    #: sees.  An immutable tuple: installs/removals swap the whole bus,
    #: so a tap firing mid-step never sees a half-updated list, and the
    #: empty-bus fast path is a single truthiness check.
    _taps: Tuple[EventTap, ...] = ()

    #: Upper bound on the fire-and-forget free list (see :meth:`defer`) —
    #: enough to cover in-flight message bursts without pinning memory.
    _FREE_MAX = 256

    def __init__(self, start_time: float = 0.0):
        self.now = float(start_time)
        self._heap: list[Event] = []
        self._seq = 0
        self._events_fired = 0
        self._running = False
        self._free: list[Event] = []

    # ------------------------------------------------------------------
    # Instrumentation tap
    # ------------------------------------------------------------------
    @classmethod
    def install_tap(cls, tap: EventTap) -> None:
        """Add a tap to the process-wide event tap bus.

        Each tap is called as ``tap(time, seq, fn, args)`` for every
        event, on every simulator instance, immediately *before* the
        callback runs — so a crashing callback still leaves its event on
        record.  Multiple taps may be installed (the replay-determinism
        sanitizer and the ``repro.obs`` tracer coexist this way); they
        fire in installation order, which keeps dispatch deterministic.
        Installing the same tap object twice is an error.
        """
        if tap in cls._taps:
            raise SimulationError("this event tap is already installed")
        cls._taps = cls._taps + (tap,)

    @classmethod
    def remove_tap(cls, tap: Optional[EventTap] = None) -> None:
        """Remove ``tap`` from the bus, or **all** taps when called bare.

        No-op if the tap (or any tap) is not installed.  The bare form
        is the historical single-slot API and what test harnesses use to
        guarantee a clean bus.
        """
        if tap is None:
            cls._taps = ()
        else:
            cls._taps = tuple(t for t in cls._taps if t is not tap)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable, *args) -> Event:
        """Schedule ``fn(*args)`` to fire ``delay`` virtual seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable, *args) -> Event:
        """Schedule ``fn(*args)`` at an absolute virtual time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self.now}"
            )
        event = Event(float(time), self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def defer(self, delay: float, fn: Callable, *args) -> None:
        """Fire-and-forget :meth:`schedule`: no Event handle is returned.

        Because nothing outside the simulator can hold (or cancel) the
        event, its slotted Event object is recycled through a small free
        list after it fires — the dominant schedule→fire→discard cycle of
        the dispatch loop then allocates nothing.  Use :meth:`schedule`
        whenever the caller needs the handle.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        time = self.now + delay
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.seq = self._seq
            event.fn = fn
            event.args = args
            event.canceled = False
            event.fired = False
        else:
            event = Event(time, self._seq, fn, args)
            event.recycle = True
        self._seq += 1
        heapq.heappush(self._heap, event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns False if the queue is empty."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            event = pop(heap)
            if event.canceled:
                continue
            self._fire(event)
            return True
        return False

    def _fire(self, event: Event) -> None:
        """Dispatch one popped, non-canceled event."""
        self.now = event.time
        event.fired = True
        self._events_fired += 1
        taps = Simulator._taps
        if taps:
            for tap in taps:
                tap(event.time, event.seq, event.fn, event.args)
        event.fn(*event.args)
        if event.recycle and len(self._free) < self._FREE_MAX:
            event.fn = _recycled
            event.args = ()
            self._free.append(event)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Run until the queue drains, ``until`` is reached, or a predicate holds.

        ``until`` is inclusive: events at exactly ``until`` still fire, and
        the clock is left at ``until`` if the horizon was hit (so back-to-back
        ``run`` calls resume cleanly).  ``stop_when`` is checked after every
        fired event.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        fired = 0
        # The loop pops the event it just peeked: binding the heap and
        # dispatching inline avoids the peek-then-step double scan (and
        # the per-iteration self._heap lookups) of the naive form.
        heap = self._heap
        pop = heapq.heappop
        fire = self._fire
        try:
            while heap:
                event = heap[0]
                if event.canceled:
                    pop(heap)
                    continue
                if until is not None and event.time > until:
                    self.now = max(self.now, until)
                    break
                pop(heap)
                fire(event)
                fired += 1
                if stop_when is not None and stop_when():
                    break
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False

    def _peek(self) -> Optional[Event]:
        """Return the next pending event without firing it (skips canceled)."""
        while self._heap and self._heap[0].canceled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Number of events still scheduled (excluding canceled ones)."""
        return sum(1 for e in self._heap if not e.canceled)

    @property
    def events_fired(self) -> int:
        """Total number of events fired so far."""
        return self._events_fired

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next pending event, or None if the queue is empty."""
        event = self._peek()
        return event.time if event is not None else None

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.now:.6g}, pending={self.pending_count}, "
            f"fired={self._events_fired})"
        )
