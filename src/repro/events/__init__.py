"""Discrete-event simulation kernel.

The entire cluster emulation runs on a virtual clock: every pull, push,
gradient computation, network delivery, and scheduler timer is an event on
one priority queue.  Determinism is guaranteed by (time, sequence-number)
ordering, so two runs with the same seed produce identical traces.
"""

from repro.events.event import Event, EventCanceled
from repro.events.simulator import Simulator, SimulationError

__all__ = ["Event", "EventCanceled", "Simulator", "SimulationError"]
