"""Deterministic fault/slowdown scenarios for failure-injection experiments.

The stochastic :class:`~repro.cluster.compute.StragglerModel` covers
background noise; scenarios inject *scripted* events — "node 7 runs 4×
slower between t=200s and t=500s" — which is how the heterogeneity
discussion's causes (hardware faults, software failures, noisy neighbours)
are studied reproducibly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence

import numpy as np

from repro.cluster.compute import ComputeTimeModel
from repro.cluster.spec import ClusterSpec
from repro.utils.validation import check_positive

__all__ = ["SlowdownWindow", "ScenarioComputeModel", "build_scenario_models"]


@dataclass(frozen=True)
class SlowdownWindow:
    """One scripted slowdown: iterations starting inside [start, end) are
    stretched by ``factor``."""

    start_s: float
    end_s: float
    factor: float

    def __post_init__(self):
        if self.end_s <= self.start_s:
            raise ValueError(
                f"window end {self.end_s} must be after start {self.start_s}"
            )
        check_positive("factor", self.factor)

    def active_at(self, now: float) -> bool:
        """True when ``now`` falls inside [start, end)."""
        return self.start_s <= now < self.end_s


class ScenarioComputeModel(ComputeTimeModel):
    """A compute model with scripted slowdown windows layered on a base.

    Subclasses the frozen dataclass only structurally — instances are built
    from an existing base model plus a window list.
    """

    def __init__(self, base: ComputeTimeModel, windows: Sequence[SlowdownWindow]):
        object.__setattr__(self, "mean_time_s", base.mean_time_s)
        object.__setattr__(self, "jitter_sigma", base.jitter_sigma)
        object.__setattr__(self, "straggler", base.straggler)
        object.__setattr__(self, "_base", base)
        object.__setattr__(self, "_windows", tuple(windows))

    @property
    def windows(self) -> tuple:
        return self._windows

    def sample_at(self, rng: np.random.Generator, now: float) -> float:
        time = self._base.sample(rng)
        for window in self._windows:
            if window.active_at(now):
                time *= window.factor
        return time

    def scaled(self, speed_factor: float) -> "ScenarioComputeModel":
        return ScenarioComputeModel(self._base.scaled(speed_factor), self._windows)


def build_scenario_models(
    cluster: ClusterSpec,
    base: ComputeTimeModel,
    events: Mapping[int, Sequence[SlowdownWindow]],
) -> List[ComputeTimeModel]:
    """Per-worker compute models with scripted events for some workers.

    ``events`` maps worker index → its slowdown windows; unlisted workers
    get the plain instance-scaled base model.  Pass the result as the
    engine's ``compute_models`` override.
    """
    models: List[ComputeTimeModel] = []
    for index, node in enumerate(cluster.nodes):
        scaled = base.scaled(node.speed_factor)
        windows = events.get(index)
        if windows:
            models.append(ScenarioComputeModel(scaled, windows))
        else:
            models.append(scaled)
    for index in events:
        if not 0 <= index < cluster.num_workers:
            raise ValueError(f"event for unknown worker index {index}")
    return models
