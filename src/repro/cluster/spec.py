"""Cluster specifications: which nodes make up a testbed.

The paper's testbeds (Section VI-A):

* Cluster 1 — 40 × m4.xlarge (homogeneous effectiveness evaluation).
* Cluster 2 — 10 × each of m3.xlarge, m3.2xlarge, m4.xlarge, m4.2xlarge
  (heterogeneity evaluation).
* Scalability clusters — 20 / 30 / 40 × m4.xlarge.

In MXNet each node is both a worker and a server (paper footnote 2); the
spec mirrors that co-location by default but allows dedicated servers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.cluster.instances import InstanceType, get_instance

__all__ = ["NodeSpec", "ClusterSpec"]


@dataclass(frozen=True)
class NodeSpec:
    """One machine in the cluster: a name and its instance type."""

    name: str
    instance: InstanceType

    @property
    def speed_factor(self) -> float:
        """Compute-throughput multiplier relative to m4.xlarge."""
        return self.instance.speed_factor


@dataclass(frozen=True)
class ClusterSpec:
    """A testbed: worker nodes, server count, and co-location policy."""

    nodes: tuple
    num_servers: int = 0  # 0 → one server shard per node (MXNet co-location)
    colocated: bool = True

    def __post_init__(self):
        if not self.nodes:
            raise ValueError("a cluster needs at least one node")
        if self.num_servers < 0:
            raise ValueError(f"num_servers must be >= 0, got {self.num_servers}")
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError("node names must be unique")

    # ------------------------------------------------------------------
    # Constructors for the paper's testbeds
    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(cls, num_nodes: int, instance_name: str = "m4.xlarge") -> "ClusterSpec":
        """Cluster 1 and the scalability clusters: ``num_nodes`` identical machines."""
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        instance = get_instance(instance_name)
        nodes = tuple(
            NodeSpec(name=f"node-{i}", instance=instance) for i in range(num_nodes)
        )
        return cls(nodes=nodes)

    @classmethod
    def heterogeneous(
        cls, counts: Sequence[tuple] = (("m3.xlarge", 10), ("m3.2xlarge", 10),
                                        ("m4.xlarge", 10), ("m4.2xlarge", 10))
    ) -> "ClusterSpec":
        """Cluster 2: a mixed-instance testbed (defaults to the paper's mix)."""
        nodes: List[NodeSpec] = []
        for type_name, count in counts:
            instance = get_instance(type_name)
            start = len(nodes)
            nodes.extend(
                NodeSpec(name=f"node-{start + i}", instance=instance)
                for i in range(count)
            )
        return cls(nodes=tuple(nodes))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        """Every node runs one worker."""
        return len(self.nodes)

    @property
    def server_names(self) -> List[str]:
        """Names of the server shards (co-located with nodes by default)."""
        if self.num_servers == 0 or self.colocated:
            count = self.num_servers or len(self.nodes)
            return [self.nodes[i % len(self.nodes)].name for i in range(count)]
        return [f"server-{i}" for i in range(self.num_servers)]

    @property
    def is_heterogeneous(self) -> bool:
        """True when nodes do not all share one instance type."""
        return len({n.instance.name for n in self.nodes}) > 1

    def speed_factors(self) -> List[float]:
        """Per-worker speed factors, in node order."""
        return [n.speed_factor for n in self.nodes]

    def describe(self) -> str:
        """Human-readable summary, e.g. ``40 nodes (40x m4.xlarge)``."""
        counts: dict = {}
        for node in self.nodes:
            counts[node.instance.name] = counts.get(node.instance.name, 0) + 1
        mix = ", ".join(f"{v}x {k}" for k, v in sorted(counts.items()))
        return f"{len(self.nodes)} nodes ({mix})"
