"""Cluster modeling: instance types, compute-time models, cluster specs.

Heterogeneity (paper Fig. 10) enters the system only through per-worker
iteration-time distributions; this package turns an EC2-style instance mix
into those distributions.
"""

from repro.cluster.instances import InstanceType, INSTANCE_CATALOG, get_instance
from repro.cluster.compute import ComputeTimeModel, StragglerModel
from repro.cluster.spec import ClusterSpec, NodeSpec
from repro.cluster.scenarios import (
    ScenarioComputeModel,
    SlowdownWindow,
    build_scenario_models,
)

__all__ = [
    "InstanceType",
    "INSTANCE_CATALOG",
    "get_instance",
    "ComputeTimeModel",
    "StragglerModel",
    "ClusterSpec",
    "NodeSpec",
    "ScenarioComputeModel",
    "SlowdownWindow",
    "build_scenario_models",
]
