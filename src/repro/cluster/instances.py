"""EC2-style instance catalog.

The paper's testbeds use m3.xlarge / m3.2xlarge / m4.xlarge / m4.2xlarge
(Section VI-A).  We model each type by a *speed factor* relative to
m4.xlarge (the homogeneous-cluster baseline on which Table I's iteration
times were measured) plus a network bandwidth.  Speed factors follow the
generation/size relationships of those instance families: m4 is one
generation newer than m3 (~15% faster per core for this workload class), and
the .2xlarge doubles cores which roughly halves the per-batch time for the
data-parallel compute in these workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive

__all__ = ["InstanceType", "INSTANCE_CATALOG", "get_instance"]


@dataclass(frozen=True)
class InstanceType:
    """A machine type with relative compute speed and network bandwidth.

    ``speed_factor`` multiplies compute *throughput*: iteration time on this
    instance = base_iteration_time / speed_factor.
    """

    name: str
    vcpus: int
    memory_gib: float
    speed_factor: float
    network_bytes_per_s: float

    def __post_init__(self):
        check_positive("speed_factor", self.speed_factor)
        check_positive("network_bytes_per_s", self.network_bytes_per_s)
        if self.vcpus <= 0:
            raise ValueError(f"vcpus must be positive, got {self.vcpus}")

    def iteration_time(self, base_time_s: float) -> float:
        """Mean iteration time of a workload whose m4.xlarge time is ``base_time_s``."""
        return base_time_s / self.speed_factor


INSTANCE_CATALOG: dict[str, InstanceType] = {
    "m3.xlarge": InstanceType(
        name="m3.xlarge",
        vcpus=4,
        memory_gib=15.0,
        speed_factor=0.85,
        network_bytes_per_s=500e6,
    ),
    "m3.2xlarge": InstanceType(
        name="m3.2xlarge",
        vcpus=8,
        memory_gib=30.0,
        speed_factor=1.60,
        network_bytes_per_s=500e6,
    ),
    "m4.xlarge": InstanceType(
        name="m4.xlarge",
        vcpus=4,
        memory_gib=16.0,
        speed_factor=1.0,
        network_bytes_per_s=750e6,
    ),
    "m4.2xlarge": InstanceType(
        name="m4.2xlarge",
        vcpus=8,
        memory_gib=32.0,
        speed_factor=1.90,
        network_bytes_per_s=750e6,
    ),
}


def get_instance(name: str) -> InstanceType:
    """Look up an instance type by name, with a helpful error on typos."""
    try:
        return INSTANCE_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(INSTANCE_CATALOG))
        raise KeyError(f"unknown instance type {name!r}; known types: {known}") from None
