"""Compute-time models: how long one gradient computation takes on a node.

The discrete-event simulation needs a distribution for per-iteration compute
time.  We use a lognormal jitter around the instance-adjusted mean — the
standard model for service times on shared cloud hardware — plus an optional
straggler process that slows a node down for an interval (modeling GC
pauses, noisy neighbours, and the transient slowdowns the paper's
heterogeneity discussion appeals to).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_non_negative, check_positive, check_probability

__all__ = ["ComputeTimeModel", "StragglerModel"]


@dataclass(frozen=True)
class StragglerModel:
    """Transient slowdowns: with probability ``probability`` per iteration,
    the iteration is stretched by a factor drawn uniformly from
    [1, 1 + ``max_slowdown``].

    ``probability = 0`` (default) disables straggling entirely.
    """

    probability: float = 0.0
    max_slowdown: float = 3.0

    def __post_init__(self):
        check_probability("probability", self.probability)
        check_non_negative("max_slowdown", self.max_slowdown)

    def slowdown_factor(self, rng: np.random.Generator) -> float:
        """Multiplicative stretch for one iteration (1.0 = no straggling)."""
        if self.probability == 0.0 or rng.random() >= self.probability:
            return 1.0
        return 1.0 + float(rng.random()) * self.max_slowdown


@dataclass(frozen=True)
class ComputeTimeModel:
    """Samples per-iteration compute times.

    ``mean_time_s`` is the workload's mean iteration time on the node
    (already adjusted for instance speed); ``jitter_sigma`` is the sigma of
    the lognormal multiplier.  The lognormal is normalized so its mean is
    exactly 1, keeping the configured mean honest under jitter.
    """

    mean_time_s: float
    jitter_sigma: float = 0.15
    straggler: StragglerModel = StragglerModel()

    def __post_init__(self):
        check_positive("mean_time_s", self.mean_time_s)
        check_non_negative("jitter_sigma", self.jitter_sigma)

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one iteration's compute time in virtual seconds."""
        time = self.mean_time_s
        if self.jitter_sigma > 0:
            # E[lognormal(mu, sigma)] = exp(mu + sigma^2/2); pick mu so E = 1.
            mu = -0.5 * self.jitter_sigma**2
            time *= float(rng.lognormal(mean=mu, sigma=self.jitter_sigma))
        time *= self.straggler.slowdown_factor(rng)
        return time

    def sample_at(self, rng: np.random.Generator, now: float) -> float:
        """Time-aware sampling hook.

        The base model is stationary, so this ignores ``now``; scenario
        models (:mod:`repro.cluster.scenarios`) override it to inject
        deterministic slowdown windows.
        """
        return self.sample(rng)

    def scaled(self, speed_factor: float) -> "ComputeTimeModel":
        """A copy of this model for a node ``speed_factor`` times faster."""
        check_positive("speed_factor", speed_factor)
        return ComputeTimeModel(
            mean_time_s=self.mean_time_s / speed_factor,
            jitter_sigma=self.jitter_sigma,
            straggler=self.straggler,
        )
