"""Benchmark result model and the schema-versioned ``BENCH_*.json`` format.

One :class:`BenchResult` per benchmark, each carrying named
:class:`BenchMetric` values.  Metrics are tagged with a ``kind``:

* ``"rate"`` — wall-clock-derived (iterations/sec, wall seconds): varies
  with the machine, compared with a generous tolerance;
* ``"count"`` — deterministic quantities (DES iterations, resyncs):
  compared tightly, since a drift here is a behavior change, not noise.

The file layout is intentionally small and stable::

    {
      "schema_version": 1,
      "scale": "smoke",
      "benchmarks": {
        "engine": {"metrics": {"iterations_per_s": {"value": ..., ...}}}
      }
    }

``repro bench`` writes one ``BENCH_<name>.json`` per benchmark (plus an
optional combined suite file); ``repro bench --compare`` diffs two such
files through :mod:`repro.perfbench.compare`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

from repro.utils.tables import TextTable

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchMetric",
    "BenchResult",
    "bench_payload",
    "load_bench_payload",
    "render_results",
]

#: Bumped whenever the BENCH_*.json layout changes shape.
BENCH_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BenchMetric:
    """One measured quantity of a benchmark."""

    value: float
    unit: str
    #: regression direction: True when bigger is better (throughput)
    higher_is_better: bool = True
    #: "rate" (machine-dependent wall measurements) or "count"
    #: (deterministic quantities) — selects the comparison tolerance
    kind: str = "rate"

    def __post_init__(self):
        if self.kind not in ("rate", "count"):
            raise ValueError(f"kind must be 'rate' or 'count', got {self.kind!r}")

    def to_dict(self) -> dict:
        """JSON-ready view."""
        return {
            "value": self.value,
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
            "kind": self.kind,
        }


@dataclass
class BenchResult:
    """All metrics from one benchmark run."""

    name: str
    scale: str
    metrics: Dict[str, BenchMetric] = field(default_factory=dict)

    def add(
        self,
        metric_name: str,
        value: float,
        unit: str,
        higher_is_better: bool = True,
        kind: str = "rate",
    ) -> None:
        """Record one metric."""
        self.metrics[metric_name] = BenchMetric(
            value=value, unit=unit,
            higher_is_better=higher_is_better, kind=kind,
        )

    def to_dict(self) -> dict:
        """JSON-ready view (metrics sorted by name)."""
        return {
            "metrics": {
                name: self.metrics[name].to_dict()
                for name in sorted(self.metrics)
            }
        }


def bench_payload(results: List[BenchResult], scale: str) -> dict:
    """The schema-versioned file payload for a list of results."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "scale": scale,
        "benchmarks": {
            result.name: result.to_dict()
            for result in sorted(results, key=lambda r: r.name)
        },
    }


def load_bench_payload(path: str) -> dict:
    """Read and validate a ``BENCH_*.json`` file.

    Raises ``ValueError`` on files this version cannot compare (missing
    or newer ``schema_version``, no ``benchmarks`` section).
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "benchmarks" not in payload:
        raise ValueError(f"{path}: not a bench file (missing 'benchmarks')")
    version = payload.get("schema_version")
    if not isinstance(version, int):
        raise ValueError(f"{path}: missing integer 'schema_version'")
    if version > BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version} is newer than this build's "
            f"{BENCH_SCHEMA_VERSION}"
        )
    return payload


def render_results(results: List[BenchResult]) -> str:
    """Human-readable table of all metrics across the results."""
    table = TextTable(
        ["benchmark", "metric", "value", "unit", "kind"], title="benchmarks"
    )
    for result in sorted(results, key=lambda r: r.name):
        for metric_name in sorted(result.metrics):
            metric = result.metrics[metric_name]
            table.add_row(
                [
                    result.name,
                    metric_name,
                    f"{metric.value:.6g}",
                    metric.unit,
                    metric.kind,
                ]
            )
    return table.render()
