"""The regression gate: diff two ``BENCH_*.json`` files into findings.

Comparison semantics:

* a metric that moved in its *worse* direction (per ``higher_is_better``)
  by more than the tolerance is a ``PERF-REGRESSION`` error;
* tolerances are per ``kind`` — deterministic ``count`` metrics get the
  tight ``threshold``, machine-dependent ``rate`` metrics get the
  (typically much larger) ``rate_tolerance``;
* a benchmark or metric present in the old file but missing from the new
  one is a ``PERF-MISSING`` warning, as is comparing files captured at
  different scales;
* improvements and brand-new metrics are never findings.

Findings flow through the shared :func:`repro.analysis.gate.gate_exit_code`
so ``repro bench --compare --fail-on`` behaves exactly like ``repro lint``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.findings import Finding, Severity
from repro.utils.tables import TextTable

__all__ = ["compare_benchmarks", "render_comparison"]

#: Default tolerance for deterministic ("count") metrics.
DEFAULT_THRESHOLD = 0.10

#: Default tolerance for wall-clock ("rate") metrics; generous because
#: CI machines are noisy, but still failing a ≥ 20% + threshold collapse.
DEFAULT_RATE_TOLERANCE = 0.15


def _regression_fraction(old: float, new: float, higher_is_better: bool) -> float:
    """How far ``new`` moved in the worse direction, as a fraction of old
    (0.0 when it improved or held)."""
    if old == 0:
        return 0.0
    change = (new - old) / abs(old)
    regression = -change if higher_is_better else change
    return max(regression, 0.0)


def _iter_metrics(payload: dict):
    for bench_name in sorted(payload.get("benchmarks", {})):
        bench = payload["benchmarks"][bench_name]
        for metric_name in sorted(bench.get("metrics", {})):
            yield bench_name, metric_name, bench["metrics"][metric_name]


def compare_benchmarks(
    old_payload: dict,
    new_payload: dict,
    new_path: str = "BENCH.json",
    threshold: Optional[float] = None,
    rate_tolerance: Optional[float] = None,
) -> List[Finding]:
    """Diff two bench payloads; returns gate-ready findings.

    ``None`` tolerances fall back to the module defaults.
    """
    if threshold is None:
        threshold = DEFAULT_THRESHOLD
    if rate_tolerance is None:
        rate_tolerance = DEFAULT_RATE_TOLERANCE
    findings: List[Finding] = []

    old_scale = old_payload.get("scale")
    new_scale = new_payload.get("scale")
    if old_scale != new_scale:
        findings.append(
            Finding(
                rule_id="PERF-SCALE-MISMATCH",
                severity=Severity.WARNING,
                path=new_path,
                line=1,
                message=(
                    f"comparing scale {old_scale!r} baseline against "
                    f"{new_scale!r} run; deltas are not meaningful"
                ),
            )
        )

    new_benchmarks = new_payload.get("benchmarks", {})
    benches_reported_missing = set()
    for bench_name, metric_name, old_metric in _iter_metrics(old_payload):
        new_bench = new_benchmarks.get(bench_name)
        if new_bench is None:
            if bench_name not in benches_reported_missing:
                benches_reported_missing.add(bench_name)
                findings.append(
                    Finding(
                        rule_id="PERF-MISSING",
                        severity=Severity.WARNING,
                        path=new_path,
                        line=1,
                        message=(
                            f"benchmark {bench_name!r} missing from new file"
                        ),
                    )
                )
            continue
        new_metric = new_bench.get("metrics", {}).get(metric_name)
        if new_metric is None:
            findings.append(
                Finding(
                    rule_id="PERF-MISSING",
                    severity=Severity.WARNING,
                    path=new_path,
                    line=1,
                    message=(
                        f"metric {bench_name}.{metric_name} missing from "
                        f"new file"
                    ),
                )
            )
            continue
        kind = old_metric.get("kind", "rate")
        tolerance = threshold if kind == "count" else rate_tolerance
        regression = _regression_fraction(
            float(old_metric["value"]),
            float(new_metric["value"]),
            bool(old_metric.get("higher_is_better", True)),
        )
        if regression > tolerance:
            findings.append(
                Finding(
                    rule_id="PERF-REGRESSION",
                    severity=Severity.ERROR,
                    path=new_path,
                    line=1,
                    message=(
                        f"{bench_name}.{metric_name} regressed "
                        f"{regression:.1%} (old={old_metric['value']:.6g} "
                        f"{old_metric.get('unit', '')}, "
                        f"new={new_metric['value']:.6g}; "
                        f"{kind} tolerance {tolerance:.0%})"
                    ),
                )
            )
    return findings


def render_comparison(old_payload: dict, new_payload: dict) -> str:
    """Human-readable per-metric delta table (old vs new)."""
    table = TextTable(
        ["benchmark", "metric", "old", "new", "delta", "kind"],
        title="bench comparison",
    )
    new_benchmarks = new_payload.get("benchmarks", {})
    for bench_name, metric_name, old_metric in _iter_metrics(old_payload):
        new_metric = (
            new_benchmarks.get(bench_name, {})
            .get("metrics", {})
            .get(metric_name)
        )
        old_value = float(old_metric["value"])
        if new_metric is None:
            table.add_row(
                [bench_name, metric_name, f"{old_value:.6g}", "-", "-",
                 old_metric.get("kind", "rate")]
            )
            continue
        new_value = float(new_metric["value"])
        if old_value != 0:
            delta = f"{(new_value - old_value) / abs(old_value):+.1%}"
        else:
            delta = "-"
        table.add_row(
            [
                bench_name,
                metric_name,
                f"{old_value:.6g}",
                f"{new_value:.6g}",
                delta,
                old_metric.get("kind", "rate"),
            ]
        )
    return table.render()
