"""The benchmark registry: micro/macro benches behind ``repro bench``.

Each bench is a function ``(scale: str) -> BenchResult`` covering one
layer of the system:

* ``engine`` — DES training-engine step throughput (events and
  iterations per wall second for a seeded SpecSync run);
* ``scheduler`` — SpecSync scheduler decision latency on a synthetic
  notify stream (no simulator, no network — Algorithm 2 alone);
* ``netsim`` — simulator + network message rate;
* ``runtime_threaded`` / ``runtime_multiprocess`` — end-to-end
  iterations/sec of the wall-clock backends.

This package lives *outside* the determinism lint zone on purpose: it is
the one place (besides ``repro.runtime``) allowed to read the wall clock,
because measuring wall throughput is its whole job.  Deterministic
quantities from the DES benches are tagged ``kind="count"`` so the
compare gate can hold them to a tight tolerance.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from repro.perfbench.core import BenchResult

__all__ = ["BENCHES", "SCALES", "run_benchmarks", "resolve_scale"]

#: Workload sizes per scale; smoke keeps the CI job under ~1 minute.
SCALES = ("smoke", "full")

_ENGINE_HORIZON_S = {"smoke": 60.0, "full": 240.0}
_SCHEDULER_NOTIFIES = {"smoke": 2000, "full": 20000}
_NETSIM_MESSAGES = {"smoke": 5000, "full": 50000}
_THREADED_DURATION_S = {"smoke": 0.4, "full": 1.5}
_MULTIPROCESS_DURATION_S = {"smoke": 0.6, "full": 2.0}


def resolve_scale(scale: Optional[str]) -> str:
    """Validate a scale name (default ``"full"``)."""
    resolved = scale or "full"
    if resolved not in SCALES:
        raise ValueError(f"unknown scale {resolved!r}; choose from {SCALES}")
    return resolved


def _bench_engine(scale: str) -> BenchResult:
    """DES engine step throughput on the tiny workload under SpecSync."""
    from repro.cluster.spec import ClusterSpec
    from repro.core.specsync import SpecSyncPolicy
    from repro.workloads import tiny_workload

    engine = tiny_workload().build_engine(
        ClusterSpec.homogeneous(4),
        SpecSyncPolicy.adaptive(),
        seed=3,
        horizon_s=_ENGINE_HORIZON_S[scale],
    )
    started = time.perf_counter()
    run = engine.run()
    wall = time.perf_counter() - started

    result = BenchResult(name="engine", scale=scale)
    result.add("wall_s", wall, "s", higher_is_better=False)
    result.add("events_per_s", engine.sim.events_fired / wall, "events/s")
    result.add("iterations_per_s", run.total_iterations / wall, "iter/s")
    result.add(
        "total_iterations", run.total_iterations, "iter", kind="count"
    )
    result.add(
        "events_fired", engine.sim.events_fired, "events", kind="count"
    )
    return result


def _bench_scheduler(scale: str) -> BenchResult:
    """Scheduler decision latency on a synthetic round-robin notify stream."""
    from repro.core.hyperparams import SpecSyncHyperparams
    from repro.core.scheduler import SpecSyncScheduler
    from repro.core.tuning import FixedTuner

    num_workers = 8
    notifies = _SCHEDULER_NOTIFIES[scale]
    clock = [0.0]
    pending: List[tuple] = []  # (due, fn), drained as the clock advances
    resyncs = [0]

    scheduler = SpecSyncScheduler(
        num_workers=num_workers,
        tuner=FixedTuner(
            SpecSyncHyperparams(abort_time_s=1.0, abort_rate=0.5)
        ),
        schedule_fn=lambda delay, fn: pending.append((clock[0] + delay, fn)),
        now_fn=lambda: clock[0],
        send_resync_fn=lambda worker, iteration, peer_pushes: resyncs.__setitem__(
            0, resyncs[0] + 1
        ),
    )

    started = time.perf_counter()
    for i in range(notifies):
        clock[0] = i * 0.05
        while pending and pending[0][0] <= clock[0]:
            pending.pop(0)[1]()
        scheduler.handle_notify(i % num_workers, i // num_workers)
    clock[0] += 2.0
    while pending:
        pending.pop(0)[1]()
    wall = time.perf_counter() - started

    result = BenchResult(name="scheduler", scale=scale)
    result.add("wall_s", wall, "s", higher_is_better=False)
    result.add("notifies_per_s", notifies / wall, "notify/s")
    result.add("checks_run", scheduler.checks_run, "checks", kind="count")
    result.add(
        "resyncs_sent", scheduler.resyncs_sent, "resyncs", kind="count"
    )
    return result


def _bench_netsim(scale: str) -> BenchResult:
    """Simulator + network fabric message throughput."""
    from repro.events import Simulator
    from repro.netsim.messages import Message, MessageKind
    from repro.netsim.network import LinkModel, Network

    messages = _NETSIM_MESSAGES[scale]
    sim = Simulator()
    network = Network(sim, link=LinkModel())
    delivered = [0]

    def on_delivery(_message: Message) -> None:
        delivered[0] += 1

    started = time.perf_counter()
    for i in range(messages):
        network.send(
            Message(
                kind=MessageKind.NOTIFY,
                src=f"node-{i % 8}",
                dst="servers",
                size_bytes=1e4,
            ),
            on_delivery,
        )
    sim.run()
    wall = time.perf_counter() - started

    result = BenchResult(name="netsim", scale=scale)
    result.add("wall_s", wall, "s", higher_is_better=False)
    result.add("messages_per_s", messages / wall, "msg/s")
    result.add("delivered", delivered[0], "msg", kind="count")
    result.add("events_fired", sim.events_fired, "events", kind="count")
    return result


def _small_training_setup():
    """Shared model/partitions/eval batch for the runtime benches."""
    import numpy as np

    from repro.cluster.compute import ComputeTimeModel
    from repro.ml import SoftmaxRegressionModel, SyntheticImageDataset
    from repro.ml.optim import ConstantSchedule, SgdUpdateRule

    dataset = SyntheticImageDataset(
        num_classes=3, feature_dim=8, num_samples=800,
        class_separation=3.0, warp=False, seed=0,
    )
    return {
        "model": SoftmaxRegressionModel(input_dim=8, num_classes=3),
        "partitions": dataset.partition(4, np.random.default_rng(0)),
        "eval_batch": dataset.eval_batch(),
        "update_rule": SgdUpdateRule(ConstantSchedule(0.2)),
        "compute_model": ComputeTimeModel(mean_time_s=3.0, jitter_sigma=0.1),
        "batch_size": 32,
    }


def _bench_runtime_threaded(scale: str) -> BenchResult:
    """End-to-end iterations/sec of the threaded wall-clock backend."""
    from repro.core.tuning import AdaptiveTuner
    from repro.runtime import ThreadedRun

    run = ThreadedRun(
        time_scale=0.002, tuner=AdaptiveTuner(), seed=0,
        **_small_training_setup(),
    )
    outcome = run.run(_THREADED_DURATION_S[scale])

    result = BenchResult(name="runtime_threaded", scale=scale)
    result.add("wall_s", outcome.wall_time_s, "s", higher_is_better=False)
    result.add(
        "iterations_per_s",
        outcome.total_iterations / outcome.wall_time_s,
        "iter/s",
    )
    result.add("total_iterations", outcome.total_iterations, "iter")
    return result


def _bench_runtime_multiprocess(scale: str) -> BenchResult:
    """End-to-end iterations/sec of the multi-process backend."""
    from repro.core.tuning import AdaptiveTuner
    from repro.runtime import MultiprocessRun

    run = MultiprocessRun(
        time_scale=0.004, tuner=AdaptiveTuner(), seed=0,
        **_small_training_setup(),
    )
    outcome = run.run(_MULTIPROCESS_DURATION_S[scale])

    result = BenchResult(name="runtime_multiprocess", scale=scale)
    result.add("wall_s", outcome.wall_time_s, "s", higher_is_better=False)
    result.add(
        "iterations_per_s",
        outcome.total_iterations / outcome.wall_time_s,
        "iter/s",
    )
    result.add("total_iterations", outcome.total_iterations, "iter")
    return result


#: name -> bench function; insertion order is the default run order.
BENCHES: Dict[str, Callable[[str], BenchResult]] = {
    "engine": _bench_engine,
    "scheduler": _bench_scheduler,
    "netsim": _bench_netsim,
    "runtime_threaded": _bench_runtime_threaded,
    "runtime_multiprocess": _bench_runtime_multiprocess,
}


def run_benchmarks(
    names: Optional[List[str]] = None, scale: str = "full"
) -> List[BenchResult]:
    """Run the named benchmarks (all when ``names`` is empty) at ``scale``."""
    scale = resolve_scale(scale)
    selected = names or list(BENCHES)
    unknown = [name for name in selected if name not in BENCHES]
    if unknown:
        raise ValueError(
            f"unknown benchmarks {unknown}; available: {sorted(BENCHES)}"
        )
    return [BENCHES[name](scale) for name in selected]
