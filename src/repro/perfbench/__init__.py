"""repro.perfbench — the continuous-benchmark pipeline behind ``repro bench``.

Micro/macro benchmarks for every layer (DES engine, scheduler, netsim,
wall-clock runtimes) that emit schema-versioned ``BENCH_<name>.json``
files, plus a regression gate (``repro bench --compare old.json new.json
--fail-on ...``) wired through the shared analysis gate.  See
``docs/observability.md`` ("Continuous benchmarking") for the workflow
and ``benchmarks/baselines/`` for the committed CI baseline.
"""

from repro.perfbench.benches import BENCHES, SCALES, resolve_scale, run_benchmarks
from repro.perfbench.compare import compare_benchmarks, render_comparison
from repro.perfbench.core import (
    BENCH_SCHEMA_VERSION,
    BenchMetric,
    BenchResult,
    bench_payload,
    load_bench_payload,
    render_results,
)

__all__ = [
    "BENCHES",
    "SCALES",
    "resolve_scale",
    "run_benchmarks",
    "compare_benchmarks",
    "render_comparison",
    "BENCH_SCHEMA_VERSION",
    "BenchMetric",
    "BenchResult",
    "bench_payload",
    "load_bench_payload",
    "render_results",
]
