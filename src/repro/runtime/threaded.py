"""Threaded workers + shared store + SpecSync scheduler on wall-clock time.

Concurrency structure:

* ``ThreadedParameterServer`` — the store under a lock (MXNet's per-key
  atomic apply collapses to one lock here because every update touches all
  keys).
* ``ThreadedWorker`` — one thread per worker; "computation" is an
  interruptible wait of the sampled duration (``Event.wait``), after which
  the gradient is evaluated on the pulled snapshot, exactly like the DES.
* ``SpecSyncScheduler`` from :mod:`repro.core.scheduler`, adapted with a
  lock and ``threading.Timer`` — the identical Algorithm 1/2 logic runs on
  real time.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.cluster.compute import ComputeTimeModel
from repro.core.scheduler import SpecSyncScheduler
from repro.core.tuning import HyperparamTuner
from repro.ml.datasets.base import Partition
from repro.ml.models.base import Model
from repro.ml.optim import SgdUpdateRule
from repro.ml.params import ParamSet
from repro.obs.clock import FunctionClock
from repro.obs.core import NULL_TRACER, NullTracer, Tracer
from repro.obs.core import tracer_for
from repro.obs.log import get_logger
from repro.obs.perf import NULL_PROFILER, NullProfiler, Profiler, profiler_for
from repro.obs.tracks import (
    RT_RUN_TRACK,
    RT_SCHEDULER_TRACK,
    RT_SERVER_TRACK,
    resync_flow_key,
    rt_worker_track,
)
from repro.utils.rng import RngStreams

TracerLike = Union[Tracer, NullTracer]
ProfilerLike = Union[Profiler, NullProfiler]

__all__ = [
    "ThreadedParameterServer",
    "ThreadedWorker",
    "ThreadedRun",
    "ThreadedRunResult",
    "install_threading_shim",
    "uninstall_threading_shim",
]

# ----------------------------------------------------------------------
# Dynamic-analysis patch hook
# ----------------------------------------------------------------------
_REAL_THREADING = threading


def install_threading_shim(shim) -> None:
    """Opt-in hook for :mod:`repro.analysis.dynamic`: rebind this module's
    ``threading`` to *shim*.

    The shim is a proxy for the stdlib module whose ``Lock``/``RLock``
    factories return traced wrappers, so every lock the runtime creates
    while the shim is installed records per-thread acquire/release events.
    Classes defined at import time (``ThreadedWorker``) keep their real
    ``threading.Thread`` base; only *construction* sites in this module
    are redirected.  Call :func:`uninstall_threading_shim` to restore the
    real module — instrumented runs must always pair the two.
    """
    global threading
    threading = shim


def uninstall_threading_shim() -> None:
    """Restore the real stdlib ``threading`` module binding."""
    global threading
    threading = _REAL_THREADING


class ThreadedParameterServer:
    """The global parameters behind a lock, with version stamping."""

    def __init__(
        self,
        initial_params: ParamSet,
        update_rule: SgdUpdateRule,
        tracer: Optional[TracerLike] = None,
    ):
        self._params = initial_params.copy()
        self._update_rule = update_rule
        self._lock = threading.Lock()
        self._version = 0
        self._staleness_log: List[int] = []
        self.tracer: TracerLike = tracer if tracer is not None else NULL_TRACER
        #: Payload size a pull snapshot / push gradient moves (float64).
        #: The comms instrumentation the socket backend will inherit:
        #: per-message-kind byte histograms alongside the latencies.
        self.message_bytes = initial_params.num_elements * 8

    def pull(self) -> Tuple[ParamSet, int]:
        """A consistent snapshot and its version."""
        tracer = self.tracer
        started = time.monotonic() if tracer.enabled else 0.0
        with tracer.measure(RT_SERVER_TRACK, "pull"):
            with self._lock:
                snapshot, version = self._params.copy(), self._version
        if tracer.enabled:
            tracer.observe("rt.msg.pull.latency_s", time.monotonic() - started)
            tracer.observe("rt.msg.pull.bytes", self.message_bytes)
        return snapshot, version

    def push(self, gradient: ParamSet, snapshot_version: int) -> int:
        """Apply one gradient; returns the staleness it experienced."""
        tracer = self.tracer
        started = time.monotonic() if tracer.enabled else 0.0
        with tracer.measure(RT_SERVER_TRACK, "push"):
            with self._lock:
                staleness = self._version - snapshot_version
                self._update_rule.apply(self._params, gradient)
                self._version += 1
                self._staleness_log.append(staleness)
        if tracer.enabled:
            tracer.count("rt.pushes")
            tracer.observe("rt.staleness", staleness)
            tracer.observe("rt.msg.push.latency_s", time.monotonic() - started)
            tracer.observe("rt.msg.push.bytes", self.message_bytes)
        return staleness

    @property
    def version(self) -> int:
        with self._lock:
            return self._version

    def mean_staleness(self) -> float:
        """Average staleness over all applied pushes."""
        with self._lock:
            if not self._staleness_log:
                return 0.0
            return sum(self._staleness_log) / len(self._staleness_log)


class _ThreadSafeScheduler:
    """Lock + Timer adapter putting :class:`SpecSyncScheduler` on wall time."""

    def __init__(
        self,
        num_workers: int,
        tuner: HyperparamTuner,
        send_resync,
        tracer: Optional[TracerLike] = None,
        profiler: Optional[ProfilerLike] = None,
    ):
        self._lock = threading.RLock()
        self._timers: List[threading.Timer] = []
        self._closed = False
        self._tracer: TracerLike = tracer if tracer is not None else NULL_TRACER
        self.inner = SpecSyncScheduler(
            num_workers=num_workers,
            tuner=tuner,
            schedule_fn=self._schedule,
            now_fn=time.monotonic,
            send_resync_fn=send_resync,
            # Wall-clock tracer + runtime track names: the identical
            # Algorithm 2 logic reports on the wall-time domain here.
            tracer=tracer,
            profiler=profiler,
            worker_track_fn=rt_worker_track,
            self_track=RT_SCHEDULER_TRACK,
        )

    def _schedule(self, delay: float, fn) -> None:
        with self._lock:
            if self._closed:
                return
            timer = threading.Timer(delay, self._fire, args=(fn,))
            timer.daemon = True
            self._timers.append(timer)
            timer.start()
            if self._tracer.enabled:
                self._tracer.gauge(
                    "rt.scheduler.pending_timers", len(self._timers)
                )

    def _fire(self, fn) -> None:
        # A Timer is a Thread: the timer executing this callback is the
        # current thread, so it can drop itself from the outstanding list
        # (otherwise _timers grows for the whole run).  The finally
        # guarantees the prune even when fn() raises.
        try:
            with self._lock:
                if self._closed:
                    return
                fn()
        finally:
            me = threading.current_thread()
            with self._lock:
                self._timers = [t for t in self._timers if t is not me]
                if self._tracer.enabled:
                    self._tracer.gauge(
                        "rt.scheduler.pending_timers", len(self._timers)
                    )

    def handle_notify(self, worker_id: int, iteration: int) -> None:
        with self._lock:
            if not self._closed:
                self.inner.handle_notify(worker_id, iteration)

    def close(self) -> None:
        """Mark closed and cancel every outstanding timer.

        Idempotent.  Cancellation happens outside the lock (a timer that
        already started firing blocks on the lock in :meth:`_fire`; holding
        it here would serialize against every such straggler) and pops
        timers one by one, so an exception from one ``cancel`` cannot
        strand the rest un-cancelled.
        """
        with self._lock:
            self._closed = True
            timers, self._timers = self._timers, []
        try:
            while timers:
                timers[-1].cancel()
                timers.pop()
        finally:
            if timers:
                # A cancel raised: re-stash the remainder so a retrying
                # close() still cancels them instead of leaking threads.
                with self._lock:
                    self._timers.extend(timers)


class ThreadedWorker(threading.Thread):
    """One training worker on its own thread."""

    def __init__(
        self,
        worker_id: int,
        server: ThreadedParameterServer,
        model: Model,
        partition: Partition,
        compute_model: ComputeTimeModel,
        batch_size: int,
        time_scale: float,
        batch_rng: np.random.Generator,
        compute_rng: np.random.Generator,
        stop_event: threading.Event,
        scheduler: Optional[_ThreadSafeScheduler] = None,
        max_aborts_per_iteration: int = 1,
        tracer: Optional[TracerLike] = None,
        profiler: Optional[ProfilerLike] = None,
    ):
        super().__init__(name=f"worker-{worker_id}", daemon=True)
        self.tracer: TracerLike = tracer if tracer is not None else NULL_TRACER
        self.profiler: ProfilerLike = (
            profiler if profiler is not None else NULL_PROFILER
        )
        self.track = rt_worker_track(worker_id)
        self.worker_id = worker_id
        self.server = server
        self.model = model
        self.partition = partition
        self.compute_model = compute_model
        self.batch_size = batch_size
        self.time_scale = time_scale
        self.batch_rng = batch_rng
        self.compute_rng = compute_rng
        self.stop_event = stop_event
        self.scheduler = scheduler
        self.max_aborts_per_iteration = max_aborts_per_iteration

        self.abort_event = threading.Event()
        self.iterations = 0
        self.aborts = 0
        self._last_resync_peer_pushes: Optional[int] = None

    def request_resync(self, peer_pushes: Optional[int] = None) -> None:
        """Called by the scheduler adapter: abort the in-flight computation.

        ``peer_pushes`` (the triggering count from the scheduler's
        decision) is stored so the worker-side abort instant can carry it;
        the read is racy against a concurrent abort but only decorates
        observability output, never control flow.
        """
        self._last_resync_peer_pushes = peer_pushes
        if self.tracer.enabled:
            self.tracer.instant(
                self.track, "resync_signal", cat="abort",
                args={"worker": self.worker_id, "peer_pushes": peer_pushes},
            )
        self.abort_event.set()

    def run(self) -> None:  # pragma: no cover - exercised via integration tests
        while not self.stop_event.is_set():
            self._one_iteration()

    def _one_iteration(self) -> None:
        iteration_scope = self.tracer.measure(
            self.track, "iteration", cat="iteration"
        )
        with iteration_scope, self.profiler.measure("rt.iteration"):
            batch = self.partition.sample_batch(self.batch_rng, self.batch_size)
            with self.tracer.measure(self.track, "pull"), \
                    self.profiler.measure("rt.pull"):
                snapshot, version = self.server.pull()
            aborts_left = self.max_aborts_per_iteration
            while True:
                duration = (
                    self.compute_model.sample(self.compute_rng) * self.time_scale
                )
                compute_started = time.monotonic()
                interrupted = self.abort_event.wait(timeout=duration)
                if self.stop_event.is_set():
                    return
                if interrupted and aborts_left > 0:
                    # Re-sync: discard the wait, pull fresher parameters,
                    # restart the same batch (Algorithm 2, worker lines 5-7).
                    self.abort_event.clear()
                    if self.tracer.enabled:
                        wasted = time.monotonic() - compute_started
                        self.tracer.instant(
                            self.track, "abort", cat="abort",
                            args={"worker": self.worker_id,
                                  "wasted_s": round(wasted, 9),
                                  "peer_pushes": self._last_resync_peer_pushes},
                        )
                        self.tracer.count("rt.aborts")
                    with self.tracer.measure(self.track, "pull"):
                        snapshot, version = self.server.pull()
                    self.aborts += 1
                    aborts_left -= 1
                    continue
                self.abort_event.clear()
                break
            _, gradient = self.model.loss_and_grad(snapshot, batch)
            with self.tracer.measure(self.track, "push"), \
                    self.profiler.measure("rt.push"):
                self.server.push(gradient, version)
            self.iterations += 1
            if self.scheduler is not None:
                self.scheduler.handle_notify(self.worker_id, self.iterations)


@dataclass
class ThreadedRunResult:
    """Counters from one threaded run."""

    total_iterations: int
    total_aborts: int
    mean_staleness: float
    final_loss: float
    resyncs_sent: int
    epochs_tuned: int
    wall_time_s: float


class ThreadedRun:
    """Wire up and run a threaded cluster for a wall-clock duration."""

    def __init__(
        self,
        model: Model,
        partitions: List[Partition],
        eval_batch,
        update_rule: SgdUpdateRule,
        compute_model: ComputeTimeModel,
        batch_size: int = 32,
        time_scale: float = 0.001,  # 1 virtual second -> 1 ms wall
        tuner: Optional[HyperparamTuner] = None,
        seed: int = 0,
        max_aborts_per_iteration: int = 1,
    ):
        if not partitions:
            raise ValueError("need at least one partition/worker")
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        streams = RngStreams(seed)
        self.model = model
        self.eval_batch = eval_batch
        # Wall-clock tracer: the runtime is the only layer allowed to read
        # real time, so it injects the clock into the (clock-agnostic) obs
        # layer here.  The shared no-op when observability is disabled.
        self.tracer = tracer_for(FunctionClock(time.monotonic))
        self.profiler = profiler_for(FunctionClock(time.monotonic))
        self._log = get_logger("runtime")
        self.server = ThreadedParameterServer(
            model.init_params(streams.get("init")), update_rule,
            tracer=self.tracer,
        )
        self.stop_event = threading.Event()

        self.scheduler: Optional[_ThreadSafeScheduler] = None
        if tuner is not None:
            self.scheduler = _ThreadSafeScheduler(
                num_workers=len(partitions),
                tuner=tuner,
                send_resync=self._send_resync,
                tracer=self.tracer,
                profiler=self.profiler,
            )

        self.workers = [
            ThreadedWorker(
                worker_id=i,
                server=self.server,
                model=model,
                partition=partition,
                compute_model=compute_model,
                batch_size=batch_size,
                time_scale=time_scale,
                batch_rng=streams.get("batch", i),
                compute_rng=streams.get("compute", i),
                stop_event=self.stop_event,
                scheduler=self.scheduler,
                max_aborts_per_iteration=max_aborts_per_iteration,
                tracer=self.tracer,
                profiler=self.profiler,
            )
            for i, partition in enumerate(partitions)
        ]

    def _send_resync(self, worker_id: int, iteration: int, peer_pushes: int) -> None:
        # The threaded worker guards against late re-syncs itself (the
        # abort flag is cleared at each iteration boundary), so the
        # iteration tag needs no extra check here.
        if self.tracer.enabled:
            # Close the causal flow the scheduler staged for this decision:
            # arrows land on the worker's track at the signal time.
            self.tracer.flow_end(
                resync_flow_key(worker_id, iteration), rt_worker_track(worker_id)
            )
        self.workers[worker_id].request_resync(peer_pushes)

    def run(self, duration_s: float = 0.5) -> ThreadedRunResult:
        """Run all workers for ``duration_s`` wall seconds, then stop.

        Worker joins and scheduler close happen in a ``finally`` so that a
        raising worker ``start()`` (or an interrupt during the sleep)
        cannot leak running threads or live timers past this call.
        """
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        self._log.info(
            "threaded run: %d workers for %.3gs wall",
            len(self.workers), duration_s,
        )
        started = time.monotonic()
        with self.tracer.measure(RT_RUN_TRACK, "run"), \
                self.profiler.measure("rt.run"):
            # Joining only the started workers matters: if a start() in the
            # middle of the loop raises, joining a never-started thread
            # would itself raise and mask the original error, while the
            # old is_alive() gate left a path that skipped a live join.
            started_workers: List[ThreadedWorker] = []
            try:
                for worker in self.workers:
                    worker.start()
                    started_workers.append(worker)
                time.sleep(duration_s)
            finally:
                self.stop_event.set()
                for worker in self.workers:
                    worker.abort_event.set()  # release any in-flight waits
                for worker in started_workers:
                    worker.join(timeout=5.0)
                if self.scheduler is not None:
                    self.scheduler.close()
        wall = time.monotonic() - started

        final_params, _ = self.server.pull()
        inner = self.scheduler.inner if self.scheduler is not None else None
        if self.profiler.enabled and inner is not None:
            report = inner.anomaly_report()
            if report:
                self.profiler.report("runtime.threaded", report)
        return ThreadedRunResult(
            total_iterations=sum(w.iterations for w in self.workers),
            total_aborts=sum(w.aborts for w in self.workers),
            mean_staleness=self.server.mean_staleness(),
            final_loss=self.model.loss(final_params, self.eval_batch),
            resyncs_sent=inner.resyncs_sent if inner else 0,
            epochs_tuned=inner.epochs_completed if inner else 0,
            wall_time_s=wall,
        )
