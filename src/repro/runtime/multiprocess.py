"""Multi-process backend: real OS processes, queues, and a server process.

The strongest form of protocol validation this package offers: workers are
``multiprocessing`` processes, the parameter server is its own process
owning the model, and every pull/push/notify *control* message crosses a
real OS pipe.  The SpecSync scheduler runs in the parent (exactly the
centralized architecture of paper Fig. 7) and signals aborts through
per-worker ``multiprocessing.Event`` objects — the worker's interruptible
compute wait is the abort point, as in the threaded backend.

Array payloads do not travel the queues: the backend splits control plane
from data plane.  Parameters live in a fenced shared-memory store
(:class:`repro.ps.shm.ShmParamStore`) that the server alone writes and
workers snapshot directly; each worker pushes its gradient through its own
shared-memory slot.  The queues carry only small tagged tuples, so the
server's wire-tag stream (and its replay through the protocol model) is
unchanged while the per-iteration pickle cost is gone — the zero-copy
store the ROADMAP's "make the hot paths actually fast" item called for,
certified by the ``BUF-*`` ownership lint pack.

Scaled-down timing (milliseconds per virtual second) keeps a full run under
a couple of wall seconds.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import queue as queue_module
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.compute import ComputeTimeModel
from repro.core.tuning import HyperparamTuner
from repro.ml.datasets.base import Partition
from repro.ml.models.base import Model
from repro.ml.optim import SgdUpdateRule
from repro.obs.clock import FunctionClock
from repro.obs.core import tracer_for
from repro.obs.live.ring import NULL_RING_WRITER, RingWriter
from repro.obs.live.session import (
    PARENT_SOURCE,
    SERVER_SOURCE,
    LiveTelemetrySession,
    worker_source,
)
from repro.obs.log import get_logger
from repro.obs.perf import profiler_for
from repro.obs.straggler import StragglerDetector
from repro.ps.shm import ShmParamStore
from repro.obs.tracks import (
    RT_RUN_TRACK,
    RT_SCHEDULER_TRACK,
    RT_SERVER_TRACK,
    resync_flow_key,
    rt_worker_track,
)
from repro.utils.rng import RngStreams

__all__ = [
    "MultiprocessRun",
    "MultiprocessRunResult",
    "install_mp_shim",
    "uninstall_mp_shim",
]

_POLL_S = 0.02

#: Clock announcement every live ring writer of this backend sends: fork
#: children share the parent's CLOCK_MONOTONIC, so the aggregator aligns
#: with offset 0 and only reports the observed skew/latency bound.
_LIVE_META = json.dumps({"clock": "shared", "backend": "multiprocess"})


def _queue_depth(q) -> int:
    """Best-effort ``qsize`` (-1 where the platform has no sem_getvalue)."""
    try:
        return q.qsize()
    except (NotImplementedError, OSError):  # pragma: no cover - macOS
        return -1

#: All queues in this backend are created unbounded in ``run()``, so a
#: ``put`` never blocks in practice; the explicit timeout turns the
#: impossible-but-catastrophic case (a corrupted queue feeder) into a loud
#: ``queue.Full`` instead of a silent hang.
_PUT_TIMEOUT_S = 10.0

# ----------------------------------------------------------------------
# Dynamic-analysis patch hook
# ----------------------------------------------------------------------
_REAL_MP = mp


def install_mp_shim(shim) -> None:
    """Opt-in hook for :mod:`repro.analysis.dynamic`: rebind this module's
    ``mp`` (multiprocessing) to *shim*.

    The shim proxies the real module but lets the sanitizer observe
    parent-side protocol resources — contexts, queues, events — as they
    are created.  Child processes always receive the real objects (the
    shim wraps construction, not the instances crossing ``fork``).  Pair
    with :func:`uninstall_mp_shim`.
    """
    global mp
    mp = shim


def uninstall_mp_shim() -> None:
    """Restore the real stdlib ``multiprocessing`` module binding."""
    global mp
    mp = _REAL_MP


# ----------------------------------------------------------------------
# Server process
# ----------------------------------------------------------------------
def _server_main(param_store, grad_stores, update_rule, request_queue,
                 response_queues, stats_reply_queue, server_stop,
                 wire_queue=None, live_ring=None):  # pragma: no cover - separate process
    # The server is the parameter store's single writer, so its live
    # backing view is safe to mutate under the write fence and to read
    # without one; workers only ever see fenced read() snapshots.
    params = param_store.backing()
    version = 0
    staleness_sum = 0
    staleness_count = 0
    # Live telemetry exporter: the ring was created by the parent and
    # inherited across fork; the server is its single writer.
    writer = (
        RingWriter(live_ring, SERVER_SOURCE, time.monotonic,
                   meta_json=_LIVE_META)
        if live_ring is not None else NULL_RING_WRITER
    )
    message_bytes = params.num_elements * 8
    while not server_stop.is_set():
        try:
            message = request_queue.get(timeout=_POLL_S)
        except queue_module.Empty:
            continue
        received = writer.now() if writer.enabled else 0.0
        kind = message[0]
        if kind == "pull":
            _, worker_id = message
            if wire_queue is not None:
                # Mirror the wire tag in processing order, for replay
                # through the protocol model (trace conformance).
                wire_queue.put(("pull", worker_id), timeout=_PUT_TIMEOUT_S)
            # Zero-copy pull: no reply — the worker snapshots the fenced
            # shared-memory store directly.  The pull message is control
            # plane only, kept so the server-visible wire trace (and the
            # protocol shape the model replays) stays intact.
            if writer.enabled:
                writer.sample(
                    "rt.msg.pull.latency_s", writer.now() - received
                )
                writer.sample("rt.msg.pull.bytes", message_bytes)
                depth = _queue_depth(request_queue)
                if depth >= 0:
                    writer.gauge("rt.queue.request_depth", depth)
        elif kind == "push":
            _, worker_id, snapshot_version = message
            if wire_queue is not None:
                wire_queue.put(("push", worker_id), timeout=_PUT_TIMEOUT_S)
            staleness = version - snapshot_version
            staleness_sum += staleness
            staleness_count += 1
            # The pushing worker blocks on this ack, so its gradient slot
            # is stable for the duration of the apply: the live backing
            # view (no copy, no pickle) is race-free by protocol.  The
            # fence version cross-checks that claim cheaply.
            grad_store = grad_stores[worker_id]
            if grad_store.version != snapshot_version:
                raise RuntimeError(
                    f"gradient slot of worker {worker_id} is at fence "
                    f"version {grad_store.version}, push says "
                    f"{snapshot_version}; single-writer protocol violated"
                )
            version += 1
            with param_store.write_fence(version):
                update_rule.apply(params, grad_store.backing())
            response_queues[worker_id].put(("ack", version), timeout=_PUT_TIMEOUT_S)
            if writer.enabled:
                now = writer.now()
                writer.span(RT_SERVER_TRACK, "apply", received, now)
                writer.sample("rt.msg.push.latency_s", now - received)
                writer.sample("rt.msg.push.bytes", message_bytes)
                writer.count("rt.pushes")
                writer.gauge(f"rt.staleness.w{worker_id}", staleness)
                depth = _queue_depth(request_queue)
                if depth >= 0:
                    writer.gauge("rt.queue.request_depth", depth)
        elif kind == "stats":
            mean = staleness_sum / staleness_count if staleness_count else 0.0
            # repro: allow[PERF-PICKLE-PAYLOAD] one-shot shutdown stats snapshot pickled by design — a single reply at teardown, not the per-iteration transfer the zero-copy shm store eliminated
            stats_reply_queue.put(
                ("stats", version, mean, params.copy()), timeout=_PUT_TIMEOUT_S
            )
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown server message {kind!r}")


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(worker_id, model, partition, compute_model, batch_size,
                 time_scale, seed, param_store, grad_store, request_queue,
                 response_queue, notify_queue, abort_event, stop_event,
                 stats_queue, max_aborts_per_iteration,
                 live_ring=None):  # pragma: no cover - separate process
    streams = RngStreams(seed)
    batch_rng = streams.get("batch", worker_id)
    compute_rng = streams.get("compute", worker_id)
    iterations = 0
    aborts = 0
    # Live telemetry exporter: ring created by the parent pre-fork; this
    # worker process is its single writer.
    writer = (
        RingWriter(live_ring, worker_source(worker_id), time.monotonic,
                   meta_json=_LIVE_META)
        if live_ring is not None else NULL_RING_WRITER
    )
    track = rt_worker_track(worker_id)

    def pull():
        if stop_event.is_set():
            return None, None
        started = writer.now() if writer.enabled else 0.0
        # Control plane only: the tag keeps the server's wire trace (and
        # the pull-before-push protocol shape) intact; the payload is a
        # fenced shared-memory snapshot, not a pickled queue reply.
        request_queue.put(("pull", worker_id), timeout=_PUT_TIMEOUT_S)
        result = param_store.read()
        if writer.enabled:
            writer.span(track, "pull", started)
        return result

    while not stop_event.is_set():
        iteration_started = writer.now() if writer.enabled else 0.0
        batch = partition.sample_batch(batch_rng, batch_size)
        snapshot, version = pull()
        if snapshot is None:
            break
        aborts_left = max_aborts_per_iteration
        while True:
            duration = compute_model.sample(compute_rng) * time_scale
            compute_started = writer.now() if writer.enabled else 0.0
            interrupted = abort_event.wait(timeout=duration)
            if stop_event.is_set():
                break
            if interrupted and aborts_left > 0:
                abort_event.clear()
                if writer.enabled:
                    now = writer.now()
                    # The aborted wait is still compute time spent — the
                    # abort instant carries how much of it was wasted.
                    writer.span(track, "compute", compute_started, now,
                                cat="compute")
                    writer.instant(
                        track, "abort", now, cat="abort",
                        args_json=json.dumps({
                            "worker": worker_id,
                            "wasted_s": round(now - compute_started, 9),
                        }),
                    )
                    writer.count("rt.aborts")
                snapshot, version = pull()
                if snapshot is None:
                    break
                aborts += 1
                aborts_left -= 1
                continue
            abort_event.clear()
            if writer.enabled:
                writer.span(track, "compute", compute_started, cat="compute")
            break
        if stop_event.is_set() or snapshot is None:
            break
        _, gradient = model.loss_and_grad(snapshot, batch)
        # Zero-copy push: the gradient travels through this worker's own
        # fenced shared-memory slot (stamped with the snapshot version the
        # server needs for staleness math); the queue carries only the
        # small control tuple.
        push_started = writer.now() if writer.enabled else 0.0
        grad_store.write(gradient, version)
        request_queue.put(("push", worker_id, version), timeout=_PUT_TIMEOUT_S)
        while True:
            try:
                kind, _version = response_queue.get(timeout=_POLL_S)
            except queue_module.Empty:
                if stop_event.is_set():
                    break
                continue
            assert kind == "ack"
            break
        if writer.enabled:
            writer.span(track, "push", push_started)
        iterations += 1
        notify_queue.put((worker_id, iterations), timeout=_PUT_TIMEOUT_S)
        if writer.enabled:
            writer.span(track, "iteration", iteration_started, cat="iteration")
    if writer.enabled:
        # Final fence statistics: the previously-invisible retry counts
        # of this worker's shared-memory mappings.
        for name, value in param_store.counters().items():
            writer.count(f"shm.param.{name}", value)
        for name, value in grad_store.counters().items():
            writer.count(f"shm.grad.{name}", value)
    stats_queue.put((worker_id, iterations, aborts), timeout=_PUT_TIMEOUT_S)


@dataclass
class MultiprocessRunResult:
    """Counters collected from the process fleet."""

    total_iterations: int
    total_aborts: int
    mean_staleness: float
    final_loss: float
    resyncs_sent: int
    epochs_tuned: int
    wall_time_s: float
    per_worker_iterations: Dict[int, int]
    #: The server's wire-tag stream in processing order — ``("pull", w)``
    #: / ``("push", w)`` — when the run recorded one (``record_wire_trace``);
    #: replayable through the protocol model via
    #: :func:`repro.analysis.model.replay_wire_trace`.
    wire_trace: Optional[List[Tuple[str, int]]] = None


class MultiprocessRun:
    """Wire up and run a multi-process cluster for a wall-clock duration."""

    def __init__(
        self,
        model: Model,
        partitions: List[Partition],
        eval_batch,
        update_rule: SgdUpdateRule,
        compute_model: ComputeTimeModel,
        batch_size: int = 32,
        time_scale: float = 0.005,
        tuner: Optional[HyperparamTuner] = None,
        seed: int = 0,
        max_aborts_per_iteration: int = 1,
        record_wire_trace: bool = False,
        live_session: Optional[LiveTelemetrySession] = None,
    ):
        if not partitions:
            raise ValueError("need at least one partition/worker")
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        if live_session is not None and live_session.num_workers < len(partitions):
            raise ValueError(
                f"live session has rings for {live_session.num_workers} "
                f"workers but the run needs {len(partitions)}"
            )
        self.model = model
        self.partitions = partitions
        self.eval_batch = eval_batch
        self.update_rule = update_rule
        self.compute_model = compute_model
        self.batch_size = batch_size
        self.time_scale = time_scale
        self.tuner = tuner
        self.seed = seed
        self.max_aborts_per_iteration = max_aborts_per_iteration
        self.record_wire_trace = record_wire_trace
        #: Borrowed, not owned: the caller that created the session (the
        #: CLI, a test) polls its aggregator and unlinks the rings — the
        #: run only writes into them.  SPSC discipline: this class never
        #: drains a ring itself.
        self.live_session = live_session

    def run(self, duration_s: float = 1.0) -> MultiprocessRunResult:
        """Spawn server + workers, run for ``duration_s`` wall seconds."""
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        ctx = mp.get_context("fork")
        num_workers = len(self.partitions)
        # Parent-side observability only: child processes have no access to
        # the collector (no shared memory), so the parent traces what it can
        # see — the notify stream, scheduler decisions, and abort signals.
        tracer = tracer_for(FunctionClock(time.monotonic))
        profiler = profiler_for(FunctionClock(time.monotonic))
        # The parent sees every notify, so it can run its own straggler
        # detector over the drained stream even without a scheduler.
        straggler = StragglerDetector(num_workers) if profiler.enabled else None
        log = get_logger("runtime")

        request_queue = ctx.Queue()
        response_queues = [ctx.Queue() for _ in range(num_workers)]
        notify_queue = ctx.Queue()
        stats_queue = ctx.Queue()
        stop_event = ctx.Event()
        abort_events = [ctx.Event() for _ in range(num_workers)]

        streams = RngStreams(self.seed)
        initial_params = self.model.init_params(streams.get("init"))

        # Zero-copy data plane: one fenced shared-memory store for the
        # parameters (server writes, workers read) plus a per-worker
        # gradient slot (its worker writes, the server reads).  All
        # segments are created here and inherited across fork — no child
        # ever attaches, so the parent stays the single owner that
        # unlinks at shutdown.
        param_store = ShmParamStore.create(initial_params)
        grad_template = initial_params.zeros_like()
        grad_stores = [
            ShmParamStore.create(grad_template) for _ in range(num_workers)
        ]

        stats_reply_queue = ctx.Queue()
        server_stop = ctx.Event()
        wire_queue = ctx.Queue() if self.record_wire_trace else None
        # Live telemetry rings (if the caller wired a session) are
        # inherited across fork exactly like the parameter segments; the
        # parent's own exporter writes scheduler/run-level records.
        live = self.live_session
        live_writer = (
            RingWriter(live.parent_ring, PARENT_SOURCE, time.monotonic,
                       meta_json=_LIVE_META)
            if live is not None else NULL_RING_WRITER
        )
        server = ctx.Process(
            target=_server_main,
            args=(param_store, grad_stores, self.update_rule, request_queue,
                  response_queues, stats_reply_queue, server_stop,
                  wire_queue, live.server_ring if live else None),
            daemon=True,
        )
        workers = [
            ctx.Process(
                target=_worker_main,
                args=(i, self.model, self.partitions[i], self.compute_model,
                      self.batch_size, self.time_scale, self.seed,
                      param_store, grad_stores[i], request_queue,
                      response_queues[i], notify_queue,
                      abort_events[i], stop_event, stats_queue,
                      self.max_aborts_per_iteration,
                      live.worker_ring(i) if live else None),
                daemon=True,
            )
            for i in range(num_workers)
        ]

        # The scheduler runs in the parent on wall-clock timers, exactly
        # like the threaded backend (same SpecSyncScheduler class).
        scheduler = None
        if self.tuner is not None:
            from repro.runtime.threaded import _ThreadSafeScheduler

            def send_resync(worker_id: int, iteration: int, peer_pushes: int) -> None:
                if tracer.enabled:
                    # Close the scheduler's staged causal flow at the moment
                    # the abort signal crosses into the worker process.
                    tracer.flow_end(
                        resync_flow_key(worker_id, iteration),
                        rt_worker_track(worker_id),
                    )
                    tracer.instant(
                        rt_worker_track(worker_id), "resync_signal",
                        cat="abort", args={"worker": worker_id,
                                           "peer_pushes": peer_pushes},
                    )
                abort_events[worker_id].set()

            scheduler = _ThreadSafeScheduler(
                num_workers=num_workers,
                tuner=self.tuner,
                send_resync=send_resync,
                tracer=tracer,
                profiler=profiler,
            )

        log.info(
            "multiprocess run: %d workers for %.3gs wall",
            num_workers, duration_s,
        )
        started = time.monotonic()
        with tracer.measure(RT_RUN_TRACK, "run"), profiler.measure("rt.run"):
            server.start()
            started_workers: List[mp.process.BaseProcess] = []
            try:
                for worker in workers:
                    worker.start()
                    started_workers.append(worker)

                # Drain notify messages into the scheduler until the clock
                # runs out.
                deadline = started + duration_s
                while time.monotonic() < deadline:
                    try:
                        worker_id, iteration = notify_queue.get(
                            timeout=min(
                                _POLL_S, max(deadline - time.monotonic(), 1e-4)
                            )
                        )
                    except queue_module.Empty:
                        continue
                    if tracer.enabled:
                        tracer.count("rt.notifies_drained")
                    if live_writer.enabled:
                        live_writer.count("rt.notifies_drained")
                        depth = _queue_depth(notify_queue)
                        if depth >= 0:
                            live_writer.gauge("rt.queue.notify_depth", depth)
                    if straggler is not None:
                        interval = straggler.record_push(
                            worker_id, time.monotonic()
                        )
                        if interval is not None:
                            profiler.sample(
                                f"rt.notify_interval.w{worker_id:03d}", interval
                            )
                    if scheduler is not None:
                        scheduler.handle_notify(worker_id, iteration)

                stop_event.set()
                for event in abort_events:
                    event.set()  # release in-flight waits

                per_worker: Dict[int, int] = {}
                total_aborts = 0
                with tracer.measure(RT_SCHEDULER_TRACK, "collect_stats"), \
                        profiler.measure("rt.collect_stats"):
                    for _ in range(num_workers):
                        worker_id, iterations, aborts = stats_queue.get(
                            timeout=10.0
                        )
                        per_worker[worker_id] = iterations
                        total_aborts += aborts

                    for worker in workers:
                        worker.join(timeout=10.0)

                    # Final server snapshot, then shut the server down (the
                    # server keeps serving after worker stop so late pushes
                    # and this request drain).
                    request_queue.put(("stats",))
                    _, version, mean_staleness, final_params = stats_reply_queue.get(
                        timeout=10.0
                    )
            finally:
                # Idempotent on the clean path (joining a finished process
                # is a no-op).  On an exception path — a worker dying
                # before reporting stats, a stats_queue timeout — this is
                # what keeps the child processes from being abandoned with
                # stop_event never set: before this block a stats timeout
                # leaked the server and every worker still alive.
                stop_event.set()
                for event in abort_events:
                    event.set()
                for worker in started_workers:
                    worker.join(timeout=10.0)
                server_stop.set()
                server.join(timeout=10.0)
                if scheduler is not None:
                    scheduler.close()
                # Children are joined (or timed out as daemons): the
                # parent, as single owner, unmaps and frees every
                # shared-memory segment.
                for store in (param_store, *grad_stores):
                    store.close()
                    store.unlink()
        wall = time.monotonic() - started
        if live_writer.enabled:
            # The run container span anchors the drained trace's time
            # window to the same bracket the parent's conventional
            # ``rt.run`` span covers, so post-hoc analyses of the two
            # captures agree on total wall time.
            live_writer.span(RT_RUN_TRACK, "run", started, started + wall)

        wire_trace: Optional[List[Tuple[str, int]]] = None
        if wire_queue is not None:
            wire_trace = []
            while True:
                try:
                    wire_trace.append(wire_queue.get_nowait())
                except queue_module.Empty:
                    break

        inner = scheduler.inner if scheduler is not None else None
        if straggler is not None:
            profiler.report(
                "runtime.multiprocess", {"straggler": straggler.report()}
            )
        return MultiprocessRunResult(
            total_iterations=version,
            total_aborts=total_aborts,
            mean_staleness=mean_staleness,
            final_loss=self.model.loss(final_params, self.eval_batch),
            resyncs_sent=inner.resyncs_sent if inner else 0,
            epochs_tuned=inner.epochs_completed if inner else 0,
            wall_time_s=wall,
            per_worker_iterations=per_worker,
            wire_trace=wire_trace,
        )
