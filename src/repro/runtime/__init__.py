"""Real-time threaded backend.

The discrete-event simulator is the primary substrate for experiments; this
package runs the *same protocol* — pull / compute / push workers, a shared
versioned store, and the SpecSync scheduler with notify / re-sync — on real
threads with wall-clock timers.  It exists to validate that nothing in
SpecSync depends on virtual-time conveniences: the scheduler class is
literally the one from :mod:`repro.core.scheduler`, driven by
``time.monotonic`` and ``threading.Timer`` instead of the event heap.

Iteration times are scaled down (milliseconds instead of seconds) so a
whole multi-iteration run finishes in well under a second of wall time.
"""

from repro.runtime.threaded import (
    ThreadedParameterServer,
    ThreadedRun,
    ThreadedRunResult,
    ThreadedWorker,
)
from repro.runtime.multiprocess import MultiprocessRun, MultiprocessRunResult

__all__ = [
    "ThreadedParameterServer",
    "ThreadedRun",
    "ThreadedRunResult",
    "ThreadedWorker",
    "MultiprocessRun",
    "MultiprocessRunResult",
]
