"""The lint engine: file discovery, parsing, rule dispatch, suppression.

The engine parses every target file once into a :class:`ModuleInfo`
(source, AST, dotted module name, suppression map) and hands the batch to
each registered rule.  Rules come in two flavors:

* **module rules** — ``check_module`` runs once per file (most rules);
* **project rules** — ``check_project`` sees all modules at once, for
  cross-file checks like protocol exhaustiveness and lock-order graphs.

Suppression: a ``# repro: allow[rule-id]`` comment on the offending line —
or on a comment-only line immediately above it — marks matching findings
as suppressed instead of deleting them, so reporters can still show what
was waived.  ``allow[*]`` waives every rule on that line.
"""

from __future__ import annotations

import abc
import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding, Severity

__all__ = [
    "ModuleInfo",
    "Rule",
    "LintEngine",
    "module_from_source",
    "lint_source",
    "run_lint",
]

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]+)\]")

#: emitted by the engine itself (not a registered rule) for unparseable files
PARSE_ERROR_RULE_ID = "PARSE-ERROR"


@dataclass
class ModuleInfo:
    """One parsed source file plus everything rules need to inspect it."""

    path: str
    module: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    #: line number -> rule ids waived on that line ("*" waives all)
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is waived at ``line``."""
        waived = self.suppressions.get(line, ())
        return rule_id in waived or "*" in waived


def _parse_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    suppressions: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        rule_ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        # A comment-only line waives the next line; an end-of-line comment
        # waives its own line.
        target = lineno + 1 if text.lstrip().startswith("#") else lineno
        suppressions.setdefault(target, set()).update(rule_ids)
    return suppressions


def _dotted_module_name(path: str) -> str:
    """Derive ``repro.ps.engine`` from ``.../src/repro/ps/engine.py``.

    Walks parent directories upward while they contain ``__init__.py`` —
    the first directory without one is outside the package.
    """
    abs_path = os.path.abspath(path)
    directory, filename = os.path.split(abs_path)
    parts = [os.path.splitext(filename)[0]]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        parts.append(pkg)
    parts.reverse()
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts) if parts else os.path.splitext(filename)[0]


def module_from_source(
    source: str, module: str, path: str = "<memory>"
) -> ModuleInfo:
    """Build a :class:`ModuleInfo` from an in-memory snippet.

    ``module`` is the dotted name the snippet pretends to live at — rules
    scoped to e.g. ``repro.events`` only fire when the name says so, which
    is how the fixture tests exercise them.
    """
    lines = source.splitlines()
    return ModuleInfo(
        path=path,
        module=module,
        source=source,
        tree=ast.parse(source, filename=path),
        lines=lines,
        suppressions=_parse_suppressions(lines),
    )


def load_module(path: str) -> ModuleInfo:
    """Parse one file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return module_from_source(source, _dotted_module_name(path), path=path)


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files and directories into a sorted stream of ``.py`` paths."""
    for path in paths:
        if os.path.isfile(path):
            yield path
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield os.path.join(dirpath, filename)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")


class Rule(abc.ABC):
    """Base class for lint rules.

    Subclasses set the class attributes and override one (or both) of
    :meth:`check_module` / :meth:`check_project`.  Helper
    :meth:`finding` fills in the rule id and severity.
    """

    rule_id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        """Findings for one file (default: none)."""
        return iter(())

    def check_project(
        self, modules: Sequence[ModuleInfo]
    ) -> Iterator[Finding]:
        """Findings needing the whole-project view (default: none)."""
        return iter(())

    def finding(
        self,
        module: ModuleInfo,
        line: int,
        message: str,
        flow_path: Tuple[int, ...] = (),
    ) -> Finding:
        """Build a finding for ``module`` at ``line``.

        Flow-sensitive rules pass ``flow_path`` — the line numbers along
        the offending CFG or call-graph path.
        """
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=module.path,
            line=line,
            message=message,
            flow_path=flow_path,
        )


class LintEngine:
    """Run a set of rules over a set of modules."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None):
        if rules is None:
            from repro.analysis.rules import default_rules

            rules = default_rules()
        seen: Set[str] = set()
        for rule in rules:
            if not rule.rule_id:
                raise ValueError(f"{type(rule).__name__} has no rule_id")
            if rule.rule_id in seen:
                raise ValueError(f"duplicate rule id {rule.rule_id!r}")
            seen.add(rule.rule_id)
        self.rules = list(rules)

    def lint_modules(self, modules: Sequence[ModuleInfo]) -> List[Finding]:
        """All findings over ``modules``, suppression flags applied."""
        by_path = {m.path: m for m in modules}
        findings: List[Finding] = []
        for rule in self.rules:
            for module in modules:
                findings.extend(rule.check_module(module))
            findings.extend(rule.check_project(modules))
        resolved = []
        for finding in findings:
            module = by_path.get(finding.path)
            if module is not None and module.is_suppressed(
                finding.rule_id, finding.line
            ):
                finding = finding.with_suppressed(True)
            resolved.append(finding)
        resolved.sort(key=lambda f: (f.path, f.line, f.rule_id))
        return resolved

    def lint_paths(self, paths: Iterable[str]) -> List[Finding]:
        """Discover, parse, and lint every ``.py`` file under ``paths``.

        A file that fails to parse becomes a ``PARSE-ERROR`` finding rather
        than aborting the run — a linter has to tolerate in-progress trees.
        """
        modules: List[ModuleInfo] = []
        parse_failures: List[Finding] = []
        for path in iter_python_files(paths):
            try:
                modules.append(load_module(path))
            except SyntaxError as exc:
                parse_failures.append(
                    Finding(
                        rule_id=PARSE_ERROR_RULE_ID,
                        severity=Severity.ERROR,
                        path=path,
                        line=exc.lineno or 1,
                        message=f"file does not parse: {exc.msg}",
                    )
                )
        findings = parse_failures + self.lint_modules(modules)
        findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
        return findings


def run_lint(
    paths: Iterable[str], rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """One-call entry point: lint ``paths`` with the default rule set."""
    return LintEngine(rules).lint_paths(paths)


def lint_source(
    source: str,
    module: str,
    path: str = "<memory>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one in-memory snippet (the fixture-test entry point)."""
    return LintEngine(rules).lint_modules(
        [module_from_source(source, module, path=path)]
    )
