"""Replay-determinism sanitizer: run a DES scenario twice, diff the streams.

The discrete-event simulator is the repo's determinism anchor — same
seed, same event stream, bit-for-bit.  This module checks that promise
end to end: it taps :class:`repro.events.simulator.Simulator` (every
fired event passes through the tap before its callback runs), executes a
scenario twice with identical inputs, and compares the two fingerprint
streams.  The first divergent event — extra, missing, or different —
becomes a ``DYN-REPLAY-DIVERGENCE`` finding pointing at the callback
that fired differently.

Fingerprints are canonical on purpose: callback identity comes from the
code object (file, line, qualname) and arguments are repr'd only when
scalar — object reprs often embed memory addresses, which would make
every run "diverge" for reasons that have nothing to do with
determinism.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional, Tuple

from repro.analysis.findings import Finding, Severity
from repro.events.simulator import Simulator

__all__ = [
    "EventFingerprint",
    "ReplayReport",
    "record_event_stream",
    "check_replay",
]

DYN_REPLAY_DIVERGENCE = "DYN-REPLAY-DIVERGENCE"

_SCALARS = (bool, int, float, str, bytes, type(None))


def _canonical_arg(value: Any) -> str:
    """A deterministic token for one event argument.

    Scalars keep their repr (the interesting payload); everything else
    collapses to its type name, because default object reprs embed
    ``id()`` addresses that legitimately differ between runs.
    """
    if isinstance(value, _SCALARS):
        return repr(value)
    return f"<{type(value).__module__}.{type(value).__qualname__}>"


def _callback_identity(fn: Callable) -> Tuple[str, str, int]:
    """``(qualname, path, line)`` of an event callback's code object."""
    target = getattr(fn, "__func__", fn)  # unwrap bound methods
    code = getattr(target, "__code__", None)
    qualname = getattr(target, "__qualname__", repr(target))
    if code is None:  # builtins, partials, C callables
        return qualname, "<builtin>", 1
    return qualname, code.co_filename, code.co_firstlineno


@dataclass(frozen=True)
class EventFingerprint:
    """The canonical identity of one fired simulator event."""

    time: float
    seq: int
    fn: str
    path: str
    line: int
    args: Tuple[str, ...]

    def render(self) -> str:
        """Compact one-line form used in divergence messages."""
        return f"t={self.time:.6g} seq={self.seq} {self.fn}({', '.join(self.args)})"


@contextmanager
def record_event_stream() -> Iterator[List[EventFingerprint]]:
    """Tap every simulator in the process, collecting fingerprints.

    The yielded list fills in firing order as events run inside the
    block; the tap is removed on exit even if the scenario raises.
    """
    stream: List[EventFingerprint] = []

    def tap(time: float, seq: int, fn: Callable, args: tuple) -> None:
        qualname, path, line = _callback_identity(fn)
        stream.append(
            EventFingerprint(
                time=time,
                seq=seq,
                fn=qualname,
                path=path,
                line=line,
                args=tuple(_canonical_arg(a) for a in args),
            )
        )

    Simulator.install_tap(tap)
    try:
        yield stream
    finally:
        # Remove only our own tap: other subscribers on the multi-tap
        # bus (e.g. the repro.obs tracer) must survive a replay check.
        Simulator.remove_tap(tap)


@dataclass
class ReplayReport:
    """The verdict of a two-run replay comparison."""

    run_lengths: Tuple[int, int]
    #: index of the first differing event; None when the streams match
    divergence_index: Optional[int] = None
    first: Optional[EventFingerprint] = None
    second: Optional[EventFingerprint] = None
    findings: List[Finding] = field(default_factory=list)

    @property
    def deterministic(self) -> bool:
        """Whether both runs produced identical event streams."""
        return self.divergence_index is None


def check_replay(scenario: Callable[[], Any]) -> ReplayReport:
    """Run ``scenario`` twice under the event tap and diff the streams.

    The scenario must build its *own* simulator and RNGs from fixed seeds
    each time it is called — the whole point is that two calls should be
    indistinguishable.  Returns a :class:`ReplayReport`; a divergence
    yields one ``DYN-REPLAY-DIVERGENCE`` finding anchored at the
    callback of the first event that differed.
    """
    with record_event_stream() as first_stream:
        scenario()
    first = list(first_stream)
    with record_event_stream() as second_stream:
        scenario()
    second = list(second_stream)

    report = ReplayReport(run_lengths=(len(first), len(second)))
    for index in range(max(len(first), len(second))):
        a = first[index] if index < len(first) else None
        b = second[index] if index < len(second) else None
        if a == b:
            continue
        report.divergence_index = index
        report.first = a
        report.second = b
        witness = b if b is not None else a
        assert witness is not None
        described = [
            f"run 1: {a.render() if a else '<stream ended>'}",
            f"run 2: {b.render() if b else '<stream ended>'}",
        ]
        report.findings.append(
            Finding(
                rule_id=DYN_REPLAY_DIVERGENCE,
                severity=Severity.ERROR,
                path=witness.path,
                line=witness.line,
                message=(
                    f"replay diverged at event {index} "
                    f"({'; '.join(described)}); same-seed runs must "
                    f"produce identical event streams"
                ),
            )
        )
        break
    return report
