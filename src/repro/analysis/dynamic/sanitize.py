"""The ``repro sanitize`` orchestrator: one instrumented run, one report.

Ties the dynamic sanitizers together end to end:

1. Install the tracing shims (:func:`traced_runtime_locks`), build a
   short real-time scenario (threaded by default, multiprocess on
   request), watch the guarded state the static analysis knows about,
   and run it.
2. Derive the observed lock-order graph, check it for cycles and
   locks still held at exit, and diff it against the static
   ``CONC-LOCK-ORDER`` graph.
3. Optionally replay a small DES scenario twice and compare the event
   streams (:func:`~repro.analysis.dynamic.replay.check_replay`).

Everything lands in a :class:`SanitizeReport` whose findings reuse the
static suite's :class:`~repro.analysis.findings.Finding`, so the text
and JSON reporters — and CI's exit-code gate — work unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.findings import Finding
from repro.analysis.reporters import render_text
from repro.analysis.dynamic.lockorder import (
    GraphDiff,
    cycle_findings,
    diff_graphs,
    held_at_exit_findings,
    load_static_runtime_graph,
    observed_lock_graph,
    static_gap_findings,
)
from repro.analysis.dynamic.locks import traced_runtime_locks
from repro.analysis.dynamic.lockset import LocksetMonitor, watch_from_static
from repro.analysis.dynamic.replay import ReplayReport, check_replay
from repro.analysis.dynamic.trace import LockTrace

__all__ = ["SanitizeReport", "run_sanitizers", "build_threaded_run", "des_scenario"]

#: how long to wait for straggler timer threads to drop their locks
#: before flagging DYN-LOCK-HELD-AT-EXIT
_EXIT_GRACE_S = 2.0


@dataclass
class SanitizeReport:
    """Everything one sanitizer run learned, JSON- and text-renderable."""

    backend: str
    duration_s: float
    workers: int
    seed: int
    findings: List[Finding] = field(default_factory=list)
    lock_events: int = 0
    locks_seen: List[str] = field(default_factory=list)
    resource_notes: int = 0
    fields_tracked: int = 0
    diff: GraphDiff = field(default_factory=GraphDiff)
    replay: Optional[ReplayReport] = None

    @property
    def clean(self) -> bool:
        """Whether the run produced no findings at all."""
        return not self.findings

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (findings use their own schema)."""
        replay_info: Optional[Dict[str, Any]] = None
        if self.replay is not None:
            replay_info = {
                "deterministic": self.replay.deterministic,
                "run_lengths": list(self.replay.run_lengths),
                "divergence_index": self.replay.divergence_index,
            }
        return {
            "backend": self.backend,
            "duration_s": self.duration_s,
            "workers": self.workers,
            "seed": self.seed,
            "findings": [f.to_dict() for f in self.findings],
            "lock_events": self.lock_events,
            "locks_seen": self.locks_seen,
            "resource_notes": self.resource_notes,
            "fields_tracked": self.fields_tracked,
            "graph_diff": {
                "common": [list(edge) for edge in self.diff.common],
                "observed_only": [
                    [src, dst, f"{path}:{line}"]
                    for src, dst, path, line in self.diff.observed_only
                ],
                "static_only": [list(edge) for edge in self.diff.static_only],
            },
            "replay": replay_info,
        }

    def render_text(self) -> str:
        """Human-readable report: run stats, graph diff, then findings."""
        lines = [
            f"sanitize: backend={self.backend} duration={self.duration_s}s "
            f"workers={self.workers} seed={self.seed}",
            f"  lock events: {self.lock_events} across "
            f"{len(self.locks_seen)} lock(s)",
            f"  guarded fields tracked: {self.fields_tracked}; "
            f"resource notes: {self.resource_notes}",
            f"  lock-order edges: {len(self.diff.common)} common, "
            f"{len(self.diff.observed_only)} observed-only, "
            f"{len(self.diff.static_only)} static-only (unexercised)",
        ]
        for src, dst in self.diff.static_only:
            lines.append(f"    unexercised static edge: {src} -> {dst}")
        if self.replay is not None:
            if self.replay.deterministic:
                lines.append(
                    f"  replay: deterministic "
                    f"({self.replay.run_lengths[0]} events, twice)"
                )
            else:
                lines.append(
                    f"  replay: DIVERGED at event {self.replay.divergence_index}"
                )
        lines.append(render_text(self.findings))
        return "\n".join(lines)


def build_threaded_run(workers: int = 4, seed: int = 0):
    """A short SpecSync-tuned :class:`~repro.runtime.threaded.ThreadedRun`.

    Mirrors the tier-1 integration scenario: the tiny softmax workload
    with a fixed tuner aggressive enough to exercise the scheduler's
    timers and abort path, so the instrumented run covers every lock the
    threaded backend owns.
    """
    import numpy as np

    from repro.cluster.compute import ComputeTimeModel
    from repro.core.hyperparams import SpecSyncHyperparams
    from repro.core.tuning import FixedTuner
    from repro.ml.datasets.images import SyntheticImageDataset
    from repro.ml.models.softmax import SoftmaxRegressionModel
    from repro.ml.optim import ConstantSchedule, SgdUpdateRule
    from repro.runtime.threaded import ThreadedRun

    dataset = SyntheticImageDataset(
        num_classes=3, feature_dim=8, num_samples=800,
        class_separation=3.0, warp=False, seed=0,
    )
    return ThreadedRun(
        model=SoftmaxRegressionModel(input_dim=8, num_classes=3),
        partitions=dataset.partition(workers, np.random.default_rng(seed)),
        eval_batch=dataset.eval_batch(),
        update_rule=SgdUpdateRule(ConstantSchedule(0.2)),
        compute_model=ComputeTimeModel(mean_time_s=3.0, jitter_sigma=0.1),
        batch_size=32,
        time_scale=0.002,
        tuner=FixedTuner(SpecSyncHyperparams(abort_time_s=0.003, abort_rate=0.3)),
        seed=seed,
    )


def _build_multiprocess_run(workers: int, seed: int):
    """The multiprocess twin of :func:`build_threaded_run`."""
    import numpy as np

    from repro.cluster.compute import ComputeTimeModel
    from repro.core.hyperparams import SpecSyncHyperparams
    from repro.core.tuning import FixedTuner
    from repro.ml.datasets.images import SyntheticImageDataset
    from repro.ml.models.softmax import SoftmaxRegressionModel
    from repro.ml.optim import ConstantSchedule, SgdUpdateRule
    from repro.runtime.multiprocess import MultiprocessRun

    dataset = SyntheticImageDataset(
        num_classes=3, feature_dim=8, num_samples=800,
        class_separation=3.0, warp=False, seed=0,
    )
    return MultiprocessRun(
        model=SoftmaxRegressionModel(input_dim=8, num_classes=3),
        partitions=dataset.partition(workers, np.random.default_rng(seed)),
        eval_batch=dataset.eval_batch(),
        update_rule=SgdUpdateRule(ConstantSchedule(0.2)),
        compute_model=ComputeTimeModel(mean_time_s=3.0, jitter_sigma=0.1),
        batch_size=32,
        time_scale=0.002,
        tuner=FixedTuner(SpecSyncHyperparams(abort_time_s=0.003, abort_rate=0.3)),
        seed=seed,
    )


def des_scenario(seed: int = 0, horizon_s: float = 40.0):
    """A small, fully seeded DES run for the replay-determinism check.

    Returns a zero-argument callable building everything — workload,
    cluster, scheme, simulator — from scratch on every invocation, which
    is exactly what :func:`~repro.analysis.dynamic.replay.check_replay`
    needs to compare two independent runs.
    """

    def scenario() -> None:
        from repro.cluster.spec import ClusterSpec
        from repro.experiments import scheme_catalog
        from repro.workloads import tiny_workload

        workload = tiny_workload()
        scheme = scheme_catalog(workload.name)["adaptive"].make()
        workload.run(
            ClusterSpec.homogeneous(4),
            scheme,
            seed=seed,
            horizon_s=horizon_s,
            early_stop=False,
        )

    return scenario


def _await_lock_free(trace: LockTrace, grace_s: float = _EXIT_GRACE_S) -> None:
    """Give straggler (daemon timer) threads a moment to drop their locks."""
    deadline = time.monotonic() + grace_s
    while trace.held_by_thread() and time.monotonic() < deadline:
        time.sleep(0.01)


def run_sanitizers(
    backend: str = "threaded",
    duration_s: float = 0.3,
    workers: int = 4,
    seed: int = 0,
    replay: bool = True,
) -> SanitizeReport:
    """Run the full dynamic-sanitizer suite once and report.

    ``backend`` picks the instrumented real-time scenario (``threaded``
    or ``multiprocess``); the replay check is backend-independent (it
    exercises the DES) and can be skipped with ``replay=False``.
    """
    if backend not in ("threaded", "multiprocess"):
        raise ValueError(f"unknown backend {backend!r}")

    report = SanitizeReport(
        backend=backend, duration_s=duration_s, workers=workers, seed=seed
    )

    with traced_runtime_locks() as trace:
        monitor = LocksetMonitor(trace)
        if backend == "threaded":
            run = build_threaded_run(workers=workers, seed=seed)
            watch_from_static(run.server, monitor)
            if run.scheduler is not None:
                watch_from_static(run.scheduler, monitor)
            run.run(duration_s)
        else:
            # The multiprocess scheduler is built inside run() and its
            # guarded state lives behind the threaded scheduler lock the
            # shim already traces; lockset watching needs a pre-built
            # object, so only the threaded backend gets it.
            _build_multiprocess_run(workers=workers, seed=seed).run(duration_s)
        _await_lock_free(trace)

    observed = observed_lock_graph(trace)
    report.lock_events = len(trace)
    report.locks_seen = trace.lock_names()
    report.resource_notes = len(trace.notes())
    report.fields_tracked = monitor.fields_tracked()
    report.diff = diff_graphs(observed, load_static_runtime_graph())

    report.findings.extend(cycle_findings(observed))
    report.findings.extend(held_at_exit_findings(trace))
    report.findings.extend(monitor.findings())
    report.findings.extend(static_gap_findings(report.diff))

    if replay:
        report.replay = check_replay(des_scenario(seed=seed))
        report.findings.extend(report.replay.findings)

    return report
