"""Runtime sanitizers cross-checked against the static rule packs.

Where :mod:`repro.analysis` reads the source, this package watches the
program *run*:

* :mod:`~repro.analysis.dynamic.trace` / :mod:`~repro.analysis.dynamic.locks`
  — traced lock wrappers and the shims that install them into the
  runtime backends, recording every acquire/release per thread.
* :mod:`~repro.analysis.dynamic.lockorder` — the observed
  lock-acquisition-order graph, cycle detection, and the diff against
  the static ``CONC-LOCK-ORDER`` graph.
* :mod:`~repro.analysis.dynamic.lockset` — an Eraser-style lockset race
  detector over exactly the fields the static ``CONC-UNLOCKED-STATE``
  rule considers guarded.
* :mod:`~repro.analysis.dynamic.replay` — the replay-determinism
  sanitizer: same-seed DES runs must produce identical event streams.
* :mod:`~repro.analysis.dynamic.sanitize` — the orchestrator behind the
  ``repro sanitize`` CLI command.

Findings reuse the static suite's
:class:`~repro.analysis.findings.Finding`, under dynamic rule ids
(``DYN-LOCK-CYCLE``, ``DYN-LOCK-HELD-AT-EXIT``, ``DYN-STATIC-LOCK-GAP``,
``DYN-LOCKSET-RACE``, ``DYN-REPLAY-DIVERGENCE``), so the existing
reporters and CI gates apply unchanged.
"""

from repro.analysis.dynamic.lockorder import (
    GraphDiff,
    ObservedLockGraph,
    cycle_findings,
    diff_graphs,
    held_at_exit_findings,
    load_static_runtime_graph,
    observed_lock_graph,
    static_gap_findings,
)
from repro.analysis.dynamic.locks import (
    TracedLock,
    TracedRLock,
    TracingMpShim,
    TracingThreadingShim,
    infer_lock_name,
    traced_runtime_locks,
)
from repro.analysis.dynamic.lockset import (
    LocksetMonitor,
    unwatch,
    watch_from_static,
    watch_guarded_state,
)
from repro.analysis.dynamic.replay import (
    EventFingerprint,
    ReplayReport,
    check_replay,
    record_event_stream,
)
from repro.analysis.dynamic.sanitize import (
    SanitizeReport,
    build_threaded_run,
    des_scenario,
    run_sanitizers,
)
from repro.analysis.dynamic.trace import LockEvent, LockTrace, ResourceNote, call_site

__all__ = [
    "LockEvent",
    "LockTrace",
    "ResourceNote",
    "call_site",
    "TracedLock",
    "TracedRLock",
    "TracingThreadingShim",
    "TracingMpShim",
    "infer_lock_name",
    "traced_runtime_locks",
    "ObservedLockGraph",
    "GraphDiff",
    "observed_lock_graph",
    "cycle_findings",
    "held_at_exit_findings",
    "load_static_runtime_graph",
    "diff_graphs",
    "static_gap_findings",
    "LocksetMonitor",
    "watch_guarded_state",
    "watch_from_static",
    "unwatch",
    "EventFingerprint",
    "ReplayReport",
    "record_event_stream",
    "check_replay",
    "SanitizeReport",
    "run_sanitizers",
    "build_threaded_run",
    "des_scenario",
]
