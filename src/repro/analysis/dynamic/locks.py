"""Traced lock wrappers and the runtime patch shims.

:class:`TracedLock`/:class:`TracedRLock` are drop-in replacements for
``threading.Lock``/``threading.RLock`` that record every acquire/release
into a :class:`~repro.analysis.dynamic.trace.LockTrace`.  The shims plug
into the opt-in hooks the runtime backends expose
(:func:`repro.runtime.threaded.install_threading_shim`,
:func:`repro.runtime.multiprocess.install_mp_shim`) so an instrumented
run traces every lock the runtime creates without a single source change
in the runtime itself.

Lock naming matters: the static ``CONC-LOCK-ORDER`` pass names locks
``module.Class.attr`` / ``module.var``, and the observed graph is diffed
against the static one, so :func:`infer_lock_name` reconstructs the same
qualified name from the construction site (caller module, enclosing
``self``, and the assignment target parsed off the source line).
"""

from __future__ import annotations

import linecache
import re
import sys
import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.analysis.dynamic.trace import LockTrace, call_site

__all__ = [
    "TracedLock",
    "TracedRLock",
    "TracingThreadingShim",
    "TracingMpShim",
    "infer_lock_name",
    "traced_runtime_locks",
]

_ASSIGN_RE = re.compile(r"(?:self\.)?(\w+)\s*=[^=]")


def infer_lock_name(frame) -> str:
    """The qualified name of a lock constructed at ``frame``'s current line.

    Combines the caller's module name, the class of a local ``self`` (when
    construction happens inside a method), and the assignment target read
    from the source line — so ``self._lock = threading.Lock()`` inside
    ``ThreadedParameterServer.__init__`` yields
    ``repro.runtime.threaded.ThreadedParameterServer._lock``, exactly the
    name the static lock-order graph uses.  Falls back to a
    ``<lock@line>`` placeholder when the line cannot be parsed.
    """
    module = frame.f_globals.get("__name__", "<unknown>")
    line_text = linecache.getline(frame.f_code.co_filename, frame.f_lineno).strip()
    match = _ASSIGN_RE.match(line_text)
    attr = match.group(1) if match else f"<lock@{frame.f_lineno}>"
    owner = frame.f_locals.get("self")
    if owner is not None and line_text.startswith("self."):
        return f"{module}.{type(owner).__name__}.{attr}"
    return f"{module}.{attr}"


class TracedLock:
    """A ``threading.Lock`` drop-in recording into a :class:`LockTrace`."""

    #: mirrored by the static pack's ``_LOCK_CONSTRUCTORS`` table
    reentrant = False

    def __init__(self, name: str, trace: LockTrace, inner=None):
        self.name = name
        self._trace = trace
        self._inner = inner if inner is not None else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire the wrapped lock; record the event if it succeeded."""
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            path, line = call_site()
            self._trace.record_acquire(self.name, path, line)
        return ok

    def release(self) -> None:
        """Record the release, then release the wrapped lock.

        Recording first keeps the trace's held-set bookkeeping consistent:
        a competing thread cannot observe the lock as free before this
        thread's release event exists.
        """
        path, line = call_site()
        self._trace.record_release(self.name, path, line)
        self._inner.release()

    def locked(self) -> bool:
        """Whether the wrapped lock is currently held (plain locks only)."""
        return self._inner.locked()

    def __enter__(self) -> "TracedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False

    def __repr__(self) -> str:
        kind = "TracedRLock" if self.reentrant else "TracedLock"
        return f"{kind}({self.name!r})"


class TracedRLock(TracedLock):
    """A ``threading.RLock`` drop-in recording into a :class:`LockTrace`."""

    reentrant = True

    def __init__(self, name: str, trace: LockTrace):
        super().__init__(name, trace, inner=threading.RLock())


class TracingThreadingShim:
    """A ``threading``-module proxy whose locks come out traced.

    Installed into :mod:`repro.runtime.threaded` via
    ``install_threading_shim``: ``Lock()``/``RLock()`` return traced
    wrappers named after their construction site; everything else
    (``Thread``, ``Timer``, ``Event``, ...) passes straight through to
    the real module.
    """

    def __init__(self, trace: LockTrace):
        self._trace = trace

    def Lock(self) -> TracedLock:
        """A :class:`TracedLock` named after the calling construction site."""
        return TracedLock(infer_lock_name(sys._getframe(1)), self._trace)

    def RLock(self) -> TracedRLock:
        """A :class:`TracedRLock` named after the calling construction site."""
        return TracedRLock(infer_lock_name(sys._getframe(1)), self._trace)

    def __getattr__(self, name: str):
        return getattr(threading, name)


class _TracingMpContext:
    """A multiprocessing-context proxy noting parent-side resource creation."""

    def __init__(self, ctx, trace: LockTrace):
        self._ctx = ctx
        self._trace = trace

    def Queue(self, *args, **kwargs):
        """A real context queue, noted in the trace."""
        path, line = call_site()
        self._trace.note_resource("mp.Queue", path, line)
        return self._ctx.Queue(*args, **kwargs)

    def Event(self, *args, **kwargs):
        """A real context event, noted in the trace."""
        path, line = call_site()
        self._trace.note_resource("mp.Event", path, line)
        return self._ctx.Event(*args, **kwargs)

    def Process(self, *args, **kwargs):
        """A real context process, noted in the trace."""
        path, line = call_site()
        self._trace.note_resource("mp.Process", path, line)
        return self._ctx.Process(*args, **kwargs)

    def __getattr__(self, name: str):
        return getattr(self._ctx, name)


class TracingMpShim:
    """A ``multiprocessing``-module proxy for the multiprocess backend.

    Installed via ``install_mp_shim``: ``get_context()`` returns a proxy
    context that notes every parent-side queue/event/process creation in
    the trace (children always receive the real objects — construction is
    wrapped, not the instances crossing ``fork``).  The scheduler locks
    the multiprocess backend borrows from :mod:`repro.runtime.threaded`
    are traced by the threading shim, not here.
    """

    def __init__(self, trace: LockTrace):
        self._trace = trace

    def get_context(self, method: Optional[str] = None) -> _TracingMpContext:
        """The real context wrapped to note resource creation."""
        import multiprocessing

        return _TracingMpContext(multiprocessing.get_context(method), self._trace)

    def __getattr__(self, name: str):
        import multiprocessing

        return getattr(multiprocessing, name)


@contextmanager
def traced_runtime_locks(trace: Optional[LockTrace] = None) -> Iterator[LockTrace]:
    """Instrument both runtime backends for the duration of the block.

    Installs the tracing shims through the backends' opt-in hooks and
    guarantees their removal, so a raising scenario cannot leave the
    runtime permanently instrumented::

        with traced_runtime_locks() as trace:
            ThreadedRun(...).run(0.25)
        graph = observed_lock_graph(trace)
    """
    from repro.runtime import multiprocess, threaded

    own = trace if trace is not None else LockTrace()
    threaded.install_threading_shim(TracingThreadingShim(own))
    multiprocess.install_mp_shim(TracingMpShim(own))
    try:
        yield own
    finally:
        threaded.uninstall_threading_shim()
        multiprocess.uninstall_mp_shim()
