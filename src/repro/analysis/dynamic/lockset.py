"""Eraser-style lockset race detection on statically-known guarded fields.

The static ``CONC-UNLOCKED-STATE`` rule declares which fields are guarded
(every underscore attribute a lock-owning class assigns in ``__init__``).
This module watches exactly those fields at runtime: each watched
instance's class is swapped for a generated subclass whose
``__getattribute__``/``__setattr__`` report every guarded-field access to
a :class:`LocksetMonitor`, which runs the classic Eraser lockset
algorithm — the candidate lockset ``C(v)`` starts as the universe, is
intersected with the accessing thread's held locks once the field is
shared between threads, and an empty ``C(v)`` means no lock consistently
protects the field: a data race.

Construction-time writes are exempt (instances are watched *after*
``__init__``), and the first accessing thread gets an exclusive grace
phase, both mirroring Eraser's initialization handling — so the detector
stays quiet on the correct runtime and loud on a genuinely unlocked
shared write.
"""

from __future__ import annotations

import inspect
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple, Type

from repro.analysis.engine import load_module
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules.concurrency import GuardedClass, guarded_class_state
from repro.analysis.dynamic.trace import LockTrace, call_site

__all__ = [
    "LocksetMonitor",
    "watch_guarded_state",
    "watch_from_static",
    "unwatch",
]

DYN_LOCKSET_RACE = "DYN-LOCKSET-RACE"

#: instance slot holding the monitor (plain string key: no name mangling)
_MONITOR_FIELD = "__repro_lockset_monitor__"
_BASE_FIELD = "__repro_watched_base__"


@dataclass
class _FieldState:
    """Per-field Eraser state: ownership phase and candidate lockset."""

    first_thread: int
    label: str
    shared: bool = False
    #: None = still the universe (not yet intersected)
    lockset: Optional[FrozenSet[str]] = None
    reported: bool = False


class LocksetMonitor:
    """Collects guarded-field accesses and runs the lockset algorithm.

    Thread-safe: watched objects are, by definition, touched from several
    threads at once.  Held-lock sets come from the same
    :class:`~repro.analysis.dynamic.trace.LockTrace` the traced locks
    record into, so "held" here means held *through a traced lock* — the
    monitor must be paired with
    :func:`~repro.analysis.dynamic.locks.traced_runtime_locks`.
    """

    def __init__(self, trace: LockTrace):
        self._trace = trace
        self._mutex = threading.Lock()
        self._fields: Dict[Tuple[int, str], _FieldState] = {}
        self._findings: List[Finding] = []
        # OS thread idents are recycled as soon as a thread dies, so a new
        # thread could impersonate the field's exclusive owner; hand out
        # our own never-reused token per thread via thread-local storage.
        self._local = threading.local()
        self._next_token = 0

    def _thread_token(self) -> int:
        token = getattr(self._local, "token", None)
        if token is None:
            with self._mutex:
                self._next_token += 1
                token = self._next_token
            self._local.token = token
        return token

    def record_access(
        self, instance_id: int, label: str, attr: str, write: bool
    ) -> None:
        """One guarded-field access by the current thread.

        Applies the Eraser transition for field ``(instance_id, attr)``
        and emits a ``DYN-LOCKSET-RACE`` finding (once per field) the
        moment the candidate lockset goes empty.
        """
        token = self._thread_token()
        held = frozenset(self._trace.held(threading.get_ident()))
        with self._mutex:
            key = (instance_id, attr)
            state = self._fields.get(key)
            if state is None:
                self._fields[key] = _FieldState(first_thread=token, label=label)
                return
            if not state.shared and token == state.first_thread:
                return  # exclusive phase: single-owner access needs no lock
            state.shared = True
            state.lockset = held if state.lockset is None else state.lockset & held
            if state.lockset or state.reported:
                return
            state.reported = True
            path, line = call_site()
            kind = "write to" if write else "read of"
            self._findings.append(
                Finding(
                    rule_id=DYN_LOCKSET_RACE,
                    severity=Severity.ERROR,
                    path=path,
                    line=line,
                    message=(
                        f"unlocked {kind} guarded field {label}.{attr}: "
                        f"candidate lockset is empty — no single lock "
                        f"protects every access to this shared field"
                    ),
                )
            )

    def findings(self) -> List[Finding]:
        """A snapshot of the races detected so far."""
        with self._mutex:
            return list(self._findings)

    def fields_tracked(self) -> int:
        """Number of distinct ``(instance, attr)`` fields seen."""
        with self._mutex:
            return len(self._fields)


_subclass_cache: Dict[Tuple[Type[Any], FrozenSet[str]], Type[Any]] = {}


def _watched_subclass(cls: Type[Any], attrs: FrozenSet[str]) -> Type[Any]:
    """A ``cls`` subclass reporting accesses to ``attrs`` to the monitor."""
    key = (cls, attrs)
    cached = _subclass_cache.get(key)
    if cached is not None:
        return cached
    label = f"{cls.__module__}.{cls.__qualname__}"

    def __getattribute__(self: Any, name: str) -> Any:
        if name in attrs:
            monitor = object.__getattribute__(self, _MONITOR_FIELD)
            monitor.record_access(id(self), label, name, write=False)
        return object.__getattribute__(self, name)

    def __setattr__(self: Any, name: str, value: Any) -> None:
        if name in attrs:
            monitor = object.__getattribute__(self, _MONITOR_FIELD)
            monitor.record_access(id(self), label, name, write=True)
        object.__setattr__(self, name, value)

    sub = type(
        f"Watched{cls.__name__}",
        (cls,),
        {
            "__getattribute__": __getattribute__,
            "__setattr__": __setattr__,
            _BASE_FIELD: cls,
        },
    )
    _subclass_cache[key] = sub
    return sub


def watch_guarded_state(
    obj: Any, attrs: Iterable[str], monitor: LocksetMonitor
) -> Any:
    """Start reporting ``obj``'s accesses to ``attrs`` to ``monitor``.

    Swaps the instance's class for a generated subclass — only this
    instance is affected, and :func:`unwatch` restores the original.
    Call *after* construction so ``__init__`` writes stay exempt, exactly
    like the static rule's treatment of ``__init__``.
    """
    cls = type(obj)
    object.__setattr__(obj, _MONITOR_FIELD, monitor)
    object.__setattr__(obj, "__class__", _watched_subclass(cls, frozenset(attrs)))
    return obj


def watch_from_static(obj: Any, monitor: LocksetMonitor) -> GuardedClass:
    """Watch ``obj`` using the static rule's own guarded-field table.

    Parses the source file defining ``type(obj)`` and looks its class up
    in :func:`~repro.analysis.rules.concurrency.guarded_class_state` — so
    the runtime detector instruments *precisely* the fields the static
    ``CONC-UNLOCKED-STATE`` rule considers guarded, never a hand-kept
    copy.  Raises ``ValueError`` if the class owns no lock / guarded state
    according to the static analysis.
    """
    cls = type(obj)
    try:
        source_path = inspect.getfile(cls)
    except (TypeError, OSError) as exc:  # builtins, REPL-defined classes
        raise ValueError(
            f"{cls.__module__}.{cls.__name__} has no retrievable source; "
            f"use watch_guarded_state with an explicit attribute set"
        ) from exc
    module_info = load_module(source_path)
    guarded = guarded_class_state(module_info).get(cls.__name__)
    if guarded is None:
        raise ValueError(
            f"{cls.__module__}.{cls.__name__} has no statically-known "
            f"guarded state (not a lock-owning class)"
        )
    watch_guarded_state(obj, guarded.guarded, monitor)
    return guarded


def unwatch(obj: Any) -> Any:
    """Restore a watched instance's original class (no-op if unwatched)."""
    base = getattr(type(obj), _BASE_FIELD, None)
    if base is not None:
        object.__setattr__(obj, "__class__", base)
    return obj
