"""The runtime trace: thread-safe record of lock and resource events.

Everything the dynamic sanitizers observe funnels into one
:class:`LockTrace`: traced locks record acquire/release events (with the
acquiring thread's held-set captured atomically), and the backend shims
note protocol resources (queues, events, contexts) as they are created.
The trace doubles as the live answer to "what does this thread hold right
now?", which is what the Eraser-style lockset detector needs at every
guarded-field access.
"""

from __future__ import annotations

import os
import sys
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["LockEvent", "ResourceNote", "LockTrace", "call_site"]

ACQUIRE = "acquire"
RELEASE = "release"

_PACKAGE_DIR = os.path.dirname(os.path.abspath(__file__))


def call_site() -> Tuple[str, int]:
    """``(path, line)`` of the nearest caller outside this package.

    Walks the stack past every frame that lives in
    ``repro/analysis/dynamic`` so findings point at the *instrumented*
    code (``threaded.py:57``), never at the instrumentation itself.
    """
    frame = sys._getframe(1)
    while frame is not None:
        path = frame.f_code.co_filename
        if os.path.dirname(os.path.abspath(path)) != _PACKAGE_DIR:
            return path, frame.f_lineno
        frame = frame.f_back
    return "<unknown>", 1  # pragma: no cover - the stack always has a root


@dataclass(frozen=True)
class LockEvent:
    """One lock acquire or release observed at runtime."""

    seq: int
    action: str  # ACQUIRE or RELEASE
    lock: str  # qualified name, e.g. repro.runtime.threaded.ThreadedParameterServer._lock
    thread: str
    path: str
    line: int
    #: locks this thread already held when acquiring (ACQUIRE events only)
    held_before: Tuple[str, ...] = ()


@dataclass(frozen=True)
class ResourceNote:
    """One protocol resource (queue, event, process, context) creation."""

    kind: str
    path: str
    line: int


class LockTrace:
    """Thread-safe recorder of per-thread lock events.

    ``record_acquire``/``record_release`` maintain each thread's held-lock
    stack under an internal mutex, so the held-set snapshot stored on an
    acquire event is exact — not reconstructed after the fact — and
    :meth:`held` answers the lockset detector's query in O(held locks).
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._events: List[LockEvent] = []
        self._notes: List[ResourceNote] = []
        #: thread ident -> stack of lock names currently held
        self._held: Dict[int, List[str]] = {}
        self._seq = 0

    def record_acquire(self, lock: str, path: str, line: int) -> None:
        """Record that the current thread acquired ``lock`` at ``path:line``."""
        ident = threading.get_ident()
        name = threading.current_thread().name
        with self._mutex:
            stack = self._held.setdefault(ident, [])
            event = LockEvent(
                seq=self._seq,
                action=ACQUIRE,
                lock=lock,
                thread=name,
                path=path,
                line=line,
                held_before=tuple(stack),
            )
            self._seq += 1
            self._events.append(event)
            stack.append(lock)

    def record_release(self, lock: str, path: str, line: int) -> None:
        """Record that the current thread released ``lock`` at ``path:line``."""
        ident = threading.get_ident()
        name = threading.current_thread().name
        with self._mutex:
            stack = self._held.get(ident, [])
            # Remove the innermost matching hold (LIFO discipline; an RLock
            # released out of order still resolves to *a* matching entry).
            for index in range(len(stack) - 1, -1, -1):
                if stack[index] == lock:
                    del stack[index]
                    break
            event = LockEvent(
                seq=self._seq,
                action=RELEASE,
                lock=lock,
                thread=name,
                path=path,
                line=line,
            )
            self._seq += 1
            self._events.append(event)

    def note_resource(self, kind: str, path: str, line: int) -> None:
        """Record a protocol-resource creation (queue/event/process/context)."""
        with self._mutex:
            self._notes.append(ResourceNote(kind=kind, path=path, line=line))

    def held(self, ident: Optional[int] = None) -> Tuple[str, ...]:
        """Locks currently held by ``ident`` (default: the calling thread)."""
        if ident is None:
            ident = threading.get_ident()
        with self._mutex:
            return tuple(self._held.get(ident, ()))

    def events(self) -> List[LockEvent]:
        """A snapshot of all recorded lock events, in global order."""
        with self._mutex:
            return list(self._events)

    def notes(self) -> List[ResourceNote]:
        """A snapshot of all recorded resource notes."""
        with self._mutex:
            return list(self._notes)

    def held_by_thread(self) -> Dict[str, Tuple[str, ...]]:
        """Threads that currently hold locks: ``{thread name: held locks}``.

        Idents with an empty stack are omitted; names are resolved against
        the live thread registry (dead threads keep a placeholder name).
        """
        with self._mutex:
            result: Dict[str, Tuple[str, ...]] = {}
            for ident, stack in self._held.items():
                if not stack:
                    continue
                result[self._thread_name(ident)] = tuple(stack)
            return result

    @staticmethod
    def _thread_name(ident: int) -> str:
        for thread in threading.enumerate():
            if thread.ident == ident:
                return thread.name
        return f"<dead thread {ident}>"

    def lock_names(self) -> List[str]:
        """Sorted names of every lock that appears in the trace."""
        with self._mutex:
            return sorted({event.lock for event in self._events})

    def __len__(self) -> int:
        with self._mutex:
            return len(self._events)
