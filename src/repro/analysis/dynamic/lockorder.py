"""The runtime lock-order oracle: observed graph, cycles, static diff.

Builds the lock-acquisition-order graph actually *observed* during an
instrumented run (edge ``A -> B`` whenever a thread acquired B while
holding A), finds cycles in it, and diffs it against the static
``CONC-LOCK-ORDER`` graph built by
:func:`repro.analysis.rules.concurrency.build_lock_order_graph`.

Diff semantics:

* **observed-only** edges (the runtime took an ordering the static pass
  never derived) become ``DYN-STATIC-LOCK-GAP`` warnings — the static
  rule has a blind spot worth closing.
* **static-only** edges (derived but never exercised) are *reported*, not
  findings: the static pass deliberately over-approximates (it follows
  calls one level deep whether or not they happen), so unexercised edges
  are expected on any finite run and must not fail a clean sanitize.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.engine import load_module
from repro.analysis.findings import Finding, Severity
from repro.analysis.graphs import find_cycles
from repro.analysis.rules.concurrency import StaticLockGraph, build_lock_order_graph
from repro.analysis.dynamic.trace import ACQUIRE, LockTrace

__all__ = [
    "ObservedLockGraph",
    "GraphDiff",
    "observed_lock_graph",
    "cycle_findings",
    "held_at_exit_findings",
    "load_static_runtime_graph",
    "diff_graphs",
    "static_gap_findings",
]

DYN_LOCK_CYCLE = "DYN-LOCK-CYCLE"
DYN_LOCK_HELD_AT_EXIT = "DYN-LOCK-HELD-AT-EXIT"
DYN_STATIC_LOCK_GAP = "DYN-STATIC-LOCK-GAP"


@dataclass
class ObservedLockGraph:
    """Lock-order edges actually taken at runtime.

    ``edges[src][dst]`` keeps the first witness ``(path, line)`` where a
    thread acquired ``dst`` while holding ``src`` — the same shape as the
    static graph so both feed :func:`repro.analysis.graphs.find_cycles`
    and diff cleanly.
    """

    edges: Dict[str, Dict[str, Tuple[str, int]]] = field(default_factory=dict)

    def edge_pairs(self) -> Set[Tuple[str, str]]:
        """The ``(src, dst)`` pairs, without witnesses."""
        return {(src, dst) for src, dsts in self.edges.items() for dst in dsts}


def observed_lock_graph(trace: LockTrace) -> ObservedLockGraph:
    """Derive the observed acquisition-order graph from a trace.

    Each acquire event carries the acquiring thread's held-set, captured
    atomically by the trace, so every ``held -> acquired`` pair is a real
    runtime ordering.  Self-edges (an RLock re-entered while held) are
    skipped, matching the static graph's treatment of reentrant locks.
    """
    graph = ObservedLockGraph()
    for event in trace.events():
        if event.action != ACQUIRE:
            continue
        for holder in event.held_before:
            if holder != event.lock:
                graph.edges.setdefault(holder, {}).setdefault(
                    event.lock, (event.path, event.line)
                )
    return graph


def cycle_findings(graph: ObservedLockGraph) -> List[Finding]:
    """``DYN-LOCK-CYCLE`` findings: cycles the runtime actually exercised.

    Unlike the static rule these carry no over-approximation — both
    directions of each edge were genuinely taken by live threads, so a
    cycle here is a deadlock waiting on unlucky timing.
    """
    findings = []
    for cycle in find_cycles(graph.edges):
        first, second = cycle[0], cycle[1 % len(cycle)]
        path, line = graph.edges[first][second]
        chain = " -> ".join(cycle + (cycle[0],))
        findings.append(
            Finding(
                rule_id=DYN_LOCK_CYCLE,
                severity=Severity.ERROR,
                path=path,
                line=line,
                message=(
                    f"runtime lock-order cycle {chain}; threads acquired "
                    f"these locks in opposite orders during this run"
                ),
            )
        )
    return findings


def held_at_exit_findings(trace: LockTrace) -> List[Finding]:
    """``DYN-LOCK-HELD-AT-EXIT`` warnings: locks still held when the run ended.

    A lock held after all workers joined usually means a missed release on
    an error path.  Each finding is anchored at the site of the dangling
    acquire (the last acquire of that lock in the trace).
    """
    held = trace.held_by_thread()
    if not held:
        return []
    last_acquire: Dict[str, Tuple[str, int]] = {}
    for event in trace.events():
        if event.action == ACQUIRE:
            last_acquire[event.lock] = (event.path, event.line)
    findings = []
    for thread_name in sorted(held):
        for lock in held[thread_name]:
            path, line = last_acquire.get(lock, ("<unknown>", 1))
            findings.append(
                Finding(
                    rule_id=DYN_LOCK_HELD_AT_EXIT,
                    severity=Severity.WARNING,
                    path=path,
                    line=line,
                    message=(
                        f"lock {lock} still held by thread {thread_name!r} "
                        f"at the end of the instrumented run (missed release?)"
                    ),
                )
            )
    return findings


def load_static_runtime_graph(
    runtime_dir: Optional[str] = None,
) -> StaticLockGraph:
    """The static ``CONC-LOCK-ORDER`` graph of the runtime package.

    Parses the :mod:`repro.runtime` sources from disk (or ``runtime_dir``
    when given) and runs the same graph builder the static rule uses, so
    the diff compares against exactly what ``repro lint`` sees.
    """
    if runtime_dir is None:
        import repro.runtime

        runtime_dir = os.path.dirname(os.path.abspath(repro.runtime.__file__))
    modules = [
        load_module(os.path.join(runtime_dir, name))
        for name in sorted(os.listdir(runtime_dir))
        if name.endswith(".py")
    ]
    return build_lock_order_graph(modules)


@dataclass
class GraphDiff:
    """The observed-vs-static edge comparison."""

    #: edges the runtime took that the static graph lacks, with witnesses
    observed_only: List[Tuple[str, str, str, int]] = field(default_factory=list)
    #: edges the static pass derived but this run never exercised
    static_only: List[Tuple[str, str]] = field(default_factory=list)
    #: edges present in both graphs
    common: List[Tuple[str, str]] = field(default_factory=list)


def diff_graphs(observed: ObservedLockGraph, static: StaticLockGraph) -> GraphDiff:
    """Diff the observed edges against the static edges, both directions."""
    observed_pairs = observed.edge_pairs()
    static_pairs = static.edge_pairs()
    diff = GraphDiff()
    for src, dst in sorted(observed_pairs - static_pairs):
        path, line = observed.edges[src][dst]
        diff.observed_only.append((src, dst, path, line))
    diff.static_only = sorted(static_pairs - observed_pairs)
    diff.common = sorted(observed_pairs & static_pairs)
    return diff


def static_gap_findings(diff: GraphDiff) -> List[Finding]:
    """``DYN-STATIC-LOCK-GAP`` warnings for edges only the runtime saw.

    Every observed-only edge means the static one-call-deep analysis
    missed a real acquisition ordering — a gap in its coverage that could
    hide a future cycle.
    """
    return [
        Finding(
            rule_id=DYN_STATIC_LOCK_GAP,
            severity=Severity.WARNING,
            path=path,
            line=line,
            message=(
                f"runtime took lock-order edge {src} -> {dst} that the "
                f"static CONC-LOCK-ORDER graph does not contain; the "
                f"static analysis has a blind spot here"
            ),
        )
        for src, dst, path, line in diff.observed_only
    ]
