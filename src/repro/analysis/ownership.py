"""Interprocedural buffer ownership & aliasing analysis over numpy arrays.

Zero-copy code (the shared-memory parameter path, ``repro.ps.shm``) moves
the cost of safety from the runtime to the reviewer: nothing crashes when
a function mutates an array it merely *borrowed* — results just go subtly
wrong, the data-centric consistency hazard the Parameter Database line of
work frames.  This module is the static side of that bargain: a
flow-sensitive, interprocedural abstract interpretation that tracks where
every array-typed local *came from*, so the ``BUF-*`` rules
(:mod:`repro.analysis.rules.ownership`) can certify the invariants the
zero-copy refactor leans on.

Abstract state
--------------
Each local variable maps to a set of **origin facts** — the memory its
value may alias:

``param:<name>``
    borrowed view of the caller's argument ``<name>`` (only parameters
    that plausibly bind arrays are tracked — annotation or name
    heuristic);
``self:<attr>``
    view of the object's internal state reachable from ``self.<attr>``;
``shm:<var>``
    view of a shared-memory segment's live buffer (``<var>.array``).

The empty set is **owned**: a fresh allocation this function may freely
mutate, return, or store.  A variable *escapes* when it is stored into
``self`` or a ``self``-rooted container — its facts then include the
``self:`` origin, so returning it later is still reported as leaking
internal state.

Transfer highlights (the ISSUE's alias algebra):

* alias-creating — plain assignment, slicing with ranges, ``.view()`` /
  ``.reshape()`` / ``.ravel()`` / ``np.asarray`` / ``np.frombuffer``,
  attribute loads, dict/element subscripts, ``.items()``/``.values()``
  iteration — propagate the source's facts;
* ownership-creating — ``.copy()``, ``np.array(...)`` (which copies by
  default), ``np.zeros``/``ones``/``*_like``, arithmetic results, fancy
  *gather* indexing with an index-looking subscript — produce the empty
  set, killing aliases on strong updates (``x = x.copy()``);
* cross-function flow — per-function :class:`FunctionSummary` objects
  (does it return a view of a parameter / of ``self``? does its
  ``__init__`` absorb a parameter without copy?) are computed to a
  fixpoint over the call graph and applied at call sites, so a view
  that leaks *through* a helper is still attributed to its origin.

Everything is a may-analysis over the statement-granular CFG
(:mod:`repro.analysis.flow`): facts join by union, and a missing fact is
a claim of ownership — under-approximate resolution (dynamic dispatch,
``getattr``) costs a missed warning, never a false crash.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.astutil import dotted_name, import_aliases, resolve_name
from repro.analysis.engine import ModuleInfo
from repro.analysis.flow.callgraph import CallGraph, FunctionInfo, build_call_graph
from repro.analysis.flow.cfg import CFG, Block, build_cfg
from repro.analysis.flow.solve import DataflowProblem, solve

__all__ = [
    "ARRAYISH_RE",
    "FunctionSummary",
    "FunctionOwnership",
    "MutationSite",
    "ReturnSite",
    "StoreSite",
    "ShmAccess",
    "OwnershipAnalysis",
]

#: Names that very likely bind ndarrays in this codebase (mirrors the
#: perf pack's wire-payload heuristic).
ARRAYISH_RE = re.compile(
    r"(^|_)(grad|gradient|param|params|weights?|tensor|array|snapshot|vec|buf|buffer)s?($|_)",
    re.IGNORECASE,
)

#: Subscript names that signal a *gather* (fancy indexing copies).
_INDEXISH_RE = re.compile(r"(^|_)(ids?|idx|indices|index|rows?|cols?|mask)($|_)")

#: Annotation text fragments that mark a parameter as array-like.
_ARRAY_ANNOTATIONS = ("ndarray", "NDArray", "ArrayLike", "ParamSet", "memoryview")

#: numpy calls whose result owns fresh memory.
_OWNING_CALLS = frozenset(
    {
        "numpy.array",
        "numpy.zeros",
        "numpy.ones",
        "numpy.empty",
        "numpy.full",
        "numpy.zeros_like",
        "numpy.ones_like",
        "numpy.empty_like",
        "numpy.full_like",
        "numpy.copy",
        "numpy.arange",
        "numpy.linspace",
        "numpy.concatenate",
        "numpy.stack",
        "numpy.vstack",
        "numpy.hstack",
    }
)

#: numpy calls whose result may alias their first argument.
_ALIASING_CALLS = frozenset(
    {
        "numpy.asarray",
        "numpy.asanyarray",
        "numpy.ascontiguousarray",
        "numpy.asfortranarray",
        "numpy.atleast_1d",
        "numpy.atleast_2d",
        "numpy.ravel",
        "numpy.reshape",
        "numpy.transpose",
        "numpy.squeeze",
        "numpy.swapaxes",
        "numpy.expand_dims",
        "numpy.broadcast_to",
        "numpy.frombuffer",
    }
)

#: method calls whose result may alias the receiver (ndarray views and
#: container iteration plumbing).
_VIEW_METHODS = frozenset(
    {
        "view",
        "reshape",
        "ravel",
        "transpose",
        "swapaxes",
        "squeeze",
        "diagonal",
        "astype_view",  # never emitted by numpy; kept for symmetry
        "items",
        "values",
        "get",
        "setdefault",
        "pop",
    }
)

#: builtins that pass their argument's contents through unchanged.
_PASSTHROUGH_CALLS = frozenset({"zip", "enumerate", "reversed", "sorted", "iter"})

#: ndarray methods that mutate the receiver in place.
_MUTATOR_METHODS = frozenset(
    {"fill", "sort", "partition", "put", "resize", "itemset", "setfield", "byteswap"}
)

#: methods that store their first argument into the receiver container.
_CONTAINER_STORES = frozenset({"append", "add", "extend", "insert", "appendleft"})

#: class names whose construction/attach binds a shared-memory object.
_SHM_CLASS_NAMES = frozenset({"ShmArraySegment", "ShmParamStore"})

#: raw buffer attributes on shared-memory objects.
_SHM_RAW_ATTRS = frozenset({"array", "buf"})

_FENCE_METHODS = frozenset({"read_fence", "write_fence"})

#: summary-fixpoint bound; the repo's helper chains are shallow, and the
#: lattice is finite either way (summaries only grow).
_MAX_SUMMARY_PASSES = 5

_PARAM = "param:"
_SELF = "self:"
_SHM = "shm:"
#: wrapper for *indirect* aliasing: the variable's own buffer is fresh,
#: but it holds references to the wrapped origin's memory (a dict built
#: by ``d[k] = view``).  Mutating the holder is safe; returning or
#: storing it still leaks the held memory.
_HELD = "held:"

Env = FrozenSet[Tuple[str, str]]
_EMPTY: FrozenSet[str] = frozenset()


def strip_held(origin: str) -> str:
    """The direct origin behind a possibly ``held:``-wrapped one."""
    return origin[len(_HELD):] if origin.startswith(_HELD) else origin


def _hold(origins: FrozenSet[str]) -> FrozenSet[str]:
    return frozenset(
        o if o.startswith(_HELD) else _HELD + o for o in origins
    )


def _unhold(origins: FrozenSet[str]) -> FrozenSet[str]:
    return frozenset(strip_held(o) for o in origins)


def _is_param(origin: str) -> bool:
    return strip_held(origin).startswith(_PARAM)


def _is_direct_param(origin: str) -> bool:
    return origin.startswith(_PARAM)


def _is_self(origin: str) -> bool:
    return strip_held(origin).startswith(_SELF)


def _is_shm(origin: str) -> bool:
    return origin.startswith(_SHM)


def param_name(origin: str) -> str:
    """The parameter a (possibly held) ``param:`` origin refers to."""
    return strip_held(origin)[len(_PARAM):]


def self_attr(origin: str) -> str:
    """The attribute a (possibly held) ``self:`` origin refers to."""
    return strip_held(origin)[len(_SELF):]


# ----------------------------------------------------------------------
# Result records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FunctionSummary:
    """The caller-visible aliasing behaviour of one function."""

    #: parameters whose view the return value may alias
    returns_params: FrozenSet[str] = _EMPTY
    #: ``self`` attributes whose view the return value may alias
    returns_self: FrozenSet[str] = _EMPTY
    #: parameters an ``__init__`` stores into ``self`` without copying —
    #: constructing the class absorbs the caller's array by reference
    absorbs_params: FrozenSet[str] = _EMPTY


@dataclass(frozen=True)
class MutationSite:
    """An in-place write through a variable the function does not own."""

    line: int
    target: str
    origins: FrozenSet[str]
    kind: str  # "augassign" | "setitem" | "out=" | "method"


@dataclass(frozen=True)
class ReturnSite:
    """A ``return`` whose value may alias non-owned memory."""

    line: int
    origins: FrozenSet[str]
    #: witness: line that created the alias, when distinct from ``line``
    intro_line: Optional[int] = None


@dataclass(frozen=True)
class StoreSite:
    """A caller's array stored into ``self``-rooted state without copy."""

    line: int
    target: str
    origins: FrozenSet[str]


@dataclass(frozen=True)
class ShmAccess:
    """A raw shared-segment buffer touched outside any version fence."""

    line: int
    expr: str
    kind: str  # "raw" (direct .array/.buf) | "aliased" (tracked variable)


@dataclass
class FunctionOwnership:
    """Everything the BUF rules need to know about one function."""

    qualname: str
    module: str
    line: int
    name: str
    docstring: str
    is_public: bool
    mutations: List[MutationSite] = field(default_factory=list)
    returns: List[ReturnSite] = field(default_factory=list)
    stores: List[StoreSite] = field(default_factory=list)
    shm_accesses: List[ShmAccess] = field(default_factory=list)


# ----------------------------------------------------------------------
# Parameter gating
# ----------------------------------------------------------------------
def _annotation_is_arrayish(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    try:
        text = ast.unparse(annotation)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return False
    return any(marker in text for marker in _ARRAY_ANNOTATIONS)


def tracked_params(fn: ast.AST) -> List[str]:
    """Parameters plausibly binding arrays: annotation or name heuristic."""
    args = fn.args
    names: List[str] = []
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg in ("self", "cls"):
            continue
        if _annotation_is_arrayish(arg.annotation) or ARRAYISH_RE.search(arg.arg):
            names.append(arg.arg)
    return names


def _contains_slice(index: ast.expr) -> bool:
    return any(isinstance(node, ast.Slice) for node in ast.walk(index))


def _is_gather_index(index: ast.expr) -> bool:
    """Whether a subscript looks like fancy (copying) gather indexing."""
    if isinstance(index, (ast.List,)):
        return True
    if isinstance(index, ast.Name):
        return bool(_INDEXISH_RE.search(index.id))
    if isinstance(index, ast.Call):
        # e.g. array[np.where(...)], array[mask.nonzero()]
        name = dotted_name(index.func)
        return name is not None and name.split(".")[-1] in ("where", "nonzero", "argsort")
    return False


def _docstring(fn: ast.AST) -> str:
    try:
        return ast.get_docstring(fn) or ""
    except TypeError:  # pragma: no cover - non-function nodes
        return ""


# ----------------------------------------------------------------------
# The per-function abstract interpreter
# ----------------------------------------------------------------------
class _FunctionAnalyzer:
    """Evaluates origin facts over one function's CFG."""

    def __init__(
        self,
        analysis: "OwnershipAnalysis",
        fi: FunctionInfo,
        summaries: Mapping[str, FunctionSummary],
    ):
        self.analysis = analysis
        self.fi = fi
        self.aliases = analysis.aliases_for(fi.module)
        self.summaries = summaries
        self.tracked = tracked_params(fi.node)
        self.shm_vars: Set[str] = set()
        self.shm_attrs: Set[str] = set()
        self.fence_spans: List[Tuple[int, int]] = []
        self._collect_shm_context()

    # -- environment plumbing ------------------------------------------
    def boundary(self) -> Env:
        return frozenset((name, _PARAM + name) for name in self.tracked)

    @staticmethod
    def lookup(env: Env, var: str) -> FrozenSet[str]:
        return frozenset(origin for name, origin in env if name == var)

    @staticmethod
    def _assign(env: Env, var: str, origins: FrozenSet[str]) -> Env:
        kept = frozenset(fact for fact in env if fact[0] != var)
        return kept | frozenset((var, origin) for origin in origins)

    @staticmethod
    def _taint(env: Env, var: str, origins: FrozenSet[str]) -> Env:
        return env | frozenset((var, origin) for origin in origins)

    # -- expression evaluation -----------------------------------------
    def eval(self, node: Optional[ast.expr], env: Env) -> FrozenSet[str]:
        """The origin facts of an expression's value under ``env``."""
        if node is None:
            return _EMPTY
        if isinstance(node, ast.Name):
            return self.lookup(env, node.id)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, env)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, env)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.IfExp):
            return self.eval(node.body, env) | self.eval(node.orelse, env)
        if isinstance(node, ast.BoolOp):
            out: FrozenSet[str] = _EMPTY
            for value in node.values:
                out |= self.eval(value, env)
            return out
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = _EMPTY
            for elt in node.elts:
                out |= self.eval(elt, env)
            return out
        if isinstance(node, ast.Dict):
            out = _EMPTY
            for value in node.values:
                if value is not None:
                    out |= self.eval(value, env)
            return out
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            inner = self._comprehension_env(node, env)
            return self.eval(node.elt, inner)
        if isinstance(node, ast.DictComp):
            inner = self._comprehension_env(node, env)
            return self.eval(node.value, inner)
        if isinstance(node, ast.NamedExpr):
            return self.eval(node.value, env)
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env)
        if isinstance(node, ast.Await):
            return self.eval(node.value, env)
        # BinOp / UnaryOp / Compare / constants: fresh values.
        return _EMPTY

    def _comprehension_env(self, node: ast.expr, env: Env) -> Env:
        inner = env
        for gen in node.generators:  # type: ignore[attr-defined]
            origins = self.eval(gen.iter, inner)
            inner = self._bind_target(inner, gen.target, origins)
        return inner

    def _eval_attribute(self, node: ast.Attribute, env: Env) -> FrozenSet[str]:
        base = node.value
        if isinstance(base, ast.Name) and base.id == "self":
            # only array-looking attributes become tracked internal state;
            # scalars/counters on self are below this analysis's grade
            if ARRAYISH_RE.search(node.attr):
                return frozenset({_SELF + node.attr})
            return _EMPTY
        if node.attr in _SHM_RAW_ATTRS:
            text = dotted_name(base)
            if text is not None and (text in self.shm_vars or text in self.shm_attrs):
                return frozenset({_SHM + text})
        if isinstance(base, ast.Name) and base.id == "cls":
            return _EMPTY
        # an array-looking attribute of a borrowed object is still
        # borrowed memory; other attributes (counters, ids) are not
        if ARRAYISH_RE.search(node.attr):
            return _unhold(self.eval(base, env))
        return _EMPTY

    def _eval_subscript(self, node: ast.Subscript, env: Env) -> FrozenSet[str]:
        index = node.slice
        if isinstance(index, ast.Index):  # pragma: no cover - Python < 3.9
            index = index.value  # type: ignore[attr-defined]
        if _is_gather_index(index):
            return _EMPTY  # fancy indexing materializes a fresh array
        # an element of a holding container is the held memory itself
        return _unhold(self.eval(node.value, env))

    def _eval_call(self, node: ast.Call, env: Env) -> FrozenSet[str]:
        out_kw = next((kw for kw in node.keywords if kw.arg == "out"), None)
        if out_kw is not None:
            # np.add(a, b, out=x) returns (and mutated) x
            return self.eval(out_kw.value, env)

        dotted = dotted_name(node.func)
        resolved = resolve_name(dotted, self.aliases) if dotted else None

        if resolved in _OWNING_CALLS:
            if resolved == "numpy.array" and any(
                kw.arg == "copy"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
                for kw in node.keywords
            ):
                return self.eval(node.args[0], env) if node.args else _EMPTY
            return _EMPTY
        if resolved in _ALIASING_CALLS:
            return self.eval(node.args[0], env) if node.args else _EMPTY
        if resolved in _PASSTHROUGH_CALLS:
            out: FrozenSet[str] = _EMPTY
            for arg in node.args:
                out |= self.eval(arg, env)
            return out

        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            if method == "copy":
                return _EMPTY
            if method in _VIEW_METHODS:
                return self.eval(node.func.value, env)
            if method in _FENCE_METHODS:
                return self.eval(node.func.value, env)

        return self._eval_summary_call(node, env)

    def _eval_summary_call(self, node: ast.Call, env: Env) -> FrozenSet[str]:
        """Apply a batch callee's :class:`FunctionSummary` at a call site."""
        target = self.analysis.resolve_call(self.fi, node)
        if target is None:
            return _EMPTY
        summary = self.summaries.get(target)
        callee = self.analysis.graph.functions.get(target)
        if summary is None or callee is None:
            return _EMPTY

        out: FrozenSet[str] = _EMPTY
        interesting = summary.returns_params | summary.absorbs_params
        if interesting:
            mapping = self._match_args(callee, node)
            for name in interesting:
                arg = mapping.get(name)
                if arg is not None:
                    out |= self.eval(arg, env)
        if summary.returns_self:
            if isinstance(node.func, ast.Attribute):
                receiver = node.func.value
                if isinstance(receiver, ast.Name) and receiver.id == "self":
                    out |= frozenset(_SELF + attr for attr in summary.returns_self)
                else:
                    # a view of *that object's* internals aliases whatever
                    # the object itself aliases (e.g. a parameter)
                    out |= self.eval(receiver, env)
        return out

    def _match_args(
        self, callee: FunctionInfo, call: ast.Call
    ) -> Dict[str, ast.expr]:
        params = [a.arg for a in callee.node.args.args]
        if params and params[0] in ("self", "cls") and self._call_is_bound(callee, call):
            params = params[1:]
        mapping: Dict[str, ast.expr] = {}
        for position, arg in enumerate(call.args):
            if position < len(params):
                mapping[params[position]] = arg
        for kw in call.keywords:
            if kw.arg is not None:
                mapping[kw.arg] = kw.value
        return mapping

    @staticmethod
    def _call_is_bound(callee: FunctionInfo, call: ast.Call) -> bool:
        if callee.class_qualname is None:
            return False
        if callee.node.name == "__init__":
            # ClassName(...) — the caller never passes self
            func_name = dotted_name(call.func) or ""
            return not func_name.endswith("__init__")
        # obj.method(...) is bound; ClassName.method(obj, ...) is not —
        # approximate the latter by the capitalized-receiver convention.
        if isinstance(call.func, ast.Attribute) and isinstance(
            call.func.value, ast.Name
        ):
            return not call.func.value.id[:1].isupper()
        return isinstance(call.func, ast.Attribute)

    # -- statement transfer --------------------------------------------
    def transfer(self, block: Block, env: Env) -> Env:
        stmt = block.stmt
        if stmt is None:
            return env  # synthetic blocks and except-dispatch heads
        if isinstance(stmt, ast.Assign):
            origins = self.eval(stmt.value, env)
            for target in stmt.targets:
                env = self._bind_target(env, target, origins, value=stmt.value)
            return env
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            origins = self.eval(stmt.value, env)
            return self._bind_target(env, stmt.target, origins, value=stmt.value)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            # loop heads keep the whole For node; bind the target from the
            # iterable's facts (items()/values() preserve the container's)
            origins = self.eval(stmt.iter, env)
            return self._bind_target(env, stmt.target, origins)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    env = self._bind_target(
                        env,
                        item.optional_vars,
                        self.eval(item.context_expr, env),
                    )
            return env
        return env

    def _bind_target(
        self,
        env: Env,
        target: ast.expr,
        origins: FrozenSet[str],
        value: Optional[ast.expr] = None,
    ) -> Env:
        if isinstance(target, ast.Name):
            return self._assign(env, target.id, origins)
        if isinstance(target, ast.Starred):
            return self._bind_target(env, target.value, origins, value)
        if isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) and len(value.elts) == len(
                target.elts
            ):
                for t, v in zip(target.elts, value.elts):
                    env = self._bind_target(env, t, self.eval(v, env), value=v)
                return env
            for t in target.elts:
                env = self._bind_target(env, t, origins)
            return env
        if isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name) and base.id == "self":
                # the stored value escaped into self: tag it so a later
                # `return v` still reads as leaking internal state
                if isinstance(value, ast.Name) and ARRAYISH_RE.search(target.attr):
                    env = self._taint(
                        env, value.id, frozenset({_SELF + target.attr})
                    )
                return env
            if isinstance(base, ast.Name):
                # container/object absorb: obj.x = v makes obj *hold* v
                return self._taint(env, base.id, _hold(origins))
            return env
        if isinstance(target, ast.Subscript):
            index = target.slice
            if isinstance(index, ast.Index):  # pragma: no cover - < 3.9
                index = index.value  # type: ignore[attr-defined]
            if _contains_slice(index) or _is_gather_index(index):
                # ndarray element/slice write: data is copied into the
                # target's own buffer, no reference is retained
                return env
            base = target.value
            if isinstance(base, ast.Name):
                # dict-style keyed store retains a reference
                return self._taint(env, base.id, _hold(origins))
            return env
        return env

    # -- shared-memory lexical context ---------------------------------
    def _collect_shm_context(self) -> None:
        fn = self.fi.node
        for arg in [*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs]:
            if arg.annotation is not None:
                try:
                    text = ast.unparse(arg.annotation)
                except Exception:  # pragma: no cover
                    text = ""
                if any(name in text for name in _SHM_CLASS_NAMES):
                    self.shm_vars.add(arg.arg)
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if self._is_shm_constructor(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.shm_vars.add(target.id)
                        elif isinstance(target, ast.Attribute):
                            text = dotted_name(target)
                            if text is not None:
                                self.shm_attrs.add(text)
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if (
                        isinstance(expr, ast.Call)
                        and isinstance(expr.func, ast.Attribute)
                        and expr.func.attr in _FENCE_METHODS
                    ):
                        end = getattr(node, "end_lineno", None) or node.lineno
                        self.fence_spans.append((node.lineno, end))
                        break

    def _is_shm_constructor(self, call: ast.Call) -> bool:
        dotted = dotted_name(call.func)
        if dotted is not None and any(
            part in _SHM_CLASS_NAMES for part in dotted.split(".")
        ):
            return True
        target = self.analysis.resolve_call(self.fi, call)
        if target is None:
            return False
        callee = self.analysis.graph.functions.get(target)
        return callee is not None and callee.module == "repro.ps.shm"

    def in_fence(self, line: int) -> bool:
        return any(start <= line <= end for start, end in self.fence_spans)


class _OwnershipProblem(DataflowProblem[Env]):
    """Forward may-analysis: union join over (var, origin) fact sets."""

    direction = "forward"
    exc_propagates_in = True

    def __init__(self, analyzer: _FunctionAnalyzer):
        self.analyzer = analyzer

    def boundary(self, cfg: CFG) -> Env:
        return self.analyzer.boundary()

    def initial(self) -> Env:
        return frozenset()

    def join(self, a: Env, b: Env) -> Env:
        return a | b

    def transfer(self, block: Block, value: Env) -> Env:
        return self.analyzer.transfer(block, value)


# ----------------------------------------------------------------------
# Whole-batch analysis
# ----------------------------------------------------------------------
class OwnershipAnalysis:
    """Ownership facts for every function in a lint batch.

    Builds the call graph once, then iterates per-function abstract
    interpretation and summary extraction to a fixpoint (summaries only
    grow, so a handful of passes converge on real code).
    """

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules = list(modules)
        self.graph: CallGraph = build_call_graph(self.modules)
        self._aliases: Dict[str, Dict[str, str]] = {
            m.module: import_aliases(m.tree) for m in self.modules
        }
        self.summaries: Dict[str, FunctionSummary] = {}
        self.results: Dict[str, FunctionOwnership] = {}
        self._run()

    # -- shared helpers -------------------------------------------------
    def aliases_for(self, module: str) -> Dict[str, str]:
        return self._aliases.get(module, {})

    def resolve_call(self, fi: FunctionInfo, call: ast.Call) -> Optional[str]:
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        # same-package use of the call graph's resolver; as_call maps a
        # bare class reference to its __init__
        return self.graph._resolve(fi.module, dotted, fi, as_call=True)

    # -- driver ---------------------------------------------------------
    def _run(self) -> None:
        order = sorted(self.graph.functions)
        for _ in range(_MAX_SUMMARY_PASSES):
            changed = False
            for qualname in order:
                fi = self.graph.functions[qualname]
                result, summary = self._analyze(fi)
                if summary != self.summaries.get(qualname):
                    self.summaries[qualname] = summary
                    changed = True
                self.results[qualname] = result
            if not changed:
                break

    # -- per-function pass ----------------------------------------------
    def _analyze(
        self, fi: FunctionInfo
    ) -> Tuple[FunctionOwnership, FunctionSummary]:
        analyzer = _FunctionAnalyzer(self, fi, self.summaries)
        cfg = build_cfg(fi.node, fi.qualname)
        states = solve(cfg, _OwnershipProblem(analyzer))

        result = FunctionOwnership(
            qualname=fi.qualname,
            module=fi.module,
            line=fi.line,
            name=fi.node.name,
            docstring=_docstring(fi.node),
            is_public=not fi.node.name.startswith("_"),
        )
        returns_params: Set[str] = set()
        returns_self: Set[str] = set()
        absorbs: Set[str] = set()
        intro: Dict[str, int] = {}

        for block_id in sorted(cfg.blocks):
            block = cfg.blocks[block_id]
            stmt = block.stmt
            env_in, env_out = states[block_id]
            if stmt is not None:
                for _, origin in env_out - env_in:
                    intro.setdefault(strip_held(origin), block.line)
                self._inspect_statement(
                    analyzer, stmt, env_in, result, returns_params, returns_self,
                    absorbs, intro,
                )
        self._inspect_shm_raw_accesses(analyzer, result)

        summary = FunctionSummary(
            returns_params=frozenset(returns_params),
            returns_self=frozenset(returns_self),
            absorbs_params=frozenset(absorbs)
            if fi.node.name == "__init__"
            else _EMPTY,
        )
        return result, summary

    def _inspect_statement(
        self,
        analyzer: _FunctionAnalyzer,
        stmt: ast.stmt,
        env: Env,
        result: FunctionOwnership,
        returns_params: Set[str],
        returns_self: Set[str],
        absorbs: Set[str],
        intro: Dict[str, int],
    ) -> None:
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            origins = _unhold(analyzer.eval(stmt.value, env))
            if origins:
                for origin in origins:
                    if _is_param(origin):
                        returns_params.add(param_name(origin))
                    elif _is_self(origin):
                        returns_self.add(self_attr(origin))
                intro_line = min(
                    (
                        intro[o]
                        for o in origins
                        if o in intro and intro[o] != stmt.lineno
                    ),
                    default=None,
                )
                result.returns.append(
                    ReturnSite(stmt.lineno, origins, intro_line)
                )
            return

        if isinstance(stmt, ast.AugAssign):
            self._record_mutation(
                analyzer, stmt.target, env, stmt.lineno, "augassign", result
            )
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            value = stmt.value
            for target in targets:
                if isinstance(target, ast.Subscript):
                    self._record_mutation(
                        analyzer, target.value, env, stmt.lineno, "setitem", result
                    )
                    self._record_store(
                        analyzer, target, value, env, stmt.lineno, result, absorbs
                    )
                elif isinstance(target, ast.Attribute):
                    self._record_store(
                        analyzer, target, value, env, stmt.lineno, result, absorbs
                    )

        # out= keywords and mutator/container method calls anywhere in the
        # statement's own expressions (compound heads scan only their test
        # or iterable — body statements have their own CFG blocks)
        for node in self._walk_own(stmt):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg == "out":
                    self._record_mutation(
                        analyzer, kw.value, env, node.lineno, "out=", result
                    )
            if isinstance(node.func, ast.Attribute):
                method = node.func.attr
                if method in _MUTATOR_METHODS:
                    self._record_mutation(
                        analyzer, node.func.value, env, node.lineno, "method", result
                    )
                elif method in _CONTAINER_STORES and node.args:
                    self._record_container_store(
                        analyzer, node, env, result, absorbs
                    )

    @staticmethod
    def _walk_own(stmt: ast.stmt) -> List[ast.AST]:
        """Nodes belonging to *this* CFG block, excluding compound bodies."""
        heads: List[ast.expr] = []
        if isinstance(stmt, (ast.If, ast.While)):
            heads = [stmt.test]
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            heads = [stmt.iter]
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            heads = [item.context_expr for item in stmt.items]
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Try)
        ):
            return []
        else:
            return list(ast.walk(stmt))
        out: List[ast.AST] = []
        for head in heads:
            out.extend(ast.walk(head))
        return out

    def _record_mutation(
        self,
        analyzer: _FunctionAnalyzer,
        target: ast.expr,
        env: Env,
        line: int,
        kind: str,
        result: FunctionOwnership,
    ) -> None:
        origins = analyzer.eval(target, env)
        # only *direct* aliases count: writing into a dict that holds
        # borrowed refs mutates the dict, not the borrowed memory
        borrowed = frozenset(o for o in origins if _is_direct_param(o))
        text = dotted_name(target) or ast.unparse(target)
        if borrowed:
            result.mutations.append(MutationSite(line, text, borrowed, kind))
        shm = frozenset(o for o in origins if _is_shm(o))
        if shm and not analyzer.in_fence(line):
            result.shm_accesses.append(ShmAccess(line, text, "aliased"))

    def _record_store(
        self,
        analyzer: _FunctionAnalyzer,
        target: ast.expr,
        value: Optional[ast.expr],
        env: Env,
        line: int,
        result: FunctionOwnership,
        absorbs: Set[str],
    ) -> None:
        """Flag ``self``-rooted stores whose value aliases a parameter."""
        root = target
        while isinstance(root, ast.Subscript):
            root = root.value
        rooted_in_self = False
        if isinstance(root, ast.Attribute) and isinstance(root.value, ast.Name):
            rooted_in_self = root.value.id == "self"
        elif isinstance(root, ast.Name):
            rooted_in_self = any(
                _is_self(o) for o in analyzer.lookup(env, root.id)
            )
        if not rooted_in_self:
            return
        origins = analyzer.eval(value, env) if value is not None else _EMPTY
        borrowed = _unhold(frozenset(o for o in origins if _is_param(o)))
        if borrowed:
            try:
                text = ast.unparse(target)
            except Exception:  # pragma: no cover
                text = "<target>"
            result.stores.append(StoreSite(line, text, borrowed))
            absorbs.update(param_name(o) for o in borrowed)

    def _record_container_store(
        self,
        analyzer: _FunctionAnalyzer,
        call: ast.Call,
        env: Env,
        result: FunctionOwnership,
        absorbs: Set[str],
    ) -> None:
        receiver = call.func.value  # type: ignore[union-attr]
        recv_origins = analyzer.eval(receiver, env)
        recv_is_self = any(_is_self(o) for o in recv_origins) or (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
        )
        if not recv_is_self:
            return
        origins = analyzer.eval(call.args[0], env)
        borrowed = _unhold(frozenset(o for o in origins if _is_param(o)))
        if borrowed:
            try:
                text = ast.unparse(call.func)
            except Exception:  # pragma: no cover
                text = "<call>"
            result.stores.append(StoreSite(call.lineno, text, borrowed))
            absorbs.update(param_name(o) for o in borrowed)

    def _inspect_shm_raw_accesses(
        self, analyzer: _FunctionAnalyzer, result: FunctionOwnership
    ) -> None:
        """Lexical pass: every raw ``.array``/``.buf`` touch needs a fence."""
        if analyzer.fi.module == "repro.ps.shm":
            return  # the fence implementation itself
        if not (analyzer.shm_vars or analyzer.shm_attrs):
            return
        for node in ast.walk(analyzer.fi.node):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in _SHM_RAW_ATTRS:
                continue
            base = dotted_name(node.value)
            if base is None:
                continue
            if base not in analyzer.shm_vars and base not in analyzer.shm_attrs:
                continue
            if not analyzer.in_fence(node.lineno):
                result.shm_accesses.append(
                    ShmAccess(node.lineno, f"{base}.{node.attr}", "raw")
                )
