"""Custom static analysis for the SpecSync reproduction.

``repro.analysis`` is an AST-based lint engine with rule packs written
*for this codebase*: determinism lint over the simulation path, protocol
exhaustiveness over the message layer, and lock/queue/thread checks over
the real-time runtime.  It backs the ``repro lint`` CLI command and the
tier-1 self-lint gate (``tests/test_analysis_self_lint.py``).

Quick use::

    from repro.analysis import run_lint, render_text
    findings = run_lint(["src/repro"])
    print(render_text(findings))

Suppress a finding in source with a justification::

    started = _time.perf_counter()  # repro: allow[DET-WALLCLOCK] measures real tuner cost

Beyond the lint engine, :mod:`repro.analysis.dynamic` hosts the runtime
sanitizers (``repro sanitize``) and :mod:`repro.analysis.model` the
explicit-state model checker for the abort/re-sync protocol
(``repro modelcheck``); all three gate CI through the shared
:func:`gate_exit_code` / ``--fail-on`` policy.

See ``docs/static_analysis.md`` for every rule id and the extension
guide.
"""

from repro.analysis.engine import (
    LintEngine,
    ModuleInfo,
    Rule,
    lint_source,
    module_from_source,
    run_lint,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.gate import FAIL_ON_CHOICES, add_fail_on_argument, gate_exit_code
from repro.analysis.reporters import parse_json, render_json, render_text
from repro.analysis.rules import DEFAULT_RULE_CLASSES, default_rules

__all__ = [
    "Finding",
    "Severity",
    "FAIL_ON_CHOICES",
    "add_fail_on_argument",
    "gate_exit_code",
    "LintEngine",
    "ModuleInfo",
    "Rule",
    "run_lint",
    "lint_source",
    "module_from_source",
    "render_text",
    "render_json",
    "parse_json",
    "default_rules",
    "DEFAULT_RULE_CLASSES",
]
