"""Custom static analysis for the SpecSync reproduction.

``repro.analysis`` is an AST-based lint engine with rule packs written
*for this codebase*: determinism lint over the simulation path, protocol
exhaustiveness over the message layer, and lock/queue/thread checks over
the real-time runtime.  It backs the ``repro lint`` CLI command and the
tier-1 self-lint gate (``tests/test_analysis_self_lint.py``).

Quick use::

    from repro.analysis import run_lint, render_text
    findings = run_lint(["src/repro"])
    print(render_text(findings))

Suppress a finding in source with a justification::

    started = _time.perf_counter()  # repro: allow[DET-WALLCLOCK] measures real tuner cost

See ``docs/static_analysis.md`` for every rule id and the extension
guide.
"""

from repro.analysis.engine import (
    LintEngine,
    ModuleInfo,
    Rule,
    lint_source,
    module_from_source,
    run_lint,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.reporters import parse_json, render_json, render_text
from repro.analysis.rules import DEFAULT_RULE_CLASSES, default_rules

__all__ = [
    "Finding",
    "Severity",
    "LintEngine",
    "ModuleInfo",
    "Rule",
    "run_lint",
    "lint_source",
    "module_from_source",
    "render_text",
    "render_json",
    "parse_json",
    "default_rules",
    "DEFAULT_RULE_CLASSES",
]
