"""Finding reporters: terminal text and machine-readable JSON.

The JSON form round-trips through :meth:`Finding.from_dict`, so CI
tooling can post-process results (group by rule, diff against a
baseline) without re-running the engine.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Sequence

from repro.analysis.findings import Finding

__all__ = ["render_text", "render_json", "parse_json"]


def render_text(
    findings: Sequence[Finding], show_suppressed: bool = False
) -> str:
    """Human-readable report: one line per finding plus a summary."""
    shown = [
        f for f in findings if show_suppressed or not f.suppressed
    ]
    lines = [f.render() for f in shown]
    active = [f for f in findings if not f.suppressed]
    suppressed = len(findings) - len(active)
    by_rule = Counter(f.rule_id for f in active)
    if active:
        worst = ", ".join(
            f"{rule}={count}" for rule, count in sorted(by_rule.items())
        )
        summary = (
            f"{len(active)} finding(s) ({worst}); {suppressed} suppressed"
        )
    else:
        summary = f"clean: 0 findings ({suppressed} suppressed)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """JSON report with per-rule counts; inverse of :func:`parse_json`."""
    active = [f for f in findings if not f.suppressed]
    payload = {
        "findings": [f.to_dict() for f in findings],
        "counts": {
            "total": len(findings),
            "unsuppressed": len(active),
            "suppressed": len(findings) - len(active),
            "by_rule": dict(
                sorted(Counter(f.rule_id for f in active).items())
            ),
        },
    }
    return json.dumps(payload, indent=2)


def parse_json(text: str) -> List[Finding]:
    """Rebuild findings from :func:`render_json` output."""
    payload = json.loads(text)
    return [Finding.from_dict(item) for item in payload["findings"]]
