"""Flow-sensitive rule pack: path and reachability properties.

Four rules built on :mod:`repro.analysis.flow` (CFG + dataflow solver +
call graph), complementing the per-node packs:

* **FLOW-RELEASE** — typestate: a lock/file/socket/thread resource
  acquired in a function must reach its release on *every* CFG path,
  including exception edges.  This is the static counterpart of the
  dynamic lockset tracer, and subsumes the syntactic "acquire not in a
  ``with``" approximation.
* **FLOW-BLOCKING** — no blocking primitive (``time.sleep``, untimed
  ``Queue.get``/``put``, ``socket.recv``/``accept``, untimed
  ``Thread.join``/``Event.wait``) may be reachable from an ``async def``
  body or a registered simulator-tap callback, via call-graph closure.
* **FLOW-EXC** — an exception raised on the abort/re-sync path
  (``repro.ps.engine`` / ``repro.core.scheduler``) must be caught in the
  raising function or declared in its docstring's ``Raises`` section, so
  no recovery path can die silently.
* **FLOW-DEAD** — unreachable CFG blocks, plus ``MessageKind`` dispatch
  arms that are duplicates or test kinds outside the protocol model's
  ``MODEL_ALPHABET`` (arms the model checker proves can never fire).

All four attach ``flow_path`` — the line numbers along the offending
control or call path — so findings are actionable without re-deriving
the path by hand.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.astutil import (
    dotted_name,
    import_aliases,
    resolve_call_name,
    walk_functions,
    walk_own_scope,
)
from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.flow.callgraph import (
    CallGraph,
    FunctionInfo,
    build_call_graph,
)
from repro.analysis.flow.cfg import CFG, EXIT, RAISE, Block, build_cfg
from repro.analysis.flow.solve import DataflowProblem, solve
from repro.analysis.rules.protocol import ModelAlphabetRule

__all__ = [
    "ReleaseOnAllPathsRule",
    "BlockingReachableRule",
    "ExceptionEscapeRule",
    "DeadPathRule",
]


# ----------------------------------------------------------------------
# FLOW-RELEASE
# ----------------------------------------------------------------------
#: functions that are themselves resource-management plumbing; a wrapper
#: like ``TracedLock.acquire`` intentionally acquires without releasing.
_WRAPPER_NAMES = {
    "acquire",
    "release",
    "close",
    "shutdown",
    "__enter__",
    "__exit__",
}

#: ``x = <ctor>()`` resources: resolved constructor -> release attrs
_CTOR_RESOURCES = {
    "open": ("file", ("close",)),
    "io.open": ("file", ("close",)),
    "socket.socket": ("socket", ("close", "shutdown")),
    "socket.create_connection": ("socket", ("close", "shutdown")),
}

#: ``x.start()`` resources are only tracked when a matching stop call
#: exists somewhere in the function — a fire-and-forget daemon thread is
#: a deliberate pattern, a started-then-sometimes-joined one is a leak.
_START_RELEASES = ("join", "cancel", "terminate", "stop")


@dataclass
class _Resource:
    """One tracked resource inside one function."""

    key: str  # receiver/variable dotted name, e.g. "self._lock", "handle"
    kind: str  # "lock" | "file" | "socket" | "started"
    acquire_blocks: Dict[int, int]  # block id -> line
    release_attrs: Tuple[str, ...]


def _stmt_calls(stmt: ast.stmt) -> Iterator[ast.Call]:
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            yield node
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return  # nested scopes are analyzed separately


def _block_calls(stmt: ast.stmt) -> Iterator[ast.Call]:
    """Calls the CFG block for ``stmt`` actually evaluates.

    Compound-statement head blocks (``if``/``while``/``for``/``with``)
    only run their test or iterable — the body statements live in their
    own blocks — so walking the whole node would credit the head with
    calls it never makes.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        exprs: List[ast.expr] = [stmt.test]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        exprs = [stmt.iter]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        exprs = [item.context_expr for item in stmt.items]
    elif isinstance(stmt, ast.Try):
        return
    else:
        yield from _stmt_calls(stmt)
        return
    for expr in exprs:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                yield node


def _is_release(stmt: Optional[ast.stmt], resource: _Resource) -> bool:
    if stmt is None:
        return False
    for call in _block_calls(stmt):
        name = dotted_name(call.func)
        if name is None:
            continue
        owner, _, attr = name.rpartition(".")
        if owner == resource.key and attr in resource.release_attrs:
            return True
    return False


class _HeldProblem(DataflowProblem[FrozenSet[str]]):
    """Forward may-analysis: which resources may be held at each block.

    Exception edges are per-block: an *acquire* that raises never
    acquired (pre-state flows out), while any other statement — release
    included — propagates its post-state, so ``finally: x.release()``
    does not self-report when the release itself could raise.
    """

    direction = "forward"

    def __init__(self, resources: Sequence[_Resource]):
        self._resources = resources

    def boundary(self, cfg: CFG) -> FrozenSet[str]:
        return frozenset()

    def initial(self) -> FrozenSet[str]:
        return frozenset()

    def join(self, a: FrozenSet[str], b: FrozenSet[str]) -> FrozenSet[str]:
        return a | b

    def transfer(self, block: Block, value: FrozenSet[str]) -> FrozenSet[str]:
        out = set(value)
        for resource in self._resources:
            if block.block_id in resource.acquire_blocks:
                out.add(resource.key)
            elif _is_release(block.stmt, resource):
                out.discard(resource.key)
        return frozenset(out)

    def edge_value(
        self,
        block: Block,
        pre: FrozenSet[str],
        post: FrozenSet[str],
        kind: str,
    ) -> FrozenSet[str]:
        if kind != "exc":
            return post
        if block.in_finally:
            # a raise inside cleanup code is a double fault; flagging
            # "the statement before the release raised" would make every
            # multi-statement finally unfixable
            return frozenset()
        acquired_here = {
            r.key for r in self._resources if block.block_id in r.acquire_blocks
        }
        # the acquire did not complete on the exc edge; everything else
        # (including releases) keeps its post-state effect
        return post - frozenset(acquired_here) | (pre & frozenset(acquired_here))


def _escapes(fn: ast.AST, var: str) -> bool:
    """Whether local ``var``'s ownership leaves the function.

    Returned, yielded, stored on an object, or passed as an argument to
    another callable (``started.append(worker)``, ``register(handle)``)
    all transfer responsibility for the release to someone else.
    """
    for node in walk_own_scope(fn):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = node.value
            if value is not None and any(
                isinstance(sub, ast.Name) and sub.id == var
                for sub in ast.walk(value)
            ):
                return True
        elif isinstance(node, ast.Call):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if any(
                    isinstance(sub, ast.Name) and sub.id == var
                    for sub in ast.walk(arg)
                ):
                    return True
        elif isinstance(node, ast.Assign):
            if any(
                isinstance(t, (ast.Attribute, ast.Subscript))
                for t in node.targets
            ) and any(
                isinstance(sub, ast.Name) and sub.id == var
                for sub in ast.walk(node.value)
            ):
                return True
    return False


class ReleaseOnAllPathsRule(Rule):
    """FLOW-RELEASE: acquired resources reach their release on all paths.

    Tracks four acquisition shapes — ``x.acquire()`` (lock),
    ``x = open(...)`` (file), ``x = socket.socket(...)`` (socket), and
    ``x.start()`` (thread/timer/process, only when a matching
    ``join``/``cancel``/``terminate``/``stop`` appears in the same
    function) — and solves a may-held dataflow over the CFG.  A resource
    still held at function exit *or* on an escaping exception edge is a
    leak.  ``with`` acquisitions are safe by construction and never
    tracked; resources that escape (returned, yielded, stored on an
    object) transfer ownership and are exempt, as are resource-plumbing
    wrappers (``acquire``/``release``/``close``/``__enter__``/…).
    """

    rule_id = "FLOW-RELEASE"
    severity = Severity.ERROR
    description = "Resource may not be released on every CFG path."

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for cls, fn in walk_functions(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if fn.name in _WRAPPER_NAMES:
                continue
            yield from self._check_function(module, cls, fn, aliases)

    def _check_function(
        self,
        module: ModuleInfo,
        cls: Optional[ast.ClassDef],
        fn: ast.AST,
        aliases: Dict[str, str],
    ) -> Iterator[Finding]:
        assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        cfg = build_cfg(fn, f"{cls.name}.{fn.name}" if cls else fn.name)
        resources = self._collect_resources(cfg, fn, aliases)
        if not resources:
            return
        solution = solve(cfg, _HeldProblem(resources))
        for resource in resources:
            held_at: List[int] = []
            for sink in (EXIT, RAISE):
                if resource.key in solution[sink][0]:
                    held_at.append(sink)
            if not held_at:
                continue
            acquire_block = min(resource.acquire_blocks)
            line = resource.acquire_blocks[acquire_block]
            witness = _witness_path(
                cfg, solution, resource, acquire_block, held_at[0]
            )
            how = (
                "escapes on an exception path"
                if held_at == [RAISE]
                else "is not released on every path"
            )
            verb = {
                "lock": "acquired",
                "file": "opened",
                "socket": "opened",
                "started": "started",
            }[resource.kind]
            release = "/".join(resource.release_attrs[:2])
            yield self.finding(
                module,
                line,
                f"{resource.kind} '{resource.key}' {verb} here {how}; "
                f"call {resource.key}.{release}() in a finally block or "
                f"use a with-statement",
                flow_path=witness,
            )

    @staticmethod
    def _collect_resources(
        cfg: CFG, fn: ast.AST, aliases: Dict[str, str]
    ) -> List[_Resource]:
        by_key: Dict[Tuple[str, str], _Resource] = {}
        stop_calls: Set[str] = set()  # receivers with a join/cancel/... call
        for block in cfg.blocks.values():
            if block.stmt is None:
                continue
            for call in _stmt_calls(block.stmt):
                name = dotted_name(call.func)
                if name is None:
                    continue
                owner, _, attr = name.rpartition(".")
                if owner and attr in _START_RELEASES:
                    stop_calls.add(owner)

        for block in cfg.blocks.values():
            stmt = block.stmt
            if stmt is None:
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                name = dotted_name(stmt.value.func)
                if name is not None:
                    owner, _, attr = name.rpartition(".")
                    if owner and owner != "self" and attr == "acquire":
                        _add_resource(
                            by_key, owner, "lock", ("release",), block
                        )
                    elif (
                        owner
                        and owner != "self"
                        and attr == "start"
                        and owner in stop_calls
                        and not _escapes(fn, owner)
                    ):
                        _add_resource(
                            by_key, owner, "started", _START_RELEASES, block
                        )
            elif (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
            ):
                ctor = resolve_call_name(stmt.value, aliases)
                if ctor in _CTOR_RESOURCES:
                    kind, release_attrs = _CTOR_RESOURCES[ctor]
                    var = stmt.targets[0].id
                    if not _escapes(fn, var):
                        _add_resource(by_key, var, kind, release_attrs, block)
        return list(by_key.values())


def _add_resource(
    by_key: Dict[Tuple[str, str], _Resource],
    key: str,
    kind: str,
    release_attrs: Tuple[str, ...],
    block: Block,
) -> None:
    resource = by_key.setdefault(
        (key, kind),
        _Resource(
            key=key, kind=kind, acquire_blocks={}, release_attrs=release_attrs
        ),
    )
    resource.acquire_blocks[block.block_id] = block.line


def _witness_path(
    cfg: CFG,
    solution: Dict[int, Tuple[FrozenSet[str], FrozenSet[str]]],
    resource: _Resource,
    start: int,
    sink: int,
) -> Tuple[int, ...]:
    """Line numbers of a shortest held-throughout path from acquire to sink."""
    parents: Dict[int, int] = {}
    queue = deque([start])
    found = False
    while queue and not found:
        current = queue.popleft()
        for edge in cfg.successors(current):
            if edge.dst in parents or edge.dst == start:
                continue
            # only follow edges where the resource is still (may be) held
            if edge.kind == "exc" and current in resource.acquire_blocks:
                continue  # the acquire itself raising means never held
            if edge.kind == "exc" and cfg.blocks[current].in_finally:
                continue  # double faults in cleanup are out of scope
            if _is_release(cfg.blocks[current].stmt, resource):
                continue
            if edge.dst not in (EXIT, RAISE) and resource.key not in (
                solution[edge.dst][0]
            ):
                continue
            parents[edge.dst] = current
            if edge.dst == sink:
                found = True
                break
            queue.append(edge.dst)
    if not found:
        return ()
    blocks: List[int] = []
    node = sink
    while node != start:
        blocks.append(node)
        node = parents[node]
    blocks.append(start)
    blocks.reverse()
    lines: List[int] = []
    for bid in blocks:
        block = cfg.blocks[bid]
        if block.synthetic or block.line <= 0:
            continue
        if not lines or lines[-1] != block.line:
            lines.append(block.line)
    return tuple(lines)


# ----------------------------------------------------------------------
# FLOW-BLOCKING
# ----------------------------------------------------------------------
_BLOCKING_EXTERNALS = {"time.sleep"}
_SOCKET_BLOCKING_ATTRS = {"recv", "recv_into", "recvfrom", "accept"}


@dataclass(frozen=True)
class _BlockingCall:
    line: int
    what: str


def _has_kw(call: ast.Call, *names: str) -> bool:
    return any(kw.arg in names for kw in call.keywords)


def _nonblocking_kw(call: ast.Call) -> bool:
    if _has_kw(call, "timeout"):
        return True
    return any(
        kw.arg == "block"
        and isinstance(kw.value, ast.Constant)
        and kw.value.value is False
        for kw in call.keywords
    )


def _queue_base_name(func: ast.Attribute) -> Optional[str]:
    value = func.value
    if isinstance(value, ast.Subscript):
        value = value.value
    name = dotted_name(value)
    if name is None:
        return None
    base = name.split(".")[-1]
    return base if "queue" in base.lower() else None


def _blocking_calls(graph: CallGraph, fi: FunctionInfo) -> List[_BlockingCall]:
    calls: List[_BlockingCall] = []
    for full, line in graph.external.get(fi.qualname, []):
        if full in _BLOCKING_EXTERNALS:
            calls.append(_BlockingCall(line, full))
    for node in walk_own_scope(fi.node):
        if not (
            isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
        ):
            continue
        attr = node.func.attr
        if attr == "join" and not node.args and not _has_kw(node, "timeout"):
            # zero-arg join: Thread.join — str.join always takes an argument
            calls.append(_BlockingCall(node.lineno, f"untimed .{attr}()"))
        elif attr in _SOCKET_BLOCKING_ATTRS:
            calls.append(_BlockingCall(node.lineno, f"socket .{attr}()"))
        elif attr == "wait" and not node.args and not _has_kw(node, "timeout"):
            calls.append(_BlockingCall(node.lineno, f"untimed .{attr}()"))
        elif attr in ("get", "put") and _queue_base_name(node.func) is not None:
            if not _nonblocking_kw(node):
                calls.append(
                    _BlockingCall(node.lineno, f"untimed queue .{attr}()")
                )
    return sorted(set(calls), key=lambda c: (c.line, c.what))


class BlockingReachableRule(Rule):
    """FLOW-BLOCKING: no blocking call reachable from async/tap contexts.

    Roots are every ``async def`` body and every callback registered via
    ``install_tap(...)``; the call-graph closure from those roots must be
    free of blocking primitives (``time.sleep``, untimed ``Queue.get`` /
    ``put``, ``socket.recv``/``accept``, zero-argument ``join``/``wait``).
    A blocking call in a tap stalls the simulated clock for every worker;
    in an ``async def`` it stalls the whole event loop.  The finding's
    flow path is the call chain from the root to the blocking line.
    """

    rule_id = "FLOW-BLOCKING"
    severity = Severity.WARNING
    description = "Blocking call reachable from async def or simulator tap."

    def check_project(
        self, modules: Sequence[ModuleInfo]
    ) -> Iterator[Finding]:
        by_name = {m.module: m for m in modules}
        graph = build_call_graph(modules)
        roots: Dict[str, str] = {}  # qualname -> why it is a root
        for fi in graph.functions.values():
            if fi.is_async:
                roots.setdefault(fi.qualname, "async def")
        for fi in graph.functions.values():
            for node in walk_own_scope(fi.node):
                if not (
                    isinstance(node, ast.Call)
                    and node.args
                    and dotted_name(node.func) is not None
                    and str(dotted_name(node.func)).split(".")[-1]
                    == "install_tap"
                ):
                    continue
                target = graph.resolve_callable(fi.module, node.args[0], fi)
                if target is not None:
                    roots.setdefault(
                        target, f"tap registered at {fi.module}:{node.lineno}"
                    )

        reported: Set[Tuple[str, int]] = set()
        for root in sorted(roots):
            for qualname in sorted(graph.reachable_from([root])):
                target_fi = graph.functions[qualname]
                module = by_name.get(target_fi.module)
                if module is None:
                    continue
                for call in _blocking_calls(graph, target_fi):
                    if (qualname, call.line) in reported:
                        continue
                    reported.add((qualname, call.line))
                    chain = graph.call_path(root, qualname) or []
                    flow_path = tuple(
                        edge.line for edge in chain
                    ) + (call.line,)
                    via = (
                        " via " + " -> ".join(e.callee for e in chain)
                        if chain
                        else ""
                    )
                    yield self.finding(
                        module,
                        call.line,
                        f"{call.what} in {qualname} is reachable from "
                        f"{root} ({roots[root]}){via}; blocking here stalls "
                        f"the event loop/simulated clock",
                        flow_path=flow_path,
                    )


# ----------------------------------------------------------------------
# FLOW-EXC
# ----------------------------------------------------------------------
_EXC_SCOPE_MODULES = ("repro.ps.engine", "repro.core.scheduler")
_EXC_ROOT_NAMES = ("request_resync", "handle_notify", "_check_resync")


def _uncaught_raises(fn: ast.AST) -> List[ast.Raise]:
    """``raise`` statements no enclosing in-function handler can catch.

    Any enclosing ``try`` with handlers counts as catching (no type
    matching — a typed handler plus a typed raise is reviewed by eye).
    Bare ``raise`` re-raises inside a handler are deliberate propagation
    and exempt.
    """
    found: List[ast.Raise] = []

    def handle(node: ast.AST, protected: bool) -> None:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return
        if isinstance(node, ast.Raise):
            if not protected and node.exc is not None:
                found.append(node)
            return
        if isinstance(node, ast.Try):
            inner = protected or bool(node.handlers)
            for stmt in node.body + node.orelse:
                handle(stmt, inner)
            for handler in node.handlers:
                for stmt in handler.body:
                    handle(stmt, protected)
            for stmt in node.finalbody:
                handle(stmt, protected)
            return
        for child in ast.iter_child_nodes(node):
            handle(child, protected)

    for child in ast.iter_child_nodes(fn):
        handle(child, False)
    return found


def _raised_name(node: ast.Raise) -> Optional[str]:
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    name = dotted_name(exc) if exc is not None else None
    return name.split(".")[-1] if name else None


def _declared_raises(fn: ast.AST) -> Set[str]:
    if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return set()
    doc = ast.get_docstring(fn, clean=True) or ""
    if "Raises" not in doc:
        return set()
    _, _, tail = doc.partition("Raises")
    return {word.strip(":,.()") for word in tail.split()}


def _protected_spans(fi: FunctionInfo) -> List[Tuple[int, int]]:
    """Line ranges inside a ``try``-with-handlers (calls there are caught)."""
    spans: List[Tuple[int, int]] = []
    for node in walk_own_scope(fi.node):
        if isinstance(node, ast.Try) and node.handlers:
            for stmt in node.body + node.orelse:
                end = getattr(stmt, "end_lineno", None) or stmt.lineno
                spans.append((stmt.lineno, end))
    return spans


class ExceptionEscapeRule(Rule):
    """FLOW-EXC: abort/re-sync path exceptions must be caught or declared.

    The speculative-synchronization recovery path (``request_resync`` /
    ``handle_notify`` / ``_check_resync`` in ``repro.ps.engine`` and
    ``repro.core.scheduler``, plus their call-graph closure inside those
    modules) is the code that runs precisely when the system is already
    in trouble; an exception escaping it silently kills recovery.  Every
    ``raise`` in that closure must be lexically inside a ``try`` with
    handlers (in the raising function, or at the call site the path goes
    through), or named in the function docstring's ``Raises`` section so
    callers know to catch it.
    """

    rule_id = "FLOW-EXC"
    severity = Severity.WARNING
    description = "Undeclared exception can escape the abort/re-sync path."

    @staticmethod
    def _unprotected_closure(
        graph: CallGraph, roots: Sequence[str]
    ) -> Set[str]:
        """Reachable set that never traverses a try-protected call site."""
        spans: Dict[str, List[Tuple[int, int]]] = {}
        seen: Set[str] = set(r for r in roots if r in graph.functions)
        queue = deque(sorted(seen))
        while queue:
            current = queue.popleft()
            caller = graph.functions[current]
            if current not in spans:
                spans[current] = _protected_spans(caller)
            for edge in graph.callees(current):
                if any(lo <= edge.line <= hi for lo, hi in spans[current]):
                    continue
                if edge.callee not in seen:
                    seen.add(edge.callee)
                    queue.append(edge.callee)
        return seen

    def check_project(
        self, modules: Sequence[ModuleInfo]
    ) -> Iterator[Finding]:
        by_name = {m.module: m for m in modules}
        in_scope = [m for m in modules if m.module in _EXC_SCOPE_MODULES]
        if not in_scope:
            return
        graph = build_call_graph(modules)
        roots = [
            fi.qualname
            for fi in graph.functions.values()
            if fi.module in _EXC_SCOPE_MODULES
            and fi.qualname.rpartition(".")[2] in _EXC_ROOT_NAMES
        ]
        closure = {
            q
            for q in self._unprotected_closure(graph, sorted(roots))
            if graph.functions[q].module in _EXC_SCOPE_MODULES
        }
        for qualname in sorted(closure):
            fi = graph.functions[qualname]
            module = by_name.get(fi.module)
            if module is None:
                continue
            declared = _declared_raises(fi.node)
            for raise_node in _uncaught_raises(fi.node):
                name = _raised_name(raise_node)
                if name is not None and name in declared:
                    continue
                root = next(
                    (r for r in sorted(roots) if graph.call_path(r, qualname) is not None),
                    qualname,
                )
                chain = graph.call_path(root, qualname) or []
                flow_path = tuple(e.line for e in chain) + (raise_node.lineno,)
                shown = name or "exception"
                yield self.finding(
                    module,
                    raise_node.lineno,
                    f"{shown} raised in {qualname} can escape the "
                    f"abort/re-sync path (reached from {root}); catch it "
                    f"here or declare it in a docstring 'Raises' section",
                    flow_path=flow_path,
                )


# ----------------------------------------------------------------------
# FLOW-DEAD
# ----------------------------------------------------------------------
def _kind_tested(test: ast.expr) -> Optional[Tuple[str, int]]:
    """``(KIND, line)`` when ``test`` compares something to MessageKind.KIND."""
    if not (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], (ast.Eq, ast.Is))
        and len(test.comparators) == 1
    ):
        return None
    for side in (test.left, test.comparators[0]):
        if isinstance(side, ast.Attribute):
            base = dotted_name(side.value)
            if base is not None and base.split(".")[-1] == "MessageKind":
                return side.attr, test.lineno
    return None


class DeadPathRule(Rule):
    """FLOW-DEAD: unreachable code and dead MessageKind dispatch arms.

    Two halves.  Per module: CFG blocks no path from the function entry
    reaches — code after an unconditional ``return``/``raise``, a branch
    whose test is a constant, a loop that can never be entered.  Per
    project: ``if kind == MessageKind.X`` dispatch ladders where an arm
    repeats an earlier kind (shadowed, can never fire) or tests a kind
    absent from the protocol model's ``MODEL_ALPHABET`` (the model
    checker proves no such message exists).  The alphabet cross-check
    only runs when the alphabet is in the linted batch, so linting a
    subset of the tree cannot false-positive.
    """

    rule_id = "FLOW-DEAD"
    severity = Severity.WARNING
    description = "Unreachable branch or dead MessageKind handler arm."

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for cls, fn in walk_functions(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            qualname = f"{cls.name}.{fn.name}" if cls else fn.name
            cfg = build_cfg(fn, qualname)
            dead = cfg.unreachable_blocks()
            last_id = -2
            for block in dead:
                if block.stmt is None:
                    continue
                if block.block_id == last_id + 1:
                    last_id = block.block_id  # same dead region; one finding
                    continue
                last_id = block.block_id
                yield self.finding(
                    module,
                    block.line,
                    f"unreachable code in {qualname}: no execution path "
                    f"from the function entry reaches this statement",
                )

    def check_project(
        self, modules: Sequence[ModuleInfo]
    ) -> Iterator[Finding]:
        alphabet: Optional[Set[str]] = None
        for module in modules:
            found = ModelAlphabetRule._find_alphabet(module)
            if found is not None:
                entries = found[1]
                alphabet = {
                    e.attr for e in entries if isinstance(e, ast.Attribute)
                }
        for module in modules:
            for _cls, fn in walk_functions(module.tree):
                for node in walk_own_scope(fn):
                    if not isinstance(node, ast.If):
                        continue
                    if self._is_elif_arm(fn, node):
                        continue
                    yield from self._check_ladder(module, node, alphabet)

    @staticmethod
    def _is_elif_arm(fn: ast.AST, node: ast.If) -> bool:
        """Whether ``node`` is the elif of another If (only check ladder heads)."""
        for parent in ast.walk(fn):
            if isinstance(parent, ast.If) and parent.orelse == [node]:
                return True
        return False

    def _check_ladder(
        self,
        module: ModuleInfo,
        head: ast.If,
        alphabet: Optional[Set[str]],
    ) -> Iterator[Finding]:
        seen: Dict[str, int] = {}
        node: Optional[ast.If] = head
        while node is not None:
            tested = _kind_tested(node.test)
            if tested is not None:
                kind, line = tested
                if kind in seen:
                    yield self.finding(
                        module,
                        line,
                        f"dead dispatch arm: MessageKind.{kind} already "
                        f"handled at line {seen[kind]}; this arm can "
                        f"never fire",
                        flow_path=(seen[kind], line),
                    )
                else:
                    seen[kind] = line
                    if alphabet is not None and kind not in alphabet:
                        yield self.finding(
                            module,
                            line,
                            f"dead dispatch arm: MessageKind.{kind} is not "
                            f"in MODEL_ALPHABET — the protocol model "
                            f"admits no such message, so this arm can "
                            f"never fire",
                        )
            if len(node.orelse) == 1 and isinstance(node.orelse[0], ast.If):
                node = node.orelse[0]
            else:
                node = None
