"""Rule packs and the default registry.

Six packs, one per failure class the reproduction cannot afford:

* :mod:`repro.analysis.rules.determinism` — stray wall clocks, global
  RNG, unordered-set iteration, mutable defaults, lying annotations;
* :mod:`repro.analysis.rules.protocol` — message kinds without size
  accounting or handlers, dead wire tags;
* :mod:`repro.analysis.rules.concurrency` — lock-order cycles, daemonless
  threads, un-timed queue blocking, unlocked shared state in
  ``repro.runtime``;
* :mod:`repro.analysis.rules.flow` — flow-sensitive: resources released
  on every CFG path, no blocking calls reachable from async/tap code,
  no undeclared exceptions escaping the re-sync path, no dead branches
  or dispatch arms (built on :mod:`repro.analysis.flow`);
* :mod:`repro.analysis.rules.perf` — profile-guided performance rules
  (allocation/copies/lookups on the measured hot path).  **Opt-in**:
  perf findings are advisory (info severity) until a ``--profile``
  capture proves them hot, so the pack runs via ``--pack perf`` rather
  than in the default gate;
* :mod:`repro.analysis.rules.ownership` — buffer ownership & aliasing
  (BUF-*): in-place mutation of borrowed arrays, views of internal
  state escaping public APIs, caller arrays stored without copy, and
  unfenced shared-memory access — the pack that certifies the
  zero-copy ``repro.ps.shm`` parameter path.  **Opt-in**: it reasons
  about array-typed code only, so CI runs it as a dedicated
  ``--pack ownership`` gate rather than in the default self-lint.

To add a rule: subclass :class:`repro.analysis.engine.Rule`, give it a
unique ``rule_id``, implement ``check_module`` (per-file) or
``check_project`` (cross-file), and register it in :data:`RULE_PACKS`.
See ``docs/static_analysis.md`` for the full walkthrough.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Type

from repro.analysis.engine import Rule
from repro.analysis.rules.concurrency import (
    LockOrderRule,
    QueueTimeoutRule,
    ThreadDaemonRule,
    UnlockedStateRule,
)
from repro.analysis.rules.determinism import (
    GlobalRngRule,
    ImplicitOptionalRule,
    MutableDefaultRule,
    SetIterationRule,
    WallClockRule,
)
from repro.analysis.rules.flow import (
    BlockingReachableRule,
    DeadPathRule,
    ExceptionEscapeRule,
    ReleaseOnAllPathsRule,
)
from repro.analysis.rules.ownership import (
    BufAliasStoreRule,
    BufMutateBorrowedRule,
    BufReturnViewRule,
    BufShmUnfencedRule,
)
from repro.analysis.rules.perf import (
    AllocHotRule,
    AttrLoopRule,
    LogHotRule,
    NumpyCopyRule,
    PicklePayloadRule,
    ScanRule,
)
from repro.analysis.rules.protocol import (
    MessageCategoryRule,
    MessageSizeRule,
    ModelAlphabetRule,
    UnhandledMessageKindRule,
    WireTagRule,
)

__all__ = [
    "default_rules",
    "rules_for",
    "ALL_RULE_CLASSES",
    "DEFAULT_RULE_CLASSES",
    "OPT_IN_PACKS",
    "RULE_PACKS",
]

#: pack name -> rule classes; ``repro lint --pack <name>`` selects one.
RULE_PACKS: Dict[str, Tuple[Type[Rule], ...]] = {
    "determinism": (
        WallClockRule,
        GlobalRngRule,
        SetIterationRule,
        MutableDefaultRule,
        ImplicitOptionalRule,
    ),
    "protocol": (
        MessageCategoryRule,
        UnhandledMessageKindRule,
        MessageSizeRule,
        WireTagRule,
        ModelAlphabetRule,
    ),
    "concurrency": (
        LockOrderRule,
        ThreadDaemonRule,
        QueueTimeoutRule,
        UnlockedStateRule,
    ),
    "flow": (
        ReleaseOnAllPathsRule,
        BlockingReachableRule,
        ExceptionEscapeRule,
        DeadPathRule,
    ),
    "perf": (
        AllocHotRule,
        NumpyCopyRule,
        PicklePayloadRule,
        AttrLoopRule,
        LogHotRule,
        ScanRule,
    ),
    "ownership": (
        BufMutateBorrowedRule,
        BufReturnViewRule,
        BufAliasStoreRule,
        BufShmUnfencedRule,
    ),
}

#: Packs that only run when explicitly selected.  The perf rules are
#: advisory heuristics ranked by measured hot-path data; folding them
#: into the default (self-lint) gate would fail CI on cold-path noise.
#: The ownership rules reason about array aliasing and run as their own
#: CI gate (``--pack ownership --fail-on warning``).
OPT_IN_PACKS: Tuple[str, ...] = ("perf", "ownership")

DEFAULT_RULE_CLASSES: Tuple[Type[Rule], ...] = tuple(
    cls
    for name, pack in RULE_PACKS.items()
    if name not in OPT_IN_PACKS
    for cls in pack
)

#: Every registered rule class, opt-in packs included (``--rule`` ids).
ALL_RULE_CLASSES: Tuple[Type[Rule], ...] = tuple(
    cls for pack in RULE_PACKS.values() for cls in pack
)


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule."""
    return [cls() for cls in DEFAULT_RULE_CLASSES]


def rules_for(
    rule_ids: Optional[Iterable[str]] = None,
    packs: Optional[Iterable[str]] = None,
) -> List[Rule]:
    """Fresh instances of the selected rules.

    ``rule_ids`` selects by exact id (``FLOW-RELEASE``), ``packs`` by
    pack name (``flow``); the two union.  With neither given, every
    registered rule is returned.  Unknown names raise ``ValueError``
    listing the valid choices — a typo must not silently lint nothing.
    """
    wanted_ids = set(rule_ids or ())
    wanted_packs = set(packs or ())
    if not wanted_ids and not wanted_packs:
        return default_rules()

    unknown_packs = wanted_packs - set(RULE_PACKS)
    if unknown_packs:
        raise ValueError(
            f"unknown pack(s) {sorted(unknown_packs)}; "
            f"choose from {sorted(RULE_PACKS)}"
        )
    all_ids = {cls.rule_id for cls in ALL_RULE_CLASSES}
    unknown_ids = wanted_ids - all_ids
    if unknown_ids:
        raise ValueError(
            f"unknown rule id(s) {sorted(unknown_ids)}; "
            f"choose from {sorted(all_ids)}"
        )

    selected: List[Rule] = []
    for pack_name, classes in RULE_PACKS.items():
        for cls in classes:
            if pack_name in wanted_packs or cls.rule_id in wanted_ids:
                selected.append(cls())
    return selected
