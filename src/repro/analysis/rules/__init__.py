"""Rule packs and the default registry.

Three packs, one per failure class the reproduction cannot afford:

* :mod:`repro.analysis.rules.determinism` — stray wall clocks, global
  RNG, unordered-set iteration, mutable defaults, lying annotations;
* :mod:`repro.analysis.rules.protocol` — message kinds without size
  accounting or handlers, dead wire tags;
* :mod:`repro.analysis.rules.concurrency` — lock-order cycles, daemonless
  threads, un-timed queue blocking, unlocked shared state in
  ``repro.runtime``.

To add a rule: subclass :class:`repro.analysis.engine.Rule`, give it a
unique ``rule_id``, implement ``check_module`` (per-file) or
``check_project`` (cross-file), and append it to :func:`default_rules`.
See ``docs/static_analysis.md`` for the full walkthrough.
"""

from __future__ import annotations

from typing import List

from repro.analysis.engine import Rule
from repro.analysis.rules.concurrency import (
    LockOrderRule,
    QueueTimeoutRule,
    ThreadDaemonRule,
    UnlockedStateRule,
)
from repro.analysis.rules.determinism import (
    GlobalRngRule,
    ImplicitOptionalRule,
    MutableDefaultRule,
    SetIterationRule,
    WallClockRule,
)
from repro.analysis.rules.protocol import (
    MessageCategoryRule,
    MessageSizeRule,
    ModelAlphabetRule,
    UnhandledMessageKindRule,
    WireTagRule,
)

__all__ = ["default_rules", "DEFAULT_RULE_CLASSES"]

DEFAULT_RULE_CLASSES = (
    # determinism
    WallClockRule,
    GlobalRngRule,
    SetIterationRule,
    MutableDefaultRule,
    ImplicitOptionalRule,
    # protocol exhaustiveness
    MessageCategoryRule,
    UnhandledMessageKindRule,
    MessageSizeRule,
    WireTagRule,
    ModelAlphabetRule,
    # concurrency (repro.runtime)
    LockOrderRule,
    ThreadDaemonRule,
    QueueTimeoutRule,
    UnlockedStateRule,
)


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule."""
    return [cls() for cls in DEFAULT_RULE_CLASSES]
