"""Determinism rule pack.

Every paper quantity this reproduction reports is a function of the event
timeline (DESIGN.md §2): the virtual clock and the seeded
``repro.utils.rng`` streams are the *only* legitimate sources of time and
randomness inside the simulation path.  One stray ``time.time()`` or
unseeded ``np.random`` call silently decouples results from the seed; one
iteration over an unordered ``set`` reorders events between runs.  These
rules ban those constructs inside the deterministic zone — the packages
listed in :data:`DETERMINISTIC_PACKAGES`.  ``repro.runtime`` is exempt by
design: the threaded/multiprocess backends *intentionally* run on wall
time.

Two rules apply repo-wide rather than zone-only, because they bite
anywhere: mutable default arguments (shared across calls — state leaks
between runs) and ``None`` defaults on non-``Optional`` parameters (the
annotation lies, and strict type checking can never be turned on).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.astutil import (
    dotted_name,
    import_aliases,
    resolve_call_name,
    resolve_name,
)
from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding, Severity

__all__ = [
    "DETERMINISTIC_PACKAGES",
    "WallClockRule",
    "GlobalRngRule",
    "SetIterationRule",
    "MutableDefaultRule",
    "ImplicitOptionalRule",
]

#: Packages whose code must be a pure function of (seed, event timeline).
#: ``repro.runtime`` is deliberately absent — it bridges to wall time.
#: ``repro.obs`` *is* in the zone even though it supports wall-clock
#: traces: the observability layer is clock-agnostic by construction
#: (clocks are injected — ``FunctionClock(time.monotonic)`` is built at
#: the call site in the exempt runtime), so any direct wall read or
#: global-RNG use inside it is a bug these rules should catch.
DETERMINISTIC_PACKAGES = (
    "repro.events",
    "repro.core",
    "repro.sync",
    "repro.ps",
    "repro.netsim",
    "repro.obs",
)

#: Calls that read a wall clock.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Prefixes of module-level (implicitly seeded or globally seeded) RNG APIs.
_GLOBAL_RNG_PREFIXES = ("random.", "numpy.random.")


def in_deterministic_zone(module: ModuleInfo) -> bool:
    """Whether the module lives in a package the zone rules police."""
    return any(
        module.module == pkg or module.module.startswith(pkg + ".")
        for pkg in DETERMINISTIC_PACKAGES
    )


class WallClockRule(Rule):
    """DET-WALLCLOCK: wall-clock reads inside the deterministic zone."""

    rule_id = "DET-WALLCLOCK"
    severity = Severity.ERROR
    description = (
        "Wall-clock call inside the simulation path; use the virtual "
        "clock (Simulator.now / the engine's now_fn) instead."
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not in_deterministic_zone(module):
            return
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call_name(node, aliases)
            if name in _WALL_CLOCK_CALLS:
                yield self.finding(
                    module,
                    node.lineno,
                    f"wall-clock call {name}() in deterministic module "
                    f"{module.module}; paper quantities must be functions "
                    f"of the event timeline",
                )


class GlobalRngRule(Rule):
    """DET-GLOBALRNG: global/unseeded RNG inside the deterministic zone."""

    rule_id = "DET-GLOBALRNG"
    severity = Severity.ERROR
    description = (
        "Module-level random API inside the simulation path; draw from a "
        "named repro.utils.rng.RngStreams generator instead."
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not in_deterministic_zone(module):
            return
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call_name(node, aliases)
            if name is None:
                continue
            if any(name.startswith(p) for p in _GLOBAL_RNG_PREFIXES):
                yield self.finding(
                    module,
                    node.lineno,
                    f"global RNG call {name}() in deterministic module "
                    f"{module.module}; only repro.utils.rng streams are "
                    f"reproducible across runs and worker counts",
                )


def _is_set_expression(node: ast.AST, aliases: dict) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is None:
            return False
        return resolve_name(name, aliases) in ("set", "frozenset")
    return False


class SetIterationRule(Rule):
    """DET-SET-ITER: iterating a set in the deterministic zone.

    Set iteration order depends on insertion history and hash seeding;
    draining a set in a ``for`` loop (or comprehension) makes event order
    run-dependent.  Wrap the set in ``sorted(...)`` to fix the order.
    Also flags sets passed straight into ``list``/``tuple``/``enumerate``
    inside an iteration position, which launders the same hazard.
    """

    rule_id = "DET-SET-ITER"
    severity = Severity.ERROR
    description = (
        "Iteration over an unordered set in the simulation path; wrap in "
        "sorted(...) to pin the order."
    )

    _LAUNDERERS = ("list", "tuple", "enumerate", "reversed")

    def _flag_iter_expr(
        self, module: ModuleInfo, node: ast.AST, aliases: dict
    ) -> Iterator[Finding]:
        if _is_set_expression(node, aliases):
            yield self.finding(
                module,
                node.lineno,
                f"iteration over an unordered set in {module.module}; "
                f"event order must not depend on hash order — use "
                f"sorted(...)",
            )
            return
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and resolve_name(name, aliases) in self._LAUNDERERS:
                for arg in node.args:
                    if _is_set_expression(arg, aliases):
                        yield self.finding(
                            module,
                            arg.lineno,
                            f"unordered set passed to {name}() in an "
                            f"iteration position in {module.module}; use "
                            f"sorted(...)",
                        )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not in_deterministic_zone(module):
            return
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For):
                yield from self._flag_iter_expr(module, node.iter, aliases)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    yield from self._flag_iter_expr(
                        module, generator.iter, aliases
                    )


def _iter_signature_defaults(
    fn: ast.AST,
) -> Iterator[Tuple[ast.arg, Optional[ast.AST]]]:
    """Yield ``(arg, default_or_None)`` for every parameter of ``fn``."""
    args = fn.args
    positional = args.posonlyargs + args.args
    defaults = [None] * (len(positional) - len(args.defaults)) + list(args.defaults)
    for arg, default in zip(positional, defaults):
        yield arg, default
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        yield arg, default


class MutableDefaultRule(Rule):
    """DET-MUTABLE-DEFAULT: list/dict/set default arguments (repo-wide).

    A mutable default is evaluated once at ``def`` time and shared by all
    calls — state silently leaks across runs and across tests, the exact
    failure mode a reproduction cannot afford.
    """

    rule_id = "DET-MUTABLE-DEFAULT"
    severity = Severity.ERROR
    description = "Mutable default argument; use None and create inside."

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for arg, default in _iter_signature_defaults(node):
                if default is None:
                    continue
                if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                    literal = type(default).__name__.lower()
                    yield self.finding(
                        module,
                        default.lineno,
                        f"mutable default ({literal} literal) for parameter "
                        f"{arg.arg!r} of {node.name}(); shared across calls",
                    )
                elif isinstance(default, ast.Call):
                    name = dotted_name(default.func)
                    if name is not None and resolve_name(name, aliases) in (
                        "list",
                        "dict",
                        "set",
                    ):
                        yield self.finding(
                            module,
                            default.lineno,
                            f"mutable default ({name}()) for parameter "
                            f"{arg.arg!r} of {node.name}(); shared across "
                            f"calls",
                        )


def _annotation_allows_none(annotation: ast.AST) -> bool:
    """Whether an annotation admits ``None`` (Optional, | None, Any, ...)."""
    if isinstance(annotation, ast.Constant):
        if annotation.value is None:
            return True
        if isinstance(annotation.value, str):
            text = annotation.value
            return "Optional" in text or "None" in text or text in ("Any", "object")
        return False
    if isinstance(annotation, ast.Subscript):
        base = dotted_name(annotation.value)
        if base is None:
            return False
        tail = base.split(".")[-1]
        if tail == "Optional":
            return True
        if tail == "Union":
            elements = (
                annotation.slice.elts
                if isinstance(annotation.slice, ast.Tuple)
                else [annotation.slice]
            )
            return any(_annotation_allows_none(e) for e in elements)
        return False
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return _annotation_allows_none(annotation.left) or _annotation_allows_none(
            annotation.right
        )
    name = dotted_name(annotation)
    if name is None:
        return False
    return name.split(".")[-1] in ("Any", "object", "None")


class ImplicitOptionalRule(Rule):
    """DET-OPTIONAL-NONE: ``None`` default under a non-Optional annotation.

    Applies repo-wide, to both parameters and annotated assignments
    (``self.engine: "TrainingEngine" = None``).  The annotation must say
    what the value can actually be, or mypy's strict gate on
    ``repro.core``/``repro.events`` is meaningless.
    """

    rule_id = "DET-OPTIONAL-NONE"
    severity = Severity.ERROR
    description = "None default on a non-Optional annotation."

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for arg, default in _iter_signature_defaults(node):
                    if (
                        default is not None
                        and isinstance(default, ast.Constant)
                        and default.value is None
                        and arg.annotation is not None
                        and not _annotation_allows_none(arg.annotation)
                    ):
                        yield self.finding(
                            module,
                            arg.lineno,
                            f"parameter {arg.arg!r} of {node.name}() defaults "
                            f"to None but its annotation is not Optional",
                        )
            elif isinstance(node, ast.AnnAssign):
                if (
                    node.value is not None
                    and isinstance(node.value, ast.Constant)
                    and node.value.value is None
                    and not _annotation_allows_none(node.annotation)
                ):
                    target = dotted_name(node.target) or "<target>"
                    yield self.finding(
                        module,
                        node.lineno,
                        f"{target} is annotated non-Optional but assigned "
                        f"None",
                    )
