"""Concurrency rule pack for ``repro.runtime``.

The threaded and multiprocess backends are the one place this codebase
uses real locks, timers, and queues — and the one place a silent ordering
bug costs a debugging epoch instead of a failed assertion.  These rules
build a *static* picture of that machinery:

* a lock-acquisition-order graph across ``threaded.py`` /
  ``multiprocess.py`` — a cycle means two code paths can acquire the same
  locks in opposite orders, the classic deadlock;
* thread/timer hygiene — a non-daemon thread that is never joined keeps
  the process alive after a test run finishes;
* blocking queue calls without timeouts — a worker blocked forever on a
  dead peer's queue is indistinguishable from a hang;
* shared mutable state (underscore attributes of lock-owning classes)
  touched outside the lock.

All four rules only fire on modules under ``repro.runtime`` — the rest of
the codebase is single-threaded by design and the DES needs none of this.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.astutil import (
    dotted_name,
    import_aliases,
    resolve_call_name,
    resolve_name,
    walk_functions as _walk_functions,
    walk_own_scope,
)
from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.graphs import find_cycles

__all__ = [
    "RUNTIME_PACKAGE",
    "StaticLockGraph",
    "GuardedClass",
    "build_lock_order_graph",
    "guarded_class_state",
    "LockOrderRule",
    "ThreadDaemonRule",
    "QueueTimeoutRule",
    "UnlockedStateRule",
]

RUNTIME_PACKAGE = "repro.runtime"

_LOCK_CONSTRUCTORS = {
    "threading.Lock": False,
    "threading.RLock": True,
    "multiprocessing.Lock": False,
    "multiprocessing.RLock": True,
}


def in_runtime_zone(module: ModuleInfo) -> bool:
    """Whether the module is part of the real-time runtime package."""
    return module.module == RUNTIME_PACKAGE or module.module.startswith(
        RUNTIME_PACKAGE + "."
    )


@dataclass
class GuardedClass:
    """One lock-owning class: its lock attributes and the state they guard."""

    #: lock attribute name -> reentrant?
    lock_attrs: Dict[str, bool] = field(default_factory=dict)
    #: underscore attributes assigned in ``__init__`` (guarded by convention)
    guarded: Set[str] = field(default_factory=set)


@dataclass
class _LockTable:
    """Locks declared in one module, keyed for cross-function lookup."""

    #: class name -> attribute name -> reentrant?
    class_locks: Dict[str, Dict[str, bool]] = field(default_factory=dict)
    #: module-level lock variable name -> reentrant?
    global_locks: Dict[str, bool] = field(default_factory=dict)


def _collect_locks(module: ModuleInfo, aliases: Dict[str, str]) -> _LockTable:
    table = _LockTable()
    for node in module.tree.body:
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            name = resolve_call_name(node.value, aliases)
            if name in _LOCK_CONSTRUCTORS:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        table.global_locks[target.id] = _LOCK_CONSTRUCTORS[name]
        elif isinstance(node, ast.ClassDef):
            attrs: Dict[str, bool] = {}
            for statement in ast.walk(node):
                if not isinstance(statement, ast.Assign):
                    continue
                if not isinstance(statement.value, ast.Call):
                    continue
                ctor = resolve_call_name(statement.value, aliases)
                if ctor not in _LOCK_CONSTRUCTORS:
                    continue
                for target in statement.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs[target.attr] = _LOCK_CONSTRUCTORS[ctor]
            if attrs:
                table.class_locks[node.name] = attrs
    return table


def _lock_for_expr(
    expr: ast.AST,
    module: ModuleInfo,
    class_name: Optional[str],
    table: _LockTable,
) -> Optional[Tuple[str, bool]]:
    """``(lock_qualname, reentrant)`` for a ``with`` context, if a lock."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and class_name is not None
    ):
        attrs = table.class_locks.get(class_name, {})
        if expr.attr in attrs:
            return f"{module.module}.{class_name}.{expr.attr}", attrs[expr.attr]
    elif isinstance(expr, ast.Name) and expr.id in table.global_locks:
        return f"{module.module}.{expr.id}", table.global_locks[expr.id]
    return None


@dataclass
class StaticLockGraph:
    """The statically derived lock-acquisition-order facts.

    ``edges[src][dst]`` holds the first witness ``(module, line)`` where
    ``dst`` is acquired while ``src`` is held; ``self_deadlocks`` lists
    non-reentrant locks re-acquired while already held.  The dynamic
    lock-order oracle diffs its observed graph against this structure.
    """

    edges: Dict[str, Dict[str, Tuple[ModuleInfo, int]]] = field(default_factory=dict)
    self_deadlocks: List[Tuple[str, ModuleInfo, int]] = field(default_factory=list)

    def edge_pairs(self) -> Set[Tuple[str, str]]:
        """The ``(src, dst)`` pairs, without witnesses."""
        return {(src, dst) for src, dsts in self.edges.items() for dst in dsts}


def build_lock_order_graph(modules: Sequence[ModuleInfo]) -> StaticLockGraph:
    """Build the static lock-acquisition-order graph over ``modules``.

    Edges ``A -> B`` are added whenever lock B is acquired while A is
    held — directly through nested ``with`` blocks, or one call deep
    through ``self.method()`` / module-function calls made under a lock.
    Lock names are fully qualified (``module.Class.attr`` / ``module.var``)
    and match the names the runtime tracer infers, so the two graphs are
    directly comparable.
    """
    graph = StaticLockGraph()
    direct: Dict[Tuple[str, Optional[str], str], Set[str]] = {}
    deferred_calls: List[
        Tuple[List[str], Tuple[str, Optional[str], str], ModuleInfo, int]
    ] = []

    def add_edge(src: str, dst: str, module: ModuleInfo, line: int) -> None:
        graph.edges.setdefault(src, {}).setdefault(dst, (module, line))

    for module in modules:
        aliases = import_aliases(module.tree)
        table = _collect_locks(module, aliases)

        def walk(
            node: ast.AST,
            held: List[str],
            class_name: Optional[str],
            fn_key: Tuple[str, Optional[str], str],
            module: ModuleInfo = module,
            table: _LockTable = table,
        ) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
                ):
                    continue  # separate execution context
                if isinstance(child, ast.With):
                    acquired: List[str] = []
                    for item in child.items:
                        info = _lock_for_expr(
                            item.context_expr, module, class_name, table
                        )
                        if info is None:
                            continue
                        lock, reentrant = info
                        if lock in held and not reentrant:
                            graph.self_deadlocks.append(
                                (lock, module, child.lineno)
                            )
                        for holder in held:
                            if holder != lock:
                                add_edge(holder, lock, module, child.lineno)
                        acquired.append(lock)
                        direct.setdefault(fn_key, set()).add(lock)
                    walk(child, held + acquired, class_name, fn_key)
                    continue
                if isinstance(child, ast.Call) and held:
                    callee: Optional[Tuple[str, Optional[str], str]] = None
                    func = child.func
                    if (
                        isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "self"
                    ):
                        callee = (module.module, class_name, func.attr)
                    elif isinstance(func, ast.Name):
                        callee = (module.module, None, func.id)
                    if callee is not None:
                        deferred_calls.append(
                            (list(held), callee, module, child.lineno)
                        )
                walk(child, held, class_name, fn_key)

        for class_def, fn in _walk_functions(module.tree):
            class_name = class_def.name if class_def is not None else None
            fn_key = (module.module, class_name, fn.name)
            direct.setdefault(fn_key, set())
            walk(fn, [], class_name, fn_key)

    # One call level deep: locks the callee takes while the caller
    # holds its own.
    for held, callee, module, line in deferred_calls:
        for lock in direct.get(callee, ()):
            for holder in held:
                if holder != lock:
                    add_edge(holder, lock, module, line)

    return graph


class LockOrderRule(Rule):
    """CONC-LOCK-ORDER: cyclic lock-acquisition order across the runtime.

    Runs :func:`build_lock_order_graph` over the runtime modules and
    reports any cycle (including a non-reentrant lock acquired while
    already held) as a potential deadlock.
    """

    rule_id = "CONC-LOCK-ORDER"
    severity = Severity.ERROR
    description = "Lock-acquisition-order cycle (potential deadlock)."

    def check_project(
        self, modules: Sequence[ModuleInfo]
    ) -> Iterator[Finding]:
        runtime_modules = [m for m in modules if in_runtime_zone(m)]
        if not runtime_modules:
            return

        graph = build_lock_order_graph(runtime_modules)

        for lock, module, line in graph.self_deadlocks:
            yield self.finding(
                module,
                line,
                f"non-reentrant lock {lock} acquired while already held "
                f"(guaranteed self-deadlock); use RLock or restructure",
            )

        for cycle in find_cycles(graph.edges):
            first, second = cycle[0], cycle[1 % len(cycle)]
            module, line = graph.edges[first][second]
            chain = " -> ".join(cycle + (cycle[0],))
            yield self.finding(
                module,
                line,
                f"lock-order cycle {chain}; two paths can acquire these "
                f"locks in opposite orders and deadlock",
            )


def guarded_class_state(module: ModuleInfo) -> Dict[str, GuardedClass]:
    """Lock-owning classes in ``module`` and the state their lock guards.

    Returns ``{class name: (lock attrs, guarded attrs)}`` using exactly
    the convention the ``CONC-UNLOCKED-STATE`` rule enforces: every
    underscore attribute a lock-owning class assigns in ``__init__`` is
    guarded by its lock.  The dynamic lockset race detector instruments
    precisely these fields, so the static and runtime checks agree on
    what "guarded" means.
    """
    aliases = import_aliases(module.tree)
    table = _collect_locks(module, aliases)
    result: Dict[str, GuardedClass] = {}
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        lock_attrs = table.class_locks.get(node.name)
        if not lock_attrs:
            continue
        guarded = UnlockedStateRule._guarded_attrs(node, lock_attrs)
        if guarded:
            result[node.name] = GuardedClass(
                lock_attrs=dict(lock_attrs), guarded=set(guarded)
            )
    return result


class ThreadDaemonRule(Rule):
    """CONC-THREAD-DAEMON: threads/timers that can outlive the run.

    A ``threading.Thread`` or ``threading.Timer`` must either be created
    with ``daemon=``, have ``.daemon`` assigned before start, or be
    joined in the same function — otherwise a stuck worker keeps the
    whole process (and the test suite) alive forever.  Thread subclasses
    must pass ``daemon=`` through ``super().__init__``.
    """

    rule_id = "CONC-THREAD-DAEMON"
    severity = Severity.ERROR
    description = "Thread/Timer without daemon= and without a join."

    _THREAD_CTORS = ("threading.Thread", "threading.Timer")

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not in_runtime_zone(module):
            return
        aliases = import_aliases(module.tree)
        for class_def, fn in _walk_functions(module.tree):
            assigns_daemon = False
            joins = False
            for node in walk_own_scope(fn):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Attribute) and target.attr == "daemon":
                            assigns_daemon = True
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    if node.func.attr == "join":
                        joins = True
            for node in walk_own_scope(fn):
                if not isinstance(node, ast.Call):
                    continue
                name = resolve_call_name(node, aliases)
                if name in self._THREAD_CTORS:
                    has_daemon_kw = any(kw.arg == "daemon" for kw in node.keywords)
                    if not has_daemon_kw and not assigns_daemon and not joins:
                        yield self.finding(
                            module,
                            node.lineno,
                            f"{name}(...) created without daemon= and never "
                            f"joined in {fn.name}(); a stuck thread would "
                            f"hang process exit",
                        )
        yield from self._check_thread_subclasses(module, aliases)

    def _check_thread_subclasses(
        self, module: ModuleInfo, aliases: Dict[str, str]
    ) -> Iterator[Finding]:
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            is_thread = any(
                (base_name := dotted_name(base)) is not None
                and resolve_name(base_name, aliases) == "threading.Thread"
                for base in node.bases
            )
            if not is_thread:
                continue
            for statement in node.body:
                if (
                    isinstance(statement, ast.FunctionDef)
                    and statement.name == "__init__"
                ):
                    ok = False
                    for call in ast.walk(statement):
                        if (
                            isinstance(call, ast.Call)
                            and isinstance(call.func, ast.Attribute)
                            and call.func.attr == "__init__"
                            and any(kw.arg == "daemon" for kw in call.keywords)
                        ):
                            ok = True
                        if isinstance(call, ast.Assign):
                            for target in call.targets:
                                if (
                                    isinstance(target, ast.Attribute)
                                    and target.attr == "daemon"
                                ):
                                    ok = True
                    if not ok:
                        yield self.finding(
                            module,
                            statement.lineno,
                            f"Thread subclass {node.name} does not pass "
                            f"daemon= to super().__init__ (nor assign "
                            f".daemon); instances default to non-daemon",
                        )


class QueueTimeoutRule(Rule):
    """CONC-QUEUE-TIMEOUT: blocking queue calls with no way out.

    ``get()``/``put()`` on anything queue-named must pass ``timeout=`` or
    ``block=False`` (or use the ``_nowait`` variants).  Exception: ``put``
    on a queue constructed unbounded (``Queue()`` with no maxsize) in the
    same function never blocks, so it is exempt.  Queues received as
    parameters have unknown boundedness — an unbounded-by-construction
    put through a parameter deserves a suppression with a justification
    rather than silence.
    """

    rule_id = "CONC-QUEUE-TIMEOUT"
    severity = Severity.WARNING
    description = "Blocking Queue.get/put without timeout or block=False."

    @staticmethod
    def _queue_base_name(func: ast.Attribute) -> Optional[str]:
        value = func.value
        if isinstance(value, ast.Subscript):
            value = value.value
        name = dotted_name(value)
        if name is None:
            return None
        base = name.split(".")[-1]
        return base if "queue" in base.lower() else None

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not in_runtime_zone(module):
            return
        for _class_def, fn in _walk_functions(module.tree):
            unbounded: Set[str] = set()
            for node in walk_own_scope(fn):
                if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                    ctor = dotted_name(node.value.func)
                    if (
                        ctor is not None
                        and ctor.split(".")[-1] == "Queue"
                        and not node.value.args
                        and not any(kw.arg == "maxsize" for kw in node.value.keywords)
                    ):
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                unbounded.add(target.id)
            for node in walk_own_scope(fn):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("get", "put")
                ):
                    continue
                base = self._queue_base_name(node.func)
                if base is None:
                    continue
                has_timeout = any(kw.arg == "timeout" for kw in node.keywords)
                non_blocking = any(
                    kw.arg == "block"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is False
                    for kw in node.keywords
                )
                if has_timeout or non_blocking:
                    continue
                if node.func.attr == "put" and base in unbounded:
                    continue
                yield self.finding(
                    module,
                    node.lineno,
                    f"blocking {base}.{node.func.attr}() without timeout= in "
                    f"{fn.name}(); a dead peer turns this into a silent hang",
                )


class UnlockedStateRule(Rule):
    """CONC-UNLOCKED-STATE: guarded attributes touched outside the lock.

    For classes that own a lock, the convention is that every underscore
    attribute assigned in ``__init__`` is guarded by it.  Reading or
    writing such an attribute in any other method outside a ``with
    self.<lock>`` block is a data race (or at best a dirty read).
    """

    rule_id = "CONC-UNLOCKED-STATE"
    severity = Severity.WARNING
    description = "Lock-owning class touches guarded state outside the lock."

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not in_runtime_zone(module):
            return
        aliases = import_aliases(module.tree)
        table = _collect_locks(module, aliases)
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            lock_attrs = table.class_locks.get(node.name)
            if not lock_attrs:
                continue
            guarded = self._guarded_attrs(node, lock_attrs)
            if not guarded:
                continue
            for statement in node.body:
                if (
                    isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and statement.name != "__init__"
                ):
                    yield from self._check_method(
                        module, node.name, statement, lock_attrs, guarded
                    )

    @staticmethod
    def _guarded_attrs(
        class_def: ast.ClassDef, lock_attrs: Dict[str, bool]
    ) -> Set[str]:
        guarded: Set[str] = set()
        for statement in class_def.body:
            if (
                isinstance(statement, ast.FunctionDef)
                and statement.name == "__init__"
            ):
                for node in ast.walk(statement):
                    if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                        targets = (
                            node.targets
                            if isinstance(node, ast.Assign)
                            else [node.target]
                        )
                        for target in targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                                and target.attr.startswith("_")
                                and not target.attr.startswith("__")
                                and target.attr not in lock_attrs
                            ):
                                guarded.add(target.attr)
        return guarded

    def _check_method(
        self,
        module: ModuleInfo,
        class_name: str,
        method: ast.AST,
        lock_attrs: Dict[str, bool],
        guarded: Set[str],
    ) -> Iterator[Finding]:
        reported: Set[str] = set()

        def is_lock_with(stmt: ast.With) -> bool:
            for item in stmt.items:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                    and expr.attr in lock_attrs
                ):
                    return True
            return False

        def walk(node: ast.AST, locked: bool) -> Iterator[Finding]:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
                ):
                    continue  # deferred execution: treated separately
                if isinstance(child, ast.With):
                    yield from walk(child, locked or is_lock_with(child))
                    continue
                if (
                    not locked
                    and isinstance(child, ast.Attribute)
                    and isinstance(child.value, ast.Name)
                    and child.value.id == "self"
                    and child.attr in guarded
                    and child.attr not in reported
                ):
                    reported.add(child.attr)
                    yield self.finding(
                        module,
                        child.lineno,
                        f"{class_name}.{method.name}() touches guarded "
                        f"attribute self.{child.attr} outside the lock",
                    )
                yield from walk(child, locked)

        yield from walk(method, locked=False)
