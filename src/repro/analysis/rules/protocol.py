"""Protocol exhaustiveness rule pack.

The SpecSync wire protocol lives in three places that must stay in sync:

* ``repro.netsim.messages.MessageKind`` — every kind carries a transfer
  category so the Fig. 13 byte accounting stays complete;
* the engine/scheduler code that constructs and handles each kind — a
  kind nobody sends or handles is dead protocol surface (or, worse, a new
  message someone forgot to wire up);
* the ``repro.runtime.multiprocess`` string-tagged queue protocol — the
  server's dispatch loop raises at runtime on an unknown tag, so a tag
  sent but not handled is a guaranteed crash that only a long soak run
  would find;
* the formal protocol model's transition alphabet
  (``repro.analysis.model.specsync.MODEL_ALPHABET``) — a message kind the
  model does not cover is a protocol surface the model checker silently
  never verifies.

These rules cross-check all four statically, so adding a message type
without a size category, a handler, or a model transition fails lint
instead of an experiment.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.astutil import dotted_name
from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding, Severity

__all__ = [
    "MessageCategoryRule",
    "UnhandledMessageKindRule",
    "MessageSizeRule",
    "WireTagRule",
    "ModelAlphabetRule",
]

#: The Fig. 13 transfer-accounting buckets.
VALID_CATEGORIES = ("pull", "push", "control")


def _message_kind_members(
    class_def: ast.ClassDef,
) -> List[Tuple[str, int, Optional[ast.AST]]]:
    """``(member_name, lineno, value)`` for each enum-member assignment."""
    members = []
    for statement in class_def.body:
        if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
            target = statement.targets[0]
            if isinstance(target, ast.Name) and not target.id.startswith("_"):
                members.append((target.id, statement.lineno, statement.value))
    return members


def _find_message_kind(module: ModuleInfo) -> Optional[ast.ClassDef]:
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "MessageKind":
            return node
    return None


class MessageCategoryRule(Rule):
    """PROTO-CATEGORY: every MessageKind member needs a valid category.

    Members must be ``(wire_name, category)`` tuples with the category in
    :data:`VALID_CATEGORIES` — otherwise the transfer ledger would file
    the kind's bytes under an unknown bucket (or not at all) and the
    Fig. 12/13 accounting silently loses traffic.
    """

    rule_id = "PROTO-CATEGORY"
    severity = Severity.ERROR
    description = (
        "MessageKind member without a (wire_name, category) tuple in the "
        "pull/push/control buckets."
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        class_def = _find_message_kind(module)
        if class_def is None:
            return
        for name, lineno, value in _message_kind_members(class_def):
            if not isinstance(value, ast.Tuple) or len(value.elts) != 2:
                yield self.finding(
                    module,
                    lineno,
                    f"MessageKind.{name} must be a (wire_name, category) "
                    f"2-tuple so its bytes are accounted",
                )
                continue
            category = value.elts[1]
            if (
                not isinstance(category, ast.Constant)
                or category.value not in VALID_CATEGORIES
            ):
                got = (
                    repr(category.value)
                    if isinstance(category, ast.Constant)
                    else "a non-literal"
                )
                yield self.finding(
                    module,
                    lineno,
                    f"MessageKind.{name} category is {got}; must be one of "
                    f"{'/'.join(VALID_CATEGORIES)} (Fig. 13 buckets)",
                )


class UnhandledMessageKindRule(Rule):
    """PROTO-UNHANDLED: a MessageKind no code ever references.

    Every kind must appear as ``MessageKind.<NAME>`` somewhere outside its
    definition — the send site or the handler.  A kind with no reference
    is either dead protocol surface or a message that cannot be produced
    or consumed.
    """

    rule_id = "PROTO-UNHANDLED"
    severity = Severity.ERROR
    description = "MessageKind member never sent or handled anywhere."

    def check_project(
        self, modules: Sequence[ModuleInfo]
    ) -> Iterator[Finding]:
        used: Set[str] = set()
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Attribute):
                    base = dotted_name(node.value)
                    if base is not None and base.split(".")[-1] == "MessageKind":
                        used.add(node.attr)
        for module in modules:
            class_def = _find_message_kind(module)
            if class_def is None:
                continue
            for name, lineno, _value in _message_kind_members(class_def):
                if name not in used:
                    yield self.finding(
                        module,
                        lineno,
                        f"MessageKind.{name} is defined but never sent or "
                        f"handled by any module",
                    )


class MessageSizeRule(Rule):
    """PROTO-SIZE: every Message construction must state its wire size.

    ``Message(...)`` without ``size_bytes`` would default nothing — the
    dataclass requires it — but a refactor that adds a default would make
    unaccounted zero-byte traffic invisible.  Requiring the keyword (or a
    full positional form) at every call site keeps byte accounting
    explicit and lintable.
    """

    rule_id = "PROTO-SIZE"
    severity = Severity.ERROR
    description = "Message(...) constructed without an explicit size_bytes."

    #: kind, src, dst, size_bytes — the positional prefix of Message.
    _POSITIONAL_SIZE_INDEX = 4

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or name.split(".")[-1] != "Message":
                continue
            has_size = len(node.args) >= self._POSITIONAL_SIZE_INDEX or any(
                kw.arg == "size_bytes" for kw in node.keywords
            )
            if not has_size:
                yield self.finding(
                    module,
                    node.lineno,
                    "Message(...) without an explicit size_bytes; every "
                    "wire message must be byte-accounted",
                )


class WireTagRule(Rule):
    """PROTO-WIRE-TAG: request-queue tags the server loop never dispatches.

    The multiprocess backend speaks a string-tagged tuple protocol over
    ``request_queue``; the server's loop compares the tag against known
    strings and raises on anything else.  This rule collects every tag
    pushed onto a ``*request*`` queue and every string the module compares
    a variable against, and flags sent-but-never-compared tags.
    """

    rule_id = "PROTO-WIRE-TAG"
    severity = Severity.ERROR
    description = "Queue message tag sent but not handled by any dispatch."

    @staticmethod
    def _receiver_base_name(func: ast.AST) -> Optional[str]:
        if not isinstance(func, ast.Attribute):
            return None
        value = func.value
        if isinstance(value, ast.Subscript):
            value = value.value
        name = dotted_name(value)
        return name.split(".")[-1] if name else None

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        sent: Dict[str, int] = {}
        handled: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in ("put", "put_nowait") and node.args:
                    base = self._receiver_base_name(node.func)
                    if base is not None and "request" in base.lower():
                        payload = node.args[0]
                        if (
                            isinstance(payload, ast.Tuple)
                            and payload.elts
                            and isinstance(payload.elts[0], ast.Constant)
                            and isinstance(payload.elts[0].value, str)
                        ):
                            tag = payload.elts[0].value
                            sent.setdefault(tag, node.lineno)
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                for operand in operands:
                    if isinstance(operand, ast.Constant) and isinstance(
                        operand.value, str
                    ):
                        handled.add(operand.value)
        for tag in sorted(sent):
            if tag not in handled:
                yield self.finding(
                    module,
                    sent[tag],
                    f"wire tag {tag!r} is put on a request queue but no "
                    f"dispatch in {module.module} compares against it; the "
                    f"server loop will raise at runtime",
                )


class ModelAlphabetRule(Rule):
    """PROTO-MODEL-ALPHABET: the model's alphabet must mirror MessageKind.

    The explicit-state protocol model declares its transition alphabet as
    ``MODEL_ALPHABET``, a tuple of ``MessageKind.<NAME>`` references.
    This rule cross-checks the tuple against the enum in both directions:
    an enum member missing from the alphabet is a message the model
    checker never verifies, and an alphabet entry without a matching enum
    member is a transition the real protocol cannot take.  Both halves
    must be in the linted batch for the check to run (linting a subset
    of the tree must not false-positive).
    """

    rule_id = "PROTO-MODEL-ALPHABET"
    severity = Severity.ERROR
    description = (
        "Protocol-model alphabet out of sync with the MessageKind enum."
    )

    @staticmethod
    def _find_alphabet(
        module: ModuleInfo,
    ) -> Optional[Tuple[int, List[ast.expr]]]:
        """``(lineno, entries)`` of the MODEL_ALPHABET assignment, if any."""
        for node in module.tree.body:
            if isinstance(node, ast.AnnAssign):
                target: Optional[ast.expr] = node.target
                value = node.value
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                value = node.value
            else:
                continue
            if (
                not isinstance(target, ast.Name)
                or target.id != "MODEL_ALPHABET"
                or value is None
            ):
                continue
            if isinstance(value, ast.Tuple):
                return node.lineno, list(value.elts)
            return node.lineno, []
        return None

    def check_project(self, modules: Sequence[ModuleInfo]) -> Iterator[Finding]:
        alphabet: Optional[Tuple[ModuleInfo, int, List[ast.expr]]] = None
        enum_members: Optional[Set[str]] = None
        for module in modules:
            found = self._find_alphabet(module)
            if found is not None:
                alphabet = (module, found[0], found[1])
            class_def = _find_message_kind(module)
            if class_def is not None:
                enum_members = {
                    name for name, _lineno, _value in _message_kind_members(class_def)
                }
        if alphabet is None or enum_members is None:
            return
        module, lineno, entries = alphabet
        covered: Set[str] = set()
        for entry in entries:
            base = dotted_name(entry.value) if isinstance(entry, ast.Attribute) else None
            if (
                isinstance(entry, ast.Attribute)
                and base is not None
                and base.split(".")[-1] == "MessageKind"
            ):
                if entry.attr not in enum_members:
                    yield self.finding(
                        module,
                        entry.lineno,
                        f"MODEL_ALPHABET lists MessageKind.{entry.attr}, "
                        f"which is not a member of the MessageKind enum",
                    )
                else:
                    covered.add(entry.attr)
            else:
                yield self.finding(
                    module,
                    getattr(entry, "lineno", lineno),
                    "MODEL_ALPHABET entries must be direct "
                    "MessageKind.<NAME> references so the alphabet is "
                    "statically checkable",
                )
        for name in sorted(enum_members - covered):
            yield self.finding(
                module,
                lineno,
                f"MessageKind.{name} is missing from MODEL_ALPHABET — the "
                f"protocol model never verifies transitions for it",
            )
