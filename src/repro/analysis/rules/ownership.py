"""BUF-*: buffer ownership & aliasing rules over the ownership analysis.

The zero-copy shared-memory parameter path (``repro.ps.shm``) is only
correct if three invariants hold everywhere arrays flow: nobody mutates
an array they merely borrowed, public APIs never hand out views of
internal state, and raw shared-segment buffers are touched only inside a
version fence.  These rules check exactly that, driven by the
interprocedural facts :class:`repro.analysis.ownership.OwnershipAnalysis`
computes (see that module for the abstract domain):

``BUF-MUT-BORROWED`` (warning)
    in-place mutation (``+=``, ``x[...] =``, ``out=``, ``.fill()``...)
    through a variable that may alias a caller's argument.  Functions
    whose docstring declares the in-place contract ("in place",
    "mutates") are exempt — the mutation *is* the documented API.
``BUF-RETURN-VIEW`` (warning)
    a public function returning a view of ``self`` internals, with the
    alias-introducing line as the finding's witness path.  Docstrings
    that advertise the view ("live view", "alias") are exempt.
``BUF-ALIAS-STORE`` (warning)
    storing a caller's array into ``self``-rooted state without a copy —
    the invariant ``KVStore.init`` documents; the caller's later writes
    would silently corrupt the store.
``BUF-SHM-UNFENCED`` (error)
    a raw shared-memory buffer (``segment.array`` / ``shm.buf``) read or
    written outside a ``read_fence()``/``write_fence()`` block.  Torn
    snapshots are a correctness bug, not a style issue, hence the
    severity.  ``repro.ps.shm`` itself — the fence implementation — is
    exempt.

All four are project rules: they share one :class:`OwnershipAnalysis`
per lint batch through a one-slot cache, the same idiom as the perf
pack's project index.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.ownership import (
    FunctionOwnership,
    OwnershipAnalysis,
    param_name,
    self_attr,
)

__all__ = [
    "BufMutateBorrowedRule",
    "BufReturnViewRule",
    "BufAliasStoreRule",
    "BufShmUnfencedRule",
]

#: docstrings that declare an in-place mutation contract.
_INPLACE_DOC_RE = re.compile(r"in[- ]?place|mutat", re.IGNORECASE)

#: docstrings that advertise returning a view/alias of internal state.
_VIEW_DOC_RE = re.compile(r"\bview\b|\balias", re.IGNORECASE)

#: One-slot cache: the engine hands every rule the same batch object, so
#: the four BUF rules share one call graph + dataflow fixpoint.
_ANALYSIS_CACHE: List[Tuple[Tuple[Tuple[str, int], ...], OwnershipAnalysis]] = []


def _ownership(modules: Sequence[ModuleInfo]) -> OwnershipAnalysis:
    key = tuple((m.path, hash(m.source)) for m in modules)
    if _ANALYSIS_CACHE and _ANALYSIS_CACHE[0][0] == key:
        return _ANALYSIS_CACHE[0][1]
    analysis = OwnershipAnalysis(modules)
    _ANALYSIS_CACHE.clear()
    _ANALYSIS_CACHE.append((key, analysis))
    return analysis


class _OwnershipRule(Rule):
    """Shared plumbing: run the batch analysis, dispatch per function."""

    def check_project(self, modules: Sequence[ModuleInfo]) -> Iterator[Finding]:
        analysis = _ownership(modules)
        by_module: Dict[str, ModuleInfo] = {m.module: m for m in modules}
        for qualname in sorted(analysis.results):
            result = analysis.results[qualname]
            module = by_module.get(result.module)
            if module is None:  # pragma: no cover - results come from modules
                continue
            yield from self.check_function(module, result)

    def check_function(
        self, module: ModuleInfo, fn: FunctionOwnership
    ) -> Iterator[Finding]:
        raise NotImplementedError


def _origins_text(origins: frozenset, prefix_fmt: str) -> str:
    names = sorted(
        param_name(o) if o.startswith("param:") else self_attr(o) for o in origins
    )
    return prefix_fmt.format(", ".join(f"'{n}'" for n in names))


class BufMutateBorrowedRule(_OwnershipRule):
    rule_id = "BUF-MUT-BORROWED"
    severity = Severity.WARNING
    description = (
        "in-place mutation of an array the function does not own "
        "(borrowed from a caller's argument)"
    )

    def check_function(
        self, module: ModuleInfo, fn: FunctionOwnership
    ) -> Iterator[Finding]:
        if _INPLACE_DOC_RE.search(fn.docstring):
            return  # documented in-place contract
        for site in fn.mutations:
            params = _origins_text(site.origins, "parameter(s) {}")
            yield self.finding(
                module,
                site.line,
                f"{fn.name}() mutates '{site.target}' in place ({site.kind}), "
                f"but it may alias {params} the caller still owns; "
                f".copy() before mutating, or document the in-place "
                f"contract in the docstring",
            )


class BufReturnViewRule(_OwnershipRule):
    rule_id = "BUF-RETURN-VIEW"
    severity = Severity.WARNING
    description = (
        "public function returns a view aliasing internal (self) state"
    )

    def check_function(
        self, module: ModuleInfo, fn: FunctionOwnership
    ) -> Iterator[Finding]:
        if not fn.is_public:
            return
        if _VIEW_DOC_RE.search(fn.docstring):
            return  # the view is the documented API
        for site in fn.returns:
            internals = frozenset(o for o in site.origins if o.startswith("self:"))
            if not internals:
                continue
            attrs = _origins_text(internals, "internal state {}")
            flow_path: Tuple[int, ...] = ()
            if site.intro_line is not None and site.intro_line != site.line:
                flow_path = (site.intro_line, site.line)
            yield self.finding(
                module,
                site.line,
                f"public {fn.name}() returns a view of {attrs}; a caller "
                f"mutating the result corrupts the object — return a .copy() "
                f"or document the view contract",
                flow_path=flow_path,
            )


class BufAliasStoreRule(_OwnershipRule):
    rule_id = "BUF-ALIAS-STORE"
    severity = Severity.WARNING
    description = (
        "caller's array stored into self-rooted state without a copy"
    )

    def check_function(
        self, module: ModuleInfo, fn: FunctionOwnership
    ) -> Iterator[Finding]:
        for site in fn.stores:
            params = _origins_text(site.origins, "parameter(s) {}")
            yield self.finding(
                module,
                site.line,
                f"{fn.name}() stores {params} into '{site.target}' without "
                f"copying; the store now aliases caller memory and the "
                f"caller's later writes corrupt it — np.array(value, "
                f"copy=True) first (the KVStore.init invariant)",
            )


class BufShmUnfencedRule(_OwnershipRule):
    rule_id = "BUF-SHM-UNFENCED"
    severity = Severity.ERROR
    description = (
        "raw shared-memory buffer access outside a version fence"
    )

    def check_function(
        self, module: ModuleInfo, fn: FunctionOwnership
    ) -> Iterator[Finding]:
        seen: set = set()
        for site in fn.shm_accesses:
            if site.line in seen:
                continue  # dataflow + lexical passes both saw this line
            seen.add(site.line)
            how = (
                "touches the raw shared buffer"
                if site.kind == "raw"
                else "mutates a view of a shared buffer"
            )
            yield self.finding(
                module,
                site.line,
                f"{fn.name}() {how} '{site.expr}' outside a read_fence()/"
                f"write_fence() block; concurrent writers make unfenced "
                f"access a torn read/write — wrap it in the owning store's "
                f"fence",
            )
