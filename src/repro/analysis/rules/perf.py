"""Profile-guided performance rules (``PERF-*``).

Six heuristic rules over the allocation/copy/lookup patterns that
dominate this codebase's hot paths (ROADMAP: "make the hot paths
actually fast").  Heuristics over-approximate by design, so every rule
reports at **info** severity — advisory, visible, but below the default
``--fail-on warning`` gate.  Supplying measured hot-path data
(``repro lint --pack perf --profile TRACE.json``) escalates findings
whose enclosing function is transitively reachable from a
``sim.dispatch.*`` hot root to **warning**: CI blocks only on findings
that provably sit on the measured hot path.  The one exception is
``PERF-PICKLE-PAYLOAD``, which starts at warning — an ndarray pickled
through a process boundary is a wire-path cost whether or not a DES
profile saw it.

Loop structure comes from the CFG's back-edges
(:func:`repro.analysis.perfmodel.natural_loops`), not from syntactic
nesting, and hot-root reachability from the interprocedural call graph
(:mod:`repro.analysis.flow.callgraph`).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.astutil import (
    dotted_name,
    import_aliases,
    resolve_call_name,
    walk_functions,
    walk_own_scope,
)
from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.flow.callgraph import CallGraph, build_call_graph
from repro.analysis.flow.cfg import FunctionNode, build_cfg
from repro.analysis.perfmodel import (
    HotnessModel,
    Loop,
    LoopIndex,
    hot_call_edges,
    natural_loops,
)

__all__ = [
    "PerfRule",
    "AllocHotRule",
    "NumpyCopyRule",
    "PicklePayloadRule",
    "AttrLoopRule",
    "LogHotRule",
    "ScanRule",
]

#: Names that very likely bind ndarrays on the wire paths this repo has
#: (gradients, parameter sets, weight matrices).
_ARRAYISH_RE = re.compile(
    r"(^|_)(grad|gradient|param|params|weights?|tensor|array|snapshot|vec)s?($|_)",
    re.IGNORECASE,
)

#: Index-variable names that signal fancy (gather) indexing rather than a
#: plain dict/list element lookup.
_INDEXISH_RE = re.compile(r"(^|_)(ids?|idx|indices|index|rows?|cols?|mask)($|_)")

_LOG_METHODS = (
    "debug", "info", "warning", "warn", "error", "exception", "critical", "log",
)

_BUILTIN_CONTAINERS = ("list", "dict", "set", "tuple")


class _ProjectIndex:
    """Shared per-batch facts: call graph, qualnames, loops per function."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.graph: CallGraph = build_call_graph(modules)
        #: hotness-only edge overlay (lambda bodies, inferred attribute
        #: types, subclass overrides) — see perfmodel.hot_call_edges.
        self.hot_edges: Dict[str, Set[str]] = hot_call_edges(self.graph, modules)
        #: keyed by (module, name, lineno), not node identity: the batch
        #: cache can outlive one parse of the same sources, and a re-parse
        #: produces equal functions at new node ids.
        self.qualnames: Dict[Tuple[str, str, int], str] = {
            (info.module, info.node.name, info.line): info.qualname
            for info in self.graph.functions.values()
        }
        self._loops: Dict[int, LoopIndex] = {}

    def loop_index(self, fn: FunctionNode) -> LoopIndex:
        cached = self._loops.get(id(fn))
        if cached is None:
            cached = LoopIndex(natural_loops(build_cfg(fn)))
            self._loops[id(fn)] = cached
        return cached


#: One-slot cache: the engine hands every rule the same batch object, so
#: the six perf rules share one call graph and one CFG per function.
_INDEX_CACHE: List[Tuple[Tuple[Tuple[str, int], ...], _ProjectIndex]] = []


def _project_index(modules: Sequence[ModuleInfo]) -> _ProjectIndex:
    key = tuple((m.path, hash(m.source)) for m in modules)
    if _INDEX_CACHE and _INDEX_CACHE[0][0] == key:
        return _INDEX_CACHE[0][1]
    index = _ProjectIndex(modules)
    _INDEX_CACHE.clear()
    _INDEX_CACHE.append((key, index))
    return index


def _comprehension_nodes(fn: FunctionNode) -> Set[int]:
    """ids of AST nodes evaluated once per comprehension iteration."""
    inside: Set[int] = set()
    for node in walk_own_scope(fn):
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for sub in ast.walk(node):
                if sub is not node:
                    inside.add(id(sub))
    return inside


def _call_receiver_name(call: ast.Call) -> Optional[str]:
    """Dotted name of a method call's receiver, seeing through one
    subscript (``queues[i].put`` → ``queues``)."""
    if not isinstance(call.func, ast.Attribute):
        return None
    receiver = call.func.value
    if isinstance(receiver, ast.Subscript):
        receiver = receiver.value
    return dotted_name(receiver)


class PerfRule(Rule):
    """Base for the perf pack: info severity, profile-driven escalation.

    The CLI assigns :attr:`hotness` when ``--profile`` is given
    (``uses_profile`` marks the rules that accept it); findings inside a
    measured-hot function then escalate to warning with the hotness
    reason appended to the message.
    """

    severity = Severity.INFO
    uses_profile = True

    def __init__(self) -> None:
        self.hotness: Optional[HotnessModel] = None

    def check_project(self, modules: Sequence[ModuleInfo]) -> Iterator[Finding]:
        index = _project_index(modules)
        for module in modules:
            aliases = import_aliases(module.tree)
            for _cls, fn in walk_functions(module.tree):
                if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                qualname = index.qualnames.get(
                    (module.module, fn.name, fn.lineno)
                )
                hot_reason = None
                if self.hotness is not None and qualname is not None:
                    hot_reason = self.hotness.hot_reason(
                        index.graph, qualname, index.hot_edges
                    )
                yield from self.check_function(
                    module, fn, aliases, index, hot_reason
                )

    def check_function(
        self,
        module: ModuleInfo,
        fn: FunctionNode,
        aliases: Dict[str, str],
        index: _ProjectIndex,
        hot_reason: Optional[str],
    ) -> Iterator[Finding]:
        """Per-function findings (overridden by each rule)."""
        return iter(())

    def perf_finding(
        self,
        module: ModuleInfo,
        line: int,
        message: str,
        hot_reason: Optional[str],
        flow_path: Tuple[int, ...] = (),
    ) -> Finding:
        severity = self.severity
        if hot_reason is not None:
            if severity.rank < Severity.WARNING.rank:
                severity = Severity.WARNING
            message = f"{message} [hot path: {hot_reason}]"
        return Finding(
            rule_id=self.rule_id,
            severity=severity,
            path=module.path,
            line=line,
            message=message,
            flow_path=flow_path,
        )


class AllocHotRule(PerfRule):
    """Container/object allocation inside loop bodies."""

    rule_id = "PERF-ALLOC-HOT"
    description = (
        "comprehension, list()/dict()/set()/tuple() or object construction "
        "inside a loop body — allocations on every iteration"
    )

    def check_function(
        self,
        module: ModuleInfo,
        fn: FunctionNode,
        aliases: Dict[str, str],
        index: _ProjectIndex,
        hot_reason: Optional[str],
    ) -> Iterator[Finding]:
        loops = index.loop_index(fn)
        if not loops.loops:
            return
        # Exception construction is the error path, not a per-iteration
        # cost — `raise ValueError(...)` in a loop is not an allocation bug.
        raised: Set[int] = set()
        for node in walk_own_scope(fn):
            if isinstance(node, ast.Raise) and node.exc is not None:
                for sub in ast.walk(node.exc):
                    raised.add(id(sub))
        for node in walk_own_scope(fn):
            if id(node) in raised:
                continue
            what: Optional[str] = None
            if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
                what = "a comprehension"
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                name = node.func.id
                if name in _BUILTIN_CONTAINERS and name not in aliases:
                    what = f"{name}()"
                elif name[:1].isupper() and not name.isupper():
                    what = f"{name}(...) object construction"
            if what is None:
                continue
            loop = loops.innermost(node.lineno)
            if loop is None:
                continue
            yield self.perf_finding(
                module,
                node.lineno,
                f"{what} allocates on every iteration of the loop at "
                f"line {loop.header_line} (depth {loop.depth}); hoist it or "
                "reuse one object across iterations",
                hot_reason,
                flow_path=(loop.header_line, node.lineno),
            )


class NumpyCopyRule(PerfRule):
    """Implicit ndarray copies: np.array on arrays, astype defaults,
    fancy indexing in loops, dtype-converting asarray in loops."""

    rule_id = "PERF-NUMPY-COPY"
    description = (
        "implicit ndarray copy: np.array(...) without copy=False, "
        "astype() without copy=False, dtype-converting or fancy-indexing "
        "gathers inside loops"
    )

    def check_function(
        self,
        module: ModuleInfo,
        fn: FunctionNode,
        aliases: Dict[str, str],
        index: _ProjectIndex,
        hot_reason: Optional[str],
    ) -> Iterator[Finding]:
        loops = index.loop_index(fn)
        in_comp = _comprehension_nodes(fn)

        def looped(node: ast.expr) -> Optional[int]:
            """Header line of the loop re-evaluating ``node``, if any."""
            loop = loops.innermost(node.lineno)
            if loop is not None:
                return loop.header_line
            if id(node) in in_comp:
                return node.lineno
            return None

        for node in walk_own_scope(fn):
            if not isinstance(node, ast.Call):
                if (
                    isinstance(node, ast.Subscript)
                    and isinstance(node.ctx, ast.Load)
                    and looped(node) is not None
                ):
                    sliced = node.slice
                    is_gather = isinstance(sliced, ast.List) or (
                        isinstance(sliced, ast.Name)
                        and _INDEXISH_RE.search(sliced.id) is not None
                    )
                    base = dotted_name(node.value)
                    if is_gather and base is not None and _ARRAYISH_RE.search(base):
                        header = looped(node) or node.lineno
                        yield self.perf_finding(
                            module,
                            node.lineno,
                            f"fancy indexing of {base!r} allocates a gathered "
                            "copy on every iteration of the loop at line "
                            f"{header}; gather once outside the loop",
                            hot_reason,
                            flow_path=(header, node.lineno),
                        )
                continue

            resolved = resolve_call_name(node, aliases)
            keywords = {kw.arg for kw in node.keywords if kw.arg}
            if resolved == "numpy.array":
                arg_is_literal = bool(node.args) and isinstance(
                    node.args[0], (ast.Constant, ast.List, ast.Tuple, ast.Dict)
                )
                if not arg_is_literal and "copy" not in keywords and node.args:
                    detail = (
                        " (and the dtype= conversion can silently upcast)"
                        if "dtype" in keywords
                        else ""
                    )
                    yield self.perf_finding(
                        module,
                        node.lineno,
                        "np.array(...) always copies its input"
                        f"{detail}; use np.asarray when a view suffices, "
                        "or pass copy=False to make the copy explicit",
                        hot_reason,
                    )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and "copy" not in keywords
            ):
                yield self.perf_finding(
                    module,
                    node.lineno,
                    "astype() copies even when the dtype already matches; "
                    "pass copy=False to return the input unchanged in the "
                    "matching-dtype case",
                    hot_reason,
                )
            elif resolved == "numpy.asarray" and "dtype" in keywords:
                header = looped(node)
                if header is not None:
                    yield self.perf_finding(
                        module,
                        node.lineno,
                        "np.asarray(..., dtype=...) copies whenever the "
                        "input dtype differs (silent upcast) — on every "
                        f"iteration of the loop at line {header}; convert "
                        "once outside the loop or guard on the dtype",
                        hot_reason,
                        flow_path=(header, node.lineno),
                    )


class PicklePayloadRule(PerfRule):
    """ndarrays crossing multiprocessing queues by pickling."""

    rule_id = "PERF-PICKLE-PAYLOAD"
    severity = Severity.WARNING
    description = (
        "ndarray payload put on a multiprocessing queue — every transfer "
        "pickles the full array across the process boundary"
    )

    def check_function(
        self,
        module: ModuleInfo,
        fn: FunctionNode,
        aliases: Dict[str, str],
        index: _ProjectIndex,
        hot_reason: Optional[str],
    ) -> Iterator[Finding]:
        if "multiprocessing" not in aliases.values():
            return
        for node in walk_own_scope(fn):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            if not isinstance(node.func, ast.Attribute) or node.func.attr != "put":
                continue
            receiver = _call_receiver_name(node)
            if receiver is None or "queue" not in receiver.lower():
                continue
            carrier = self._array_payload(node.args[0])
            if carrier is None:
                continue
            yield self.perf_finding(
                module,
                node.lineno,
                f"payload {carrier!r} on {receiver}.put() pickles an "
                "ndarray across the process boundary on every transfer; "
                "move bulk arrays to shared memory "
                "(multiprocessing.shared_memory) or keep the queue for "
                "control messages only",
                hot_reason,
            )

    @staticmethod
    def _array_payload(payload: ast.expr) -> Optional[str]:
        """Name of an array-carrying expression inside ``payload``."""
        for sub in ast.walk(payload):
            if isinstance(sub, ast.Name) and _ARRAYISH_RE.search(sub.id):
                return sub.id
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "copy"
            ):
                base = dotted_name(sub.func.value)
                if base is not None and _ARRAYISH_RE.search(base):
                    return f"{base}.copy()"
        return None


class AttrLoopRule(PerfRule):
    """Repeated attribute/global chain lookups inside loop bodies."""

    rule_id = "PERF-ATTR-LOOP"
    description = (
        "the same attribute chain (self.x.y, module.fn, bound method) "
        "looked up repeatedly inside one loop body — bind it to a local "
        "before the loop"
    )

    #: identical chain occurrences in one loop body before reporting.
    min_occurrences = 2

    def check_function(
        self,
        module: ModuleInfo,
        fn: FunctionNode,
        aliases: Dict[str, str],
        index: _ProjectIndex,
        hot_reason: Optional[str],
    ) -> Iterator[Finding]:
        loops = index.loop_index(fn)
        for loop in loops.loops:
            yield from self._check_loop(module, fn, loop, hot_reason)

    def _check_loop(
        self,
        module: ModuleInfo,
        fn: FunctionNode,
        loop: Loop,
        hot_reason: Optional[str],
    ) -> Iterator[Finding]:
        rebound: Set[str] = set()
        reads: Dict[str, List[int]] = {}
        seen_attr_ids: Set[int] = set()
        for node in walk_own_scope(fn):
            lineno = getattr(node, "lineno", None)
            if lineno is None or lineno not in loop.lines:
                continue
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                rebound.add(node.id)
            if isinstance(node, ast.Attribute) and id(node) not in seen_attr_ids:
                if not isinstance(node.ctx, ast.Load):
                    continue
                chain = dotted_name(node)
                if chain is None:
                    continue
                # Record the outermost chain only; mark sub-chains seen.
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Attribute):
                        seen_attr_ids.add(id(sub))
                reads.setdefault(chain, []).append(lineno)
        for chain, lines in sorted(reads.items()):
            if len(lines) < self.min_occurrences:
                continue
            root = chain.split(".", 1)[0]
            if root in rebound:
                continue
            lines.sort()
            yield self.perf_finding(
                module,
                lines[0],
                f"attribute chain {chain!r} is looked up {len(lines)} times "
                f"per iteration of the loop at line {loop.header_line}; "
                "bind it to a local before the loop",
                hot_reason,
                flow_path=tuple([loop.header_line] + lines[:4]),
            )


class LogHotRule(PerfRule):
    """Eagerly formatted logging calls."""

    rule_id = "PERF-LOG-HOT"
    description = (
        "f-string / %-formatted / .format() argument built eagerly for a "
        "logger call — the string is rendered even when the level is off"
    )

    def check_function(
        self,
        module: ModuleInfo,
        fn: FunctionNode,
        aliases: Dict[str, str],
        index: _ProjectIndex,
        hot_reason: Optional[str],
    ) -> Iterator[Finding]:
        for node in walk_own_scope(fn):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in _LOG_METHODS:
                continue
            receiver = dotted_name(node.func.value)
            if receiver is None or "log" not in receiver.lower():
                continue
            for arg in node.args:
                kind = self._eager_kind(arg)
                if kind is not None:
                    yield self.perf_finding(
                        module,
                        node.lineno,
                        f"{kind} passed to {receiver}.{node.func.attr}() is "
                        "rendered before the level check; pass lazy "
                        '%-style arguments (logger.debug("x=%s", x))',
                        hot_reason,
                    )
                    break

    @staticmethod
    def _eager_kind(arg: ast.expr) -> Optional[str]:
        if isinstance(arg, ast.JoinedStr):
            return "an f-string"
        if isinstance(arg, ast.BinOp) and isinstance(arg.op, (ast.Mod, ast.Add)):
            for side in (arg.left, arg.right):
                if isinstance(side, ast.Constant) and isinstance(side.value, str):
                    return "eager %-formatting" if isinstance(
                        arg.op, ast.Mod
                    ) else "eager string concatenation"
        if (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Attribute)
            and arg.func.attr == "format"
        ):
            return "an eager .format() call"
        return None


class ScanRule(PerfRule):
    """Linear membership scans inside loops."""

    rule_id = "PERF-SCAN"
    description = (
        "linear `in` / .index() scan over a list inside a loop body — "
        "every iteration pays O(n); use a set or dict"
    )

    def check_function(
        self,
        module: ModuleInfo,
        fn: FunctionNode,
        aliases: Dict[str, str],
        index: _ProjectIndex,
        hot_reason: Optional[str],
    ) -> Iterator[Finding]:
        loops = index.loop_index(fn)
        if not loops.loops:
            return
        list_names = self._list_bound_names(fn, aliases)
        for node in walk_own_scope(fn):
            loop = loops.innermost(getattr(node, "lineno", 0))
            if loop is None:
                continue
            if isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
            ):
                target = node.comparators[-1]
                scanned: Optional[str] = None
                if isinstance(target, (ast.List, ast.Tuple)) and len(target.elts) > 3:
                    scanned = f"a {len(target.elts)}-element literal"
                elif isinstance(target, ast.Name) and target.id in list_names:
                    scanned = f"list {target.id!r}"
                if scanned is not None:
                    yield self.perf_finding(
                        module,
                        node.lineno,
                        f"membership test scans {scanned} linearly on every "
                        f"iteration of the loop at line {loop.header_line}; "
                        "use a set (or precompute one outside the loop)",
                        hot_reason,
                        flow_path=(loop.header_line, node.lineno),
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "index"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in list_names
            ):
                yield self.perf_finding(
                    module,
                    node.lineno,
                    f".index() on list {node.func.value.id!r} is a linear "
                    "scan on every iteration of the loop at line "
                    f"{loop.header_line}; keep a value -> position dict",
                    hot_reason,
                    flow_path=(loop.header_line, node.lineno),
                )

    @staticmethod
    def _list_bound_names(
        fn: FunctionNode, aliases: Dict[str, str]
    ) -> Set[str]:
        """Local names bound to a list literal or ``list(...)`` call."""
        names: Set[str] = set()
        for node in walk_own_scope(fn):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if isinstance(value, ast.List) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "list"
                and "list" not in aliases
            ):
                names.add(target.id)
        return names
