"""Small AST helpers shared by the rule packs.

The rules reason about *resolved* dotted names — ``_time.perf_counter``
must be recognized as ``time.perf_counter`` even through an import alias,
and ``from datetime import datetime`` must make ``datetime.now`` resolve to
``datetime.datetime.now``.  :func:`import_aliases` builds the local-name →
origin map and :func:`resolve_call_name` applies it.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

__all__ = [
    "import_aliases",
    "dotted_name",
    "resolve_name",
    "resolve_call_name",
    "walk_functions",
    "walk_own_scope",
]


def import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map each locally bound import name to its fully-dotted origin.

    ``import numpy as np`` binds ``np -> numpy``; ``import time as _t``
    binds ``_t -> time``; ``from numpy import random as npr`` binds
    ``npr -> numpy.random``; plain ``import numpy.random`` binds the top
    name ``numpy -> numpy``.  Relative imports are skipped — the repro
    codebase uses absolute imports throughout.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname:
                    aliases[name.asname] = name.name
                else:
                    top = name.name.split(".")[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def dotted_name(node: ast.AST) -> Optional[str]:
    """The textual dotted path of a Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_name(dotted: str, aliases: Dict[str, str]) -> str:
    """Rewrite the first segment of ``dotted`` through the alias map."""
    head, _, rest = dotted.partition(".")
    origin = aliases.get(head, head)
    return f"{origin}.{rest}" if rest else origin


def resolve_call_name(
    call: ast.Call, aliases: Dict[str, str]
) -> Optional[str]:
    """The resolved dotted name a call targets, or ``None`` if dynamic."""
    name = dotted_name(call.func)
    if name is None:
        return None
    return resolve_name(name, aliases)


def walk_functions(
    tree: ast.AST,
) -> Iterator[Tuple[Optional[ast.ClassDef], ast.AST]]:
    """Yield ``(enclosing_class_or_None, function_node)`` pairs.

    Covers module-level functions, methods, and functions nested inside
    either; the class reported for a nested function is the innermost
    enclosing class (or ``None``).
    """

    def visit(node: ast.AST, cls: Optional[ast.ClassDef]) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from visit(child, child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield cls, child
                yield from visit(child, cls)
            else:
                yield from visit(child, cls)

    yield from visit(tree, None)


def walk_own_scope(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested defs.

    Nested functions, classes, and lambdas are separate execution scopes;
    per-function rules visit them through :func:`walk_functions` instead,
    so walking into them here would double-report.
    """

    def visit(node: ast.AST) -> Iterator[ast.AST]:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                continue
            yield child
            yield from visit(child)

    yield from visit(fn)
