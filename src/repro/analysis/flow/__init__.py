"""Flow-sensitive static analysis: CFGs, dataflow solving, call graphs.

The per-node AST rules in :mod:`repro.analysis.rules` answer "does this
statement look wrong"; this package answers "can execution *reach* this
statement in a bad state".  Three layers:

* :mod:`repro.analysis.flow.cfg` — a control-flow-graph builder for
  Python functions covering branches, loops (``while/else``, ``for/else``,
  ``break``/``continue``), ``try/except/finally`` (with duplicated
  ``finally`` regions so a ``return`` inside ``try`` flows through the
  finalizer to the right continuation), ``with`` blocks, early returns,
  and bare ``raise`` re-raises.  Blocks are statement-granular so
  exception edges are precise.
* :mod:`repro.analysis.flow.solve` — a generic forward/backward worklist
  fixpoint solver over a CFG; problems choose the lattice join and the
  per-block transfer, and may propagate the *pre*-state along exception
  edges (a statement that raises did not complete its effect).
* :mod:`repro.analysis.flow.callgraph` — an interprocedural call graph
  over the linted batch, resolved by module-level name binding (imports,
  module functions, ``self.``/``cls.`` methods, class-qualified calls).

The FLOW-* rule packs in :mod:`repro.analysis.rules.flow` are built on
these layers; ``docs/static_analysis.md`` documents the model.
"""

from repro.analysis.flow.callgraph import CallGraph, FunctionInfo, build_call_graph
from repro.analysis.flow.cfg import (
    CFG,
    Block,
    Edge,
    build_cfg,
    build_cfgs,
    render_cfg,
)
from repro.analysis.flow.solve import DataflowProblem, solve

__all__ = [
    "CFG",
    "Block",
    "Edge",
    "build_cfg",
    "build_cfgs",
    "render_cfg",
    "DataflowProblem",
    "solve",
    "CallGraph",
    "FunctionInfo",
    "build_call_graph",
]
