"""Control-flow graphs for Python functions, at statement granularity.

Each function body becomes a :class:`CFG`: one :class:`Block` per simple
statement (plus heads for ``if``/``while``/``for``/``with``/``except``),
three synthetic blocks — ``entry``, ``exit`` (normal return) and
``raise`` (an uncaught exception leaving the function) — and kinded
:class:`Edge` s between them:

``next``
    sequential flow (including ``return`` → exit and ``break`` → after);
``true`` / ``false``
    the two sides of a branch head (for ``except`` heads: handler
    matched / try the next handler);
``back``
    a loop back-edge (``continue`` or the end of a loop body);
``exc``
    the statement may raise: control leaves *before* the statement's
    effect, toward the innermost handler, finalizer, or the ``raise``
    block.

Statement granularity keeps exception edges precise — the classic
"lock acquired, a call raises, release never runs" path is a real edge
here — at the cost of larger graphs, which lint-sized functions afford.

``try``/``finally`` uses *finalizer duplication*: each distinct way of
leaving the ``try`` region (falling off the end, ``return``, an
exception, ``break``/``continue``) gets its own copy of the ``finally``
body wired to the right continuation, so a ``return`` inside ``try``
flows through the finalizer to ``exit`` and never leaks into the code
after the statement.  Only exit kinds actually used materialize a copy.

Deliberate approximations (documented for rule authors):

* only statements containing a call, ``raise``, or ``assert`` get ``exc``
  edges — attribute/subscript errors on plain data are below lint grade;
* ``except`` clauses are matched structurally, not by type: any handler
  chain may catch, and only a bare ``except`` (or ``Exception`` /
  ``BaseException``) seals the escape edge;
* a context manager never suppresses exceptions (no ``__exit__`` → True
  modeling) — true for every ``with`` in this codebase;
* constant branch tests (``if True:``, ``while True:``) drop the
  impossible edge, so the dead side shows up as unreachable blocks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

__all__ = ["Block", "Edge", "CFG", "build_cfg", "build_cfgs", "render_cfg"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: ids of the three synthetic blocks every CFG has.
ENTRY, EXIT, RAISE = 0, 1, 2

#: handler annotations treated as catching *everything* (sealing the
#: escape edge of an except chain).
_CATCH_ALL_NAMES = {"Exception", "BaseException"}


@dataclass
class Block:
    """One CFG node: a single statement, or a synthetic entry/exit."""

    block_id: int
    label: str
    line: int = 0
    #: the AST statement this block executes (None for synthetic blocks
    #: and branch heads that only evaluate a test)
    stmt: Optional[ast.stmt] = None
    #: True for blocks inside an inlined ``finally`` copy — cleanup code,
    #: where analyses usually ignore double-fault exception edges
    in_finally: bool = False

    @property
    def synthetic(self) -> bool:
        return self.block_id in (ENTRY, EXIT, RAISE)


@dataclass(frozen=True)
class Edge:
    """A directed, kinded edge between two blocks."""

    src: int
    dst: int
    kind: str  # "next" | "true" | "false" | "back" | "exc"


@dataclass
class CFG:
    """The control-flow graph of one function."""

    qualname: str
    line: int
    blocks: Dict[int, Block] = field(default_factory=dict)
    edges: List[Edge] = field(default_factory=list)
    #: the function's AST node (for rules that re-inspect statements)
    node: Optional[FunctionNode] = None

    def successors(self, block_id: int) -> List[Edge]:
        return [e for e in self.edges if e.src == block_id]

    def predecessors(self, block_id: int) -> List[Edge]:
        return [e for e in self.edges if e.dst == block_id]

    def reachable(self) -> Set[int]:
        """Block ids reachable from ``entry`` along any edge."""
        seen = {ENTRY}
        stack = [ENTRY]
        out: Dict[int, List[int]] = {}
        for edge in self.edges:
            out.setdefault(edge.src, []).append(edge.dst)
        while stack:
            for dst in out.get(stack.pop(), ()):
                if dst not in seen:
                    seen.add(dst)
                    stack.append(dst)
        return seen

    def unreachable_blocks(self) -> List[Block]:
        """Real (non-synthetic) blocks no path from entry reaches."""
        reachable = self.reachable()
        return [
            b
            for bid, b in sorted(self.blocks.items())
            if bid not in reachable and not b.synthetic
        ]


# ----------------------------------------------------------------------
# Builder internals
# ----------------------------------------------------------------------
#: a dangling out-edge waiting for its destination: (source block, kind)
_Dangling = Tuple[int, str]


class _LoopFrame:
    """An enclosing loop: where ``continue``/``break`` go."""

    def __init__(self, head: int):
        self.head = head
        self.breaks: List[_Dangling] = []


class _TryFrame:
    """An enclosing ``try`` with handlers: where exceptions go."""

    def __init__(self, dispatch: int):
        self.dispatch = dispatch


class _FinallyFrame:
    """An enclosing ``finally``: every exit inlines a copy of its body."""

    def __init__(self, body: List[ast.stmt], outer: List[object]):
        self.body = body
        self.outer = outer  # the frame stack outside this try statement
        self._copies: Dict[str, int] = {}  # exit kind -> copy entry block
        self.next_out: List[_Dangling] = []  # normal-completion dangling


_Frame = Union[_LoopFrame, _TryFrame, _FinallyFrame]


def _may_raise(stmt: ast.stmt) -> bool:
    """Whether the statement gets an ``exc`` edge (see module docstring)."""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return False  # defining, not running
    return any(isinstance(node, ast.Call) for node in ast.walk(stmt))


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    node = handler.type
    if isinstance(node, ast.Attribute):
        return node.attr in _CATCH_ALL_NAMES
    return isinstance(node, ast.Name) and node.id in _CATCH_ALL_NAMES


def _handler_label(handler: ast.ExceptHandler) -> str:
    if handler.type is None:
        return "except"
    try:
        return f"except {ast.unparse(handler.type)}"
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "except ?"


_STMT_LABELS = {
    ast.Assign: "assign",
    ast.AugAssign: "augassign",
    ast.AnnAssign: "annassign",
    ast.Expr: "expr",
    ast.Return: "return",
    ast.Raise: "raise",
    ast.Pass: "pass",
    ast.Break: "break",
    ast.Continue: "continue",
    ast.Assert: "assert",
    ast.Delete: "delete",
    ast.Import: "import",
    ast.ImportFrom: "import",
    ast.Global: "global",
    ast.Nonlocal: "nonlocal",
    ast.FunctionDef: "def",
    ast.AsyncFunctionDef: "def",
    ast.ClassDef: "class",
}


class _Builder:
    def __init__(self, fn: FunctionNode, qualname: str):
        self.cfg = CFG(qualname=qualname, line=fn.lineno, node=fn)
        self._next_id = 0
        self._new_block("entry", fn.lineno)  # ENTRY
        self._new_block("exit", fn.lineno)  # EXIT
        self._new_block("raise", fn.lineno)  # RAISE
        self._edge_set: Set[Tuple[int, int, str]] = set()
        dangling = self._build_stmts(fn.body, [(ENTRY, "next")], [])
        self._connect(dangling, EXIT)

    # -- graph assembly ------------------------------------------------
    def _new_block(
        self, label: str, line: int, stmt: Optional[ast.stmt] = None
    ) -> Block:
        block = Block(self._next_id, label, line, stmt)
        self.cfg.blocks[block.block_id] = block
        self._next_id += 1
        return block

    def _edge(self, src: int, dst: int, kind: str) -> None:
        key = (src, dst, kind)
        if key not in self._edge_set:
            self._edge_set.add(key)
            self.cfg.edges.append(Edge(src, dst, kind))

    def _connect(self, dangling: Sequence[_Dangling], dst: int) -> None:
        for src, kind in dangling:
            self._edge(src, dst, kind)

    # -- abrupt-exit routing -------------------------------------------
    def _route(
        self, dangling: Sequence[_Dangling], kind: str, frames: List[_Frame]
    ) -> None:
        """Send ``dangling`` toward the target of an abrupt ``kind`` exit
        (``return`` / ``raise`` / ``break`` / ``continue``), inlining
        ``finally`` copies and stopping at handlers/loops on the way."""
        if not dangling:
            return
        for i in range(len(frames) - 1, -1, -1):
            frame = frames[i]
            if isinstance(frame, _FinallyFrame):
                entry = self._finally_copy(frame, kind)
                self._connect(dangling, entry)
                return
            if isinstance(frame, _TryFrame) and kind == "raise":
                self._connect(dangling, frame.dispatch)
                return
            if isinstance(frame, _LoopFrame):
                if kind == "break":
                    frame.breaks.extend(dangling)
                    return
                if kind == "continue":
                    self._connect(dangling, frame.head)
                    return
        self._connect(dangling, RAISE if kind == "raise" else EXIT)

    def _finally_copy(self, frame: _FinallyFrame, kind: str) -> int:
        """Entry block of the finalizer copy for one exit kind (cached)."""
        if kind in frame._copies:
            return frame._copies[kind]
        entry_id = self._next_id
        # Reserve the cache entry before building: routing inside the
        # copy consults only outer frames, so it can never re-enter this
        # frame, but the reservation keeps that a structural guarantee.
        frame._copies[kind] = entry_id
        out = self._build_stmts(frame.body, [], list(frame.outer))
        for bid in range(entry_id, self._next_id):
            self.cfg.blocks[bid].in_finally = True
        if kind == "next":
            # normal completion: the try builder connects `out` onward
            frame.next_out = out
        else:
            self._route(out, kind, list(frame.outer))
        return entry_id

    # -- statement builders --------------------------------------------
    def _build_stmts(
        self,
        stmts: Sequence[ast.stmt],
        incoming: List[_Dangling],
        frames: List[_Frame],
    ) -> List[_Dangling]:
        dangling = list(incoming)
        for stmt in stmts:
            dangling = self._build_stmt(stmt, dangling, frames)
        return dangling

    def _build_stmt(
        self, stmt: ast.stmt, incoming: List[_Dangling], frames: List[_Frame]
    ) -> List[_Dangling]:
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, incoming, frames)
        if isinstance(stmt, ast.While):
            return self._build_while(stmt, incoming, frames)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._build_for(stmt, incoming, frames)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, incoming, frames)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_with(stmt, incoming, frames)
        return self._build_simple(stmt, incoming, frames)

    def _build_simple(
        self, stmt: ast.stmt, incoming: List[_Dangling], frames: List[_Frame]
    ) -> List[_Dangling]:
        label = _STMT_LABELS.get(type(stmt), type(stmt).__name__.lower())
        block = self._new_block(label, stmt.lineno, stmt)
        self._connect(incoming, block.block_id)
        if _may_raise(stmt) or (
            _protected(frames) and not isinstance(stmt, _NEVER_RAISES)
        ):
            self._route([(block.block_id, "exc")], "raise", frames)
        if isinstance(stmt, ast.Return):
            self._route([(block.block_id, "next")], "return", frames)
            return []
        if isinstance(stmt, ast.Raise):
            # the exc edge above already routed it; no fall-through
            return []
        if isinstance(stmt, ast.Break):
            self._route([(block.block_id, "next")], "break", frames)
            return []
        if isinstance(stmt, ast.Continue):
            self._route([(block.block_id, "back")], "continue", frames)
            return []
        return [(block.block_id, "next")]

    def _build_if(
        self, stmt: ast.If, incoming: List[_Dangling], frames: List[_Frame]
    ) -> List[_Dangling]:
        head = self._new_block("if", stmt.lineno, stmt)
        self._connect(incoming, head.block_id)
        if _may_raise_expr(stmt.test) or _protected(frames):
            self._route([(head.block_id, "exc")], "raise", frames)
        truth = _constant_truth(stmt.test)
        body_in = [(head.block_id, "true")] if truth is not False else []
        else_in = [(head.block_id, "false")] if truth is not True else []
        out = self._build_stmts(stmt.body, body_in, frames)
        if stmt.orelse:
            out += self._build_stmts(stmt.orelse, else_in, frames)
        else:
            out += else_in
        return out

    def _build_while(
        self, stmt: ast.While, incoming: List[_Dangling], frames: List[_Frame]
    ) -> List[_Dangling]:
        head = self._new_block("while", stmt.lineno, stmt)
        self._connect(incoming, head.block_id)
        if _may_raise_expr(stmt.test) or _protected(frames):
            self._route([(head.block_id, "exc")], "raise", frames)
        truth = _constant_truth(stmt.test)
        frame = _LoopFrame(head.block_id)
        body_in = [(head.block_id, "true")] if truth is not False else []
        body_out = self._build_stmts(stmt.body, body_in, frame_push(frames, frame))
        self._connect(body_out, head.block_id)  # back-edge
        exhaust = [(head.block_id, "false")] if truth is not True else []
        out = (
            self._build_stmts(stmt.orelse, exhaust, frames)
            if stmt.orelse
            else exhaust
        )
        return out + frame.breaks

    def _build_for(
        self,
        stmt: Union[ast.For, ast.AsyncFor],
        incoming: List[_Dangling],
        frames: List[_Frame],
    ) -> List[_Dangling]:
        head = self._new_block("for", stmt.lineno, stmt)
        self._connect(incoming, head.block_id)
        # advancing the iterator can always raise (StopIteration aside)
        self._route([(head.block_id, "exc")], "raise", frames)
        frame = _LoopFrame(head.block_id)
        body_out = self._build_stmts(
            stmt.body, [(head.block_id, "true")], frame_push(frames, frame)
        )
        self._connect(body_out, head.block_id)  # back-edge
        exhaust: List[_Dangling] = [(head.block_id, "false")]
        out = (
            self._build_stmts(stmt.orelse, exhaust, frames)
            if stmt.orelse
            else exhaust
        )
        return out + frame.breaks

    def _build_with(
        self,
        stmt: Union[ast.With, ast.AsyncWith],
        incoming: List[_Dangling],
        frames: List[_Frame],
    ) -> List[_Dangling]:
        head = self._new_block("with", stmt.lineno, stmt)
        self._connect(incoming, head.block_id)
        # entering the context managers can raise
        self._route([(head.block_id, "exc")], "raise", frames)
        return self._build_stmts(stmt.body, [(head.block_id, "next")], frames)

    def _build_try(
        self, stmt: ast.Try, incoming: List[_Dangling], frames: List[_Frame]
    ) -> List[_Dangling]:
        inner_frames = frames
        fin_frame: Optional[_FinallyFrame] = None
        if stmt.finalbody:
            fin_frame = _FinallyFrame(stmt.finalbody, list(frames))
            inner_frames = frame_push(frames, fin_frame)

        heads: List[Block] = [
            self._new_block(_handler_label(h), h.lineno, None)
            for h in stmt.handlers
        ]
        body_frames = inner_frames
        if heads:
            body_frames = frame_push(inner_frames, _TryFrame(heads[0].block_id))

        body_out = self._build_stmts(stmt.body, incoming, body_frames)
        # else clause: runs only on normal body completion; its exceptions
        # bypass this statement's handlers
        if stmt.orelse:
            body_out = self._build_stmts(stmt.orelse, body_out, inner_frames)

        out = list(body_out)
        sealed = any(_is_catch_all(h) for h in stmt.handlers)
        for i, handler in enumerate(stmt.handlers):
            head = heads[i]
            out += self._build_stmts(
                handler.body, [(head.block_id, "true")], inner_frames
            )
            if i + 1 < len(heads):
                self._edge(head.block_id, heads[i + 1].block_id, "false")
            elif not sealed:
                # no handler matched: keep unwinding
                self._route([(head.block_id, "false")], "raise", inner_frames)

        if fin_frame is not None and out:
            entry = self._finally_copy(fin_frame, "next")
            self._connect(out, entry)
            out = fin_frame.next_out
        return out


def frame_push(frames: List[_Frame], frame: _Frame) -> List[_Frame]:
    """A copy of ``frames`` with ``frame`` innermost (stacks are shared
    snapshots, never mutated in place)."""
    return frames + [frame]


#: statements that cannot raise at runtime even pessimistically
_NEVER_RAISES = (ast.Pass, ast.Break, ast.Continue, ast.Global, ast.Nonlocal)


def _protected(frames: List[_Frame]) -> bool:
    """Whether an enclosing ``try`` (handlers or finally) observes raises.

    Outside any ``try``, only statements containing calls/raise/assert
    get exception edges — precise enough and keeps graphs small.  Inside
    one, a subscript, attribute access, or arithmetic can raise too, and
    pretending otherwise makes the handler look unreachable; so every
    effectful statement gets the edge.
    """
    return any(isinstance(f, (_TryFrame, _FinallyFrame)) for f in frames)


def _constant_truth(test: ast.expr) -> Optional[bool]:
    """The truth of a constant test expression, else None."""
    if isinstance(test, ast.Constant):
        return bool(test.value)
    return None


def _may_raise_expr(expr: ast.expr) -> bool:
    return any(isinstance(node, ast.Call) for node in ast.walk(expr))


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def build_cfg(fn: FunctionNode, qualname: Optional[str] = None) -> CFG:
    """The CFG of one function definition."""
    return _Builder(fn, qualname or fn.name).cfg


def build_cfgs(tree: ast.AST, module_name: str = "") -> Dict[str, CFG]:
    """CFGs for every function in ``tree``, keyed by dotted qualname.

    Nested functions get ``outer.<locals>.inner``-style names flattened
    to ``outer.inner`` — unique enough for diagnostics, and stable.
    """
    cfgs: Dict[str, CFG] = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{child.name}" if prefix else child.name
                key = qualname
                serial = 2
                while key in cfgs:  # lambdas/overloads sharing a name
                    key = f"{qualname}#{serial}"
                    serial += 1
                cfgs[key] = build_cfg(child, key)
                visit(child, qualname)
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}.{child.name}" if prefix else child.name)
            else:
                visit(child, prefix)

    visit(tree, module_name)
    return cfgs


def render_cfg(cfg: CFG) -> str:
    """Deterministic text dump of a CFG (the golden-test format).

    Blocks print in id order with entry first and the synthetic
    exit/raise blocks last; edges print sorted by (src, dst, kind).
    """
    lines = [f"cfg {cfg.qualname} (line {cfg.line})"]
    order = [ENTRY] + [
        bid for bid in sorted(cfg.blocks) if bid not in (ENTRY, EXIT, RAISE)
    ] + [EXIT, RAISE]
    for bid in order:
        block = cfg.blocks[bid]
        if block.synthetic:
            lines.append(f"  B{bid} {block.label}")
        else:
            lines.append(f"  B{bid} L{block.line} {block.label}")
    lines.append("  edges:")
    for edge in sorted(cfg.edges, key=lambda e: (e.src, e.dst, e.kind)):
        lines.append(f"  B{edge.src} -> B{edge.dst} [{edge.kind}]")
    return "\n".join(lines)
