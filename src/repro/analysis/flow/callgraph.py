"""Interprocedural call graph over the linted batch.

Resolution is by *module-level name binding*, the only kind Python makes
static: import aliases (via :mod:`repro.analysis.astutil`), module
functions, classes and their methods (including single-inheritance-style
base lookup when the base resolves to a batch class), ``self.``/``cls.``
method calls, ``ClassName.method`` references, nested ``def`` names, and
a small local-instance inference (``x = ClassName(...)`` makes ``x.m()``
resolve).  Anything dynamic — getattr, dict dispatch, decorators that
swap callables — is out of scope and simply yields no edge, which keeps
the graph an under-approximation: good for "is a blocking call reachable"
warnings, where a missed edge costs a warning, not a crash.

Calls that resolve through an import alias to a name *outside* the batch
(``time.sleep``, ``socket.socket``) are recorded per caller in
``CallGraph.external`` so rules can reason about well-known library
primitives without the batch containing them.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.astutil import (
    dotted_name,
    import_aliases,
    resolve_name,
    walk_own_scope,
)
from repro.analysis.engine import ModuleInfo
from repro.analysis.flow.cfg import FunctionNode

__all__ = ["CallEdge", "CallGraph", "FunctionInfo", "build_call_graph"]


@dataclass
class FunctionInfo:
    """One function in the batch, addressed by dotted qualname."""

    qualname: str
    module: str
    node: FunctionNode
    line: int
    is_async: bool
    #: qualname of the innermost enclosing class, if a method
    class_qualname: Optional[str] = None
    #: names bound by nested ``def``s in this function's own scope
    local_bindings: Dict[str, str] = field(default_factory=dict)
    #: local variables inferred as instances of batch classes
    local_types: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class CallEdge:
    """A resolved call: ``caller`` invokes ``callee`` at ``line``."""

    caller: str
    callee: str
    line: int


@dataclass
class _ClassInfo:
    qualname: str
    methods: Dict[str, str] = field(default_factory=dict)
    #: base-class names as resolved dotted strings (may or may not be
    #: batch classes; looked up lazily during method resolution)
    bases: List[str] = field(default_factory=list)


@dataclass
class _ModuleScope:
    aliases: Dict[str, str] = field(default_factory=dict)
    #: top-level name -> ("func" | "class", qualname)
    bindings: Dict[str, Tuple[str, str]] = field(default_factory=dict)


class CallGraph:
    """Functions, resolved call edges, and external library calls."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        #: caller qualname -> outgoing edges (deduped, source order)
        self.edges: Dict[str, List[CallEdge]] = {}
        #: caller qualname -> [(resolved external dotted name, line)]
        self.external: Dict[str, List[Tuple[str, int]]] = {}
        self._classes: Dict[str, _ClassInfo] = {}
        self._scopes: Dict[str, _ModuleScope] = {}

    # -- queries ------------------------------------------------------
    def callees(self, qualname: str) -> List[CallEdge]:
        return self.edges.get(qualname, [])

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """All functions reachable from ``roots`` (roots included)."""
        seen: Set[str] = set()
        queue = deque(r for r in roots if r in self.functions)
        seen.update(queue)
        while queue:
            current = queue.popleft()
            for edge in self.edges.get(current, []):
                if edge.callee not in seen:
                    seen.add(edge.callee)
                    queue.append(edge.callee)
        return seen

    def call_path(self, root: str, target: str) -> Optional[List[CallEdge]]:
        """A shortest chain of edges from ``root`` to ``target``.

        Returns ``[]`` when root *is* the target, ``None`` when
        unreachable.
        """
        if root == target:
            return []
        if root not in self.functions:
            return None
        parents: Dict[str, CallEdge] = {}
        queue = deque([root])
        while queue:
            current = queue.popleft()
            for edge in self.edges.get(current, []):
                if edge.callee in parents or edge.callee == root:
                    continue
                parents[edge.callee] = edge
                if edge.callee == target:
                    chain: List[CallEdge] = []
                    node = target
                    while node != root:
                        chain.append(parents[node])
                        node = parents[node].caller
                    chain.reverse()
                    return chain
                queue.append(edge.callee)
        return None

    def resolve_callable(
        self, module: str, node: ast.AST, enclosing: Optional[FunctionInfo] = None
    ) -> Optional[str]:
        """Resolve a Name/Attribute expression to a batch function.

        Used for callbacks passed by reference (``install_tap(self._on_event)``);
        ``enclosing`` supplies the ``self``/local context.
        """
        dotted = dotted_name(node)
        if dotted is None:
            return None
        return self._resolve(module, dotted, enclosing, as_call=False)

    def lookup_method(self, class_qualname: str, name: str) -> Optional[str]:
        """Resolve ``name`` on ``class_qualname`` with base-class lookup.

        Public form of the internal method table, used by the perf
        hotness layer to resolve calls through inferred attribute types.
        """
        return self._lookup_method(class_qualname, name)

    def known_classes(self) -> Dict[str, List[str]]:
        """class qualname → resolved base-class names, for every batch class."""
        return {q: list(info.bases) for q, info in self._classes.items()}

    # -- construction helpers (used by build_call_graph) --------------
    def _lookup_method(
        self, class_qualname: str, name: str, seen: Optional[Set[str]] = None
    ) -> Optional[str]:
        if seen is None:
            seen = set()
        if class_qualname in seen:
            return None
        seen.add(class_qualname)
        info = self._classes.get(class_qualname)
        if info is None:
            return None
        if name in info.methods:
            return info.methods[name]
        for base in info.bases:
            found = self._lookup_method(base, name, seen)
            if found is not None:
                return found
        return None

    def _resolve(
        self,
        module: str,
        dotted: str,
        enclosing: Optional[FunctionInfo],
        as_call: bool,
    ) -> Optional[str]:
        """Resolve ``dotted`` as seen from ``module`` to a function qualname.

        With ``as_call`` a bare class reference maps to its ``__init__``.
        """
        scope = self._scopes.get(module)
        if scope is None:
            return None
        parts = dotted.split(".")
        head = parts[0]

        if enclosing is not None:
            if (
                head in ("self", "cls")
                and enclosing.class_qualname is not None
                and len(parts) == 2
            ):
                return self._lookup_method(enclosing.class_qualname, parts[1])
            if len(parts) == 1 and head in enclosing.local_bindings:
                return enclosing.local_bindings[head]
            if len(parts) == 2 and head in enclosing.local_types:
                return self._lookup_method(enclosing.local_types[head], parts[1])

        binding = scope.bindings.get(head)
        if binding is not None:
            kind, qualname = binding
            if kind == "func":
                return qualname if len(parts) == 1 else None
            if len(parts) == 1:
                return self._lookup_method(qualname, "__init__") if as_call else None
            if len(parts) == 2:
                return self._lookup_method(qualname, parts[1])
            return None

        full = resolve_name(dotted, scope.aliases)
        if full in self.functions:
            return full
        if full in self._classes:
            return self._lookup_method(full, "__init__") if as_call else None
        owner, _, method = full.rpartition(".")
        if owner in self._classes:
            return self._lookup_method(owner, method)
        return None


def _class_base_name(base: ast.expr, scope: _ModuleScope) -> Optional[str]:
    dotted = dotted_name(base)
    if dotted is None:
        return None
    head = dotted.split(".")[0]
    binding = scope.bindings.get(head)
    if binding is not None and binding[0] == "class" and "." not in dotted:
        return binding[1]
    return resolve_name(dotted, scope.aliases)


def _collect_definitions(graph: CallGraph, info: ModuleInfo) -> None:
    """First pass: register functions, classes, and module bindings."""
    scope = _ModuleScope(aliases=import_aliases(info.tree))
    graph._scopes[info.module] = scope

    for child in info.tree.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scope.bindings[child.name] = ("func", f"{info.module}.{child.name}")
        elif isinstance(child, ast.ClassDef):
            scope.bindings[child.name] = ("class", f"{info.module}.{child.name}")

    def visit(node: ast.AST, prefix: str, cls: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{child.name}"
                serial = 2
                while qualname in graph.functions:
                    qualname = f"{prefix}.{child.name}#{serial}"
                    serial += 1
                graph.functions[qualname] = FunctionInfo(
                    qualname=qualname,
                    module=info.module,
                    node=child,
                    line=child.lineno,
                    is_async=isinstance(child, ast.AsyncFunctionDef),
                    class_qualname=cls,
                )
                if cls is not None and isinstance(node, ast.ClassDef):
                    class_info = graph._classes.get(cls)
                    if class_info is not None:
                        class_info.methods.setdefault(child.name, qualname)
                visit(child, f"{prefix}.{child.name}", cls)
            elif isinstance(child, ast.ClassDef):
                class_qualname = f"{prefix}.{child.name}"
                class_info = _ClassInfo(qualname=class_qualname)
                for base in child.bases:
                    resolved = _class_base_name(base, scope)
                    if resolved is not None:
                        class_info.bases.append(resolved)
                graph._classes[class_qualname] = class_info
                visit(child, class_qualname, class_qualname)
            else:
                visit(child, prefix, cls)

    visit(info.tree, info.module, None)


def _collect_function_locals(graph: CallGraph, fi: FunctionInfo) -> None:
    """Second pass, per function: nested-def names and local instances."""
    scope = graph._scopes[fi.module]
    for child in ast.iter_child_nodes(fi.node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested = f"{fi.qualname}.{child.name}"
            if nested in graph.functions:
                fi.local_bindings[child.name] = nested
    for node in walk_own_scope(fi.node):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
        ):
            target_class = _resolved_class(graph, scope, fi, node.value)
            if target_class is not None:
                fi.local_types[node.targets[0].id] = target_class


def _resolved_class(
    graph: CallGraph, scope: _ModuleScope, fi: FunctionInfo, call: ast.Call
) -> Optional[str]:
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    head = dotted.split(".")[0]
    binding = scope.bindings.get(head)
    if binding is not None and binding[0] == "class" and "." not in dotted:
        return binding[1]
    full = resolve_name(dotted, scope.aliases)
    return full if full in graph._classes else None


def _collect_edges(graph: CallGraph, fi: FunctionInfo) -> None:
    """Third pass, per function: resolve calls into edges / externals."""
    scope = graph._scopes[fi.module]
    edges: List[CallEdge] = []
    seen: Set[Tuple[str, int]] = set()
    externals: List[Tuple[str, int]] = []
    seen_external: Set[Tuple[str, int]] = set()
    for node in walk_own_scope(fi.node):
        if not isinstance(node, ast.Call):
            continue
        dotted = dotted_name(node.func)
        if dotted is None:
            continue
        target = graph._resolve(fi.module, dotted, fi, as_call=True)
        if target is not None:
            key = (target, node.lineno)
            if key not in seen:
                seen.add(key)
                edges.append(CallEdge(fi.qualname, target, node.lineno))
            continue
        head = dotted.split(".")[0]
        if head in scope.aliases:
            full = resolve_name(dotted, scope.aliases)
            key = (full, node.lineno)
            if key not in seen_external:
                seen_external.add(key)
                externals.append((full, node.lineno))
    if edges:
        graph.edges[fi.qualname] = edges
    if externals:
        graph.external[fi.qualname] = externals


def build_call_graph(modules: Sequence[ModuleInfo]) -> CallGraph:
    """The call graph over ``modules`` (typically the whole lint batch)."""
    graph = CallGraph()
    for info in modules:
        _collect_definitions(graph, info)
    for fi in graph.functions.values():
        _collect_function_locals(graph, fi)
    for fi in graph.functions.values():
        _collect_edges(graph, fi)
    return graph
