"""A generic worklist fixpoint solver over :class:`~repro.analysis.flow.cfg.CFG`.

A :class:`DataflowProblem` supplies the lattice (``initial`` bottom,
``join``), the per-block ``transfer`` function, the ``boundary`` value
injected at the entry (forward) or exit/raise (backward) blocks, and the
direction.  :func:`solve` iterates to a fixpoint and returns the
``(in, out)`` value pair per block.

One knob matters for exception precision: with ``exc_propagates_in``
set (forward problems only), the value sent along an ``exc`` out-edge is
the block's *pre*-state, not its post-state — a statement that raised
never completed its effect.  This is what lets a must-release analysis
see the path where ``x.close()`` itself raised before closing.

Termination: transfer functions must be monotone and the lattice of
reachable values finite (every rule here uses finite sets of program
facts), the standard Kildall conditions.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Generic, List, Tuple, TypeVar

from repro.analysis.flow.cfg import CFG, ENTRY, EXIT, RAISE, Block

__all__ = ["DataflowProblem", "solve"]

T = TypeVar("T")


class DataflowProblem(Generic[T]):
    """Base class for dataflow problems; subclass and override."""

    #: "forward" (entry → exits) or "backward" (exits → entry)
    direction: str = "forward"
    #: forward only: send the pre-state along ``exc`` out-edges
    exc_propagates_in: bool = False

    def boundary(self, cfg: CFG) -> T:
        """The value at the boundary block(s)."""
        raise NotImplementedError

    def initial(self) -> T:
        """The bottom value every other block starts at."""
        raise NotImplementedError

    def join(self, a: T, b: T) -> T:
        """Least upper bound of two values."""
        raise NotImplementedError

    def transfer(self, block: Block, value: T) -> T:
        """The effect of executing ``block`` on ``value``."""
        raise NotImplementedError

    def edge_value(self, block: Block, pre: T, post: T, kind: str) -> T:
        """The value a forward problem sends out of ``block`` along ``kind``.

        Default: the post-state, except the pre-state on ``exc`` edges
        when ``exc_propagates_in`` is set.  Problems needing per-block
        precision (e.g. "a release that raises still released") override
        this instead of the class flag.
        """
        if kind == "exc" and self.exc_propagates_in:
            return pre
        return post


def solve(cfg: CFG, problem: DataflowProblem[T]) -> Dict[int, Tuple[T, T]]:
    """Fixpoint of ``problem`` over ``cfg``: ``{block_id: (in, out)}``.

    For backward problems the "in" of a block is its value on the
    downstream side (after the statement) and "out" the upstream side —
    i.e. the pair is always (pre-transfer, post-transfer).
    """
    forward = problem.direction == "forward"
    if problem.direction not in ("forward", "backward"):
        raise ValueError(f"unknown direction {problem.direction!r}")

    # Edges in propagation orientation: forward uses them as written,
    # backward flips them.  `incoming[b]` lists (neighbor, edge kind).
    incoming: Dict[int, List[Tuple[int, str]]] = {b: [] for b in cfg.blocks}
    for edge in cfg.edges:
        if forward:
            incoming[edge.dst].append((edge.src, edge.kind))
        else:
            incoming[edge.src].append((edge.dst, edge.kind))

    boundary_blocks = {ENTRY} if forward else {EXIT, RAISE}
    pre: Dict[int, T] = {}
    post: Dict[int, T] = {}
    for bid in cfg.blocks:
        pre[bid] = problem.boundary(cfg) if bid in boundary_blocks else problem.initial()
        post[bid] = problem.transfer(cfg.blocks[bid], pre[bid])

    worklist = deque(sorted(cfg.blocks))
    queued = set(worklist)
    while worklist:
        bid = worklist.popleft()
        queued.discard(bid)
        value = (
            problem.boundary(cfg) if bid in boundary_blocks else problem.initial()
        )
        for neighbor, kind in incoming[bid]:
            if forward:
                contribution = problem.edge_value(
                    cfg.blocks[neighbor], pre[neighbor], post[neighbor], kind
                )
            else:
                contribution = post[neighbor]
            value = problem.join(value, contribution)
        new_post = problem.transfer(cfg.blocks[bid], value)
        if value == pre[bid] and new_post == post[bid]:
            continue
        pre[bid], post[bid] = value, new_post
        # requeue everything downstream (in propagation orientation)
        for edge in cfg.edges:
            src, dst = (edge.src, edge.dst) if forward else (edge.dst, edge.src)
            if src == bid and dst not in queued:
                queued.add(dst)
                worklist.append(dst)

    return {bid: (pre[bid], post[bid]) for bid in cfg.blocks}
