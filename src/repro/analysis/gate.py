"""Shared ``--fail-on`` exit-code policy for every analysis command.

``repro lint``, ``repro sanitize``, and ``repro modelcheck`` all gate CI
the same way: findings are collected, then one policy decides the exit
code.  ``never`` always exits 0 (report-only mode); the other policies
are severity thresholds: ``info`` fails on any unsuppressed finding,
``warning`` (the default) on warnings and errors, ``error`` only on
:attr:`~repro.analysis.findings.Severity.ERROR` findings.  Info-level
findings (the profile-guided perf rules before a profile marks them hot)
therefore report under the default gate without failing it.
"""

from __future__ import annotations

import argparse
from typing import Sequence, Tuple

from repro.analysis.findings import Finding, Severity

__all__ = ["FAIL_ON_CHOICES", "add_fail_on_argument", "gate_exit_code"]

#: The accepted ``--fail-on`` policies, loosest first.
FAIL_ON_CHOICES: Tuple[str, ...] = ("never", "info", "warning", "error")


def add_fail_on_argument(parser: argparse.ArgumentParser, default: str = "warning") -> None:
    """Attach the standard ``--fail-on`` option to ``parser``."""
    parser.add_argument(
        "--fail-on",
        choices=FAIL_ON_CHOICES,
        default=default,
        help=(
            "exit non-zero on findings at or above this severity "
            "('never' always exits 0; default: %(default)s)"
        ),
    )


def gate_exit_code(findings: Sequence[Finding], fail_on: str) -> int:
    """The process exit code for ``findings`` under the ``fail_on`` policy.

    Suppressed findings (``# repro: allow[...]``) never trip the gate.
    The named policies are severity thresholds: ``info`` fails on any
    unsuppressed finding, ``warning`` on warnings and errors (advisory
    info findings report without failing), ``error`` lets warnings
    through so CI can gate hard defects while a warning backlog is being
    burned down, and ``never`` is report-only.
    """
    if fail_on not in FAIL_ON_CHOICES:
        raise ValueError(
            f"unknown fail-on policy {fail_on!r}; known: {', '.join(FAIL_ON_CHOICES)}"
        )
    if fail_on == "never":
        return 0
    threshold = Severity(fail_on).rank
    active = [
        f for f in findings
        if not f.suppressed and f.severity.rank >= threshold
    ]
    return 1 if active else 0
