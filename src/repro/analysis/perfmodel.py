"""Cost/hotness layer for the profile-guided perf rule pack.

The PERF-* rules (:mod:`repro.analysis.rules.perf`) are heuristic: an
allocation inside a loop is only worth fixing when the loop actually
runs on the hot path.  This module supplies the two facts the rules
need:

* **loop structure** — :func:`natural_loops` recovers loops from the
  back-edges of a :class:`repro.analysis.flow.cfg.CFG`, so ``while``
  loops with ``continue``/``break`` and nested loops are modelled the
  way control actually flows, not by syntactic nesting alone;
* **measured hotness** — :class:`HotnessModel` ingests the
  ``sim.dispatch.<qualname>`` counters that the profiler's simulator tap
  records (trace format v2, top-level ``"perf"`` section — see
  :mod:`repro.obs.perf`), matches them against the lint batch's call
  graph, and closes over :meth:`CallGraph.reachable_from` so a function
  called *from* a hot dispatch root is hot too.

``repro lint --pack perf --profile TRACE.json`` loads the model with
:func:`load_hot_profile`; findings in measured-hot functions escalate
from info to warning, which is what the shared ``--fail-on warning``
gate keys on.  A malformed or missing profile raises
:class:`ProfileError` — the CLI turns that into a clear message and
exit code 2 rather than silently linting without hotness data.
"""

from __future__ import annotations

import ast
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.astutil import dotted_name, import_aliases, resolve_name
from repro.analysis.engine import ModuleInfo
from repro.analysis.flow.callgraph import CallGraph, FunctionInfo
from repro.analysis.flow.cfg import CFG

__all__ = [
    "HOT_COUNTER_PREFIX",
    "Loop",
    "LoopIndex",
    "ProfileError",
    "HotnessModel",
    "hot_call_edges",
    "load_hot_profile",
    "natural_loops",
    "loop_index",
]

#: The profiler's per-callback dispatch counters (``repro.obs.perf``
#: taps the simulator bus and counts ``sim.dispatch.<__qualname__>``).
HOT_COUNTER_PREFIX = "sim.dispatch."

#: The functions that *fire* those counters.  ``sim.dispatch.*`` is
#: recorded by a tap on :class:`repro.events.simulator.Simulator`, so by
#: the trace-format contract the simulator's event loop runs once per
#: counted dispatch — it is hot whenever any dispatch counter is, even
#: though no counter names it and the callback invocation is dynamic.
DISPATCH_LOOP_TAILS = ("Simulator.step", "Simulator.run")


class ProfileError(Exception):
    """A ``--profile`` file that cannot be used as hot-path data."""


# ----------------------------------------------------------------------
# Loop structure from CFG back-edges
# ----------------------------------------------------------------------
@dataclass
class Loop:
    """One natural loop of a function's CFG.

    ``lines`` covers every source line whose statement sits inside the
    loop body (including the header's test, re-evaluated per iteration);
    ``depth`` is 1 for an outermost loop, 2 for a loop nested in one
    other loop, and so on.
    """

    header_line: int
    blocks: Set[int] = field(default_factory=set)
    lines: Set[int] = field(default_factory=set)
    depth: int = 1


def natural_loops(cfg: CFG) -> List[Loop]:
    """The natural loops of ``cfg``, recovered from its back-edges.

    For each back edge *tail → header*, the loop body is the header
    plus every block that reaches the tail without passing through the
    header (the textbook construction).  The CFG builder only tags
    ``continue`` edges with kind ``back``; the ordinary body-end →
    loop-head edge keeps the body's own dangling kind (``next``,
    ``false`` for a nested loop's exhaust, ...).  Block ids are
    allocated in program order and the only edges into a ``for`` /
    ``while`` head from a later block are loop-closing ones, so any
    retreating edge into a loop-head block is a back edge too.
    Multiple back edges to one header (``continue`` plus the body's
    end) merge into one loop.
    """
    loop_heads = {
        block_id
        for block_id, block in cfg.blocks.items()
        if block.label in ("for", "while")
    }
    preds: Dict[int, List[int]] = {}
    for edge in cfg.edges:
        preds.setdefault(edge.dst, []).append(edge.src)

    bodies: Dict[int, Set[int]] = {}
    for edge in cfg.edges:
        retreating = edge.dst in loop_heads and edge.dst < edge.src
        if edge.kind != "back" and not retreating:
            continue
        header, tail = edge.dst, edge.src
        body = bodies.setdefault(header, {header})
        stack = [tail]
        while stack:
            block = stack.pop()
            if block in body:
                continue
            body.add(block)
            stack.extend(preds.get(block, ()))

    loops: List[Loop] = []
    for header, blocks in sorted(bodies.items()):
        loop = Loop(header_line=cfg.blocks[header].line, blocks=set(blocks))
        for block_id in blocks:
            block = cfg.blocks[block_id]
            if block.synthetic:
                continue
            if block.stmt is not None:
                end = getattr(block.stmt, "end_lineno", None) or block.line
                loop.lines.update(range(block.stmt.lineno, end + 1))
            elif block.line:
                loop.lines.add(block.line)
        loops.append(loop)

    for loop in loops:
        loop.depth = 1 + sum(
            1 for other in loops if other is not loop and loop.blocks < other.blocks
        )
    return loops


class LoopIndex:
    """Line → loop lookups over one function's loops."""

    def __init__(self, loops: List[Loop]):
        self.loops = loops

    def innermost(self, line: int) -> Optional[Loop]:
        """The smallest loop whose body contains ``line``, if any."""
        best: Optional[Loop] = None
        for loop in self.loops:
            if line in loop.lines and (
                best is None or len(loop.lines) < len(best.lines)
            ):
                best = loop
        return best

    def depth(self, line: int) -> int:
        """Loop-nesting depth of ``line`` (0 = not inside any loop)."""
        loop = self.innermost(line)
        return loop.depth if loop is not None else 0


def loop_index(cfg: CFG) -> LoopIndex:
    """Convenience: :class:`LoopIndex` over :func:`natural_loops`."""
    return LoopIndex(natural_loops(cfg))


# ----------------------------------------------------------------------
# Hotness-only call edges
# ----------------------------------------------------------------------
class _HotScope:
    """Module-level name resolution rebuilt for the hotness overlay."""

    def __init__(self, info: ModuleInfo):
        self.aliases = import_aliases(info.tree)
        self.classes: Dict[str, str] = {}
        self.funcs: Dict[str, str] = {}
        for child in info.tree.body:
            if isinstance(child, ast.ClassDef):
                self.classes[child.name] = f"{info.module}.{child.name}"
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.funcs[child.name] = f"{info.module}.{child.name}"

    def resolve_class(
        self, dotted: str, known: Mapping[str, List[str]]
    ) -> Optional[str]:
        if "." not in dotted and dotted in self.classes:
            qualname = self.classes[dotted]
            return qualname if qualname in known else None
        full = resolve_name(dotted, self.aliases)
        return full if full in known else None


def _class_from_annotation(
    ann: ast.expr, scope: _HotScope, known: Mapping[str, List[str]]
) -> Optional[str]:
    """Batch class named by an annotation, unwrapping Optional[...]."""
    if isinstance(ann, ast.Subscript):
        base = dotted_name(ann.value)
        if base is not None and base.rsplit(".", 1)[-1] == "Optional":
            return _class_from_annotation(ann.slice, scope, known)
        return None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            parsed = ast.parse(ann.value, mode="eval").body
        except SyntaxError:
            return None
        return _class_from_annotation(parsed, scope, known)
    dotted = dotted_name(ann)
    if dotted is None:
        return None
    return scope.resolve_class(dotted, known)


def _transitive_subclasses(
    known: Mapping[str, List[str]]
) -> Dict[str, Set[str]]:
    direct: Dict[str, Set[str]] = {}
    for cls, bases in known.items():
        for base in bases:
            if base in known:
                direct.setdefault(base, set()).add(cls)
    closed: Dict[str, Set[str]] = {}
    for cls in known:
        seen: Set[str] = set()
        queue = deque(direct.get(cls, ()))
        while queue:
            sub = queue.popleft()
            if sub in seen:
                continue
            seen.add(sub)
            queue.extend(direct.get(sub, ()))
        if seen:
            closed[cls] = seen
    return closed


def hot_call_edges(
    graph: CallGraph, modules: Sequence[ModuleInfo]
) -> Dict[str, Set[str]]:
    """Supplementary call edges used only for hotness propagation.

    The flow rules keep :class:`CallGraph` a strict under-approximation
    (a spurious edge there turns into a spurious FLOW warning).  Hotness
    wants the opposite bias — a function that *might* run under a hot
    dispatch root should rank as hot — so this overlay adds the edges
    the precise graph deliberately omits:

    * calls inside **lambda bodies** (the scheduler wraps work in
      ``lambda: self._check_resync(...)`` callbacks, which is exactly
      how dispatch-counter roots fan out);
    * ``self.attr.m()`` and ``param.m()`` calls resolved through
      **inferred types**: ``self.x = ClassName(...)`` constructor
      assignments, ``self.x = param`` / ``self.x: T`` with an annotated
      batch class, and annotated function parameters;
    * **subclass overrides** of every resolved method, since dynamic
      dispatch may land on any of them at run time.

    Returned as caller qualname → extra callee qualnames; feed it to
    :meth:`HotnessModel.reasons_for` alongside the precise graph.
    """
    known = graph.known_classes()
    subclasses = _transitive_subclasses(known)
    scopes: Dict[str, _HotScope] = {}
    for info in modules:
        scopes.setdefault(info.module, _HotScope(info))

    def method_targets(class_qualname: str, name: str) -> Set[str]:
        targets: Set[str] = set()
        base = graph.lookup_method(class_qualname, name)
        if base is not None:
            targets.add(base)
        for sub in subclasses.get(class_qualname, ()):
            override = graph.lookup_method(sub, name)
            if override is not None:
                targets.add(override)
        return targets

    def param_types(fi: FunctionInfo, scope: _HotScope) -> Dict[str, str]:
        types: Dict[str, str] = {}
        args = fi.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is None:
                continue
            cls = _class_from_annotation(arg.annotation, scope, known)
            if cls is not None:
                types[arg.arg] = cls
        return types

    # Pass 1: (class, attribute) -> inferred batch class, from every
    # method body (constructor calls, annotated parameters, AnnAssign).
    attr_types: Dict[Tuple[str, str], str] = {}
    for fi in graph.functions.values():
        if fi.class_qualname is None:
            continue
        scope = scopes.get(fi.module)
        if scope is None:
            continue
        params = param_types(fi, scope)
        for node in ast.walk(fi.node):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            inferred: Optional[str] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                inferred = _class_from_annotation(
                    node.annotation, scope, known
                )
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id in ("self", "cls")
            ):
                continue
            if inferred is None and value is not None:
                if isinstance(value, ast.Call):
                    dotted = dotted_name(value.func)
                    if dotted is not None:
                        inferred = scope.resolve_class(dotted, known)
                elif isinstance(value, ast.Name):
                    inferred = params.get(value.id)
            if inferred is not None:
                attr_types.setdefault(
                    (fi.class_qualname, target.attr), inferred
                )

    # Pass 2: resolve every call (lambda bodies included) through the
    # inferred types and subclass overrides.
    extra: Dict[str, Set[str]] = {}
    for fi in graph.functions.values():
        scope = scopes.get(fi.module)
        if scope is None:
            continue
        params = param_types(fi, scope)
        targets: Set[str] = set()
        for node in ast.walk(fi.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                qualname = scope.funcs.get(func.id)
                if qualname is None:
                    full = resolve_name(func.id, scope.aliases)
                    if full in graph.functions:
                        qualname = full
                    elif full in known:
                        targets |= method_targets(full, "__init__")
                if qualname is not None and qualname in graph.functions:
                    targets.add(qualname)
                continue
            if not isinstance(func, ast.Attribute):
                continue
            receiver = func.value
            if isinstance(receiver, ast.Name):
                if receiver.id in ("self", "cls") and fi.class_qualname:
                    targets |= method_targets(fi.class_qualname, func.attr)
                else:
                    cls = params.get(receiver.id) or fi.local_types.get(
                        receiver.id
                    )
                    if cls is not None:
                        targets |= method_targets(cls, func.attr)
            elif (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id in ("self", "cls")
                and fi.class_qualname is not None
            ):
                cls = attr_types.get((fi.class_qualname, receiver.attr))
                if cls is not None:
                    targets |= method_targets(cls, func.attr)
        targets.discard(fi.qualname)
        if targets:
            extra[fi.qualname] = targets
    return extra


def _normalize_tail(tail: str) -> str:
    """Counter tail → matchable qualname: drop ``<locals>`` segments and
    trailing ``<lambda>`` so a lambda callback attributes to the function
    that created it (``A.notify.<locals>.<lambda>`` → ``A.notify``)."""
    parts = [part for part in tail.split(".") if part != "<locals>"]
    while parts and parts[-1] == "<lambda>":
        parts.pop()
    return ".".join(parts)


# ----------------------------------------------------------------------
# Measured hotness
# ----------------------------------------------------------------------
class HotnessModel:
    """Which functions measured data proves hot, and why.

    ``dispatch_counts`` maps a callback ``__qualname__`` tail (e.g.
    ``TrainingEngine._on_compute_done``) to its fired-event count.  The
    model is *bound* to a lint batch lazily: counter tails match call
    graph qualnames by dotted suffix (the counter has no module prefix),
    and everything reachable from a matched root inherits its hotness,
    attributed to the hottest root that reaches it.
    """

    def __init__(self, dispatch_counts: Mapping[str, float]):
        self.dispatch_counts: Dict[str, float] = dict(dispatch_counts)
        self._bound_graph_id: Optional[int] = None
        self._reasons: Dict[str, str] = {}

    def reasons_for(
        self,
        graph: CallGraph,
        extra_edges: Optional[Mapping[str, Set[str]]] = None,
    ) -> Dict[str, str]:
        """qualname → human-readable hotness reason over ``graph``.

        ``extra_edges`` is the :func:`hot_call_edges` overlay; the
        closure follows both the precise edges and the overlay, so a
        tuning routine called through ``self.tuner.retune(...)`` from a
        hot scheduler callback still ranks hot.
        """
        if self._bound_graph_id == id(graph):
            return self._reasons
        roots: List[Tuple[float, str, str]] = []
        tails: Dict[str, float] = dict(self.dispatch_counts)
        total = sum(tails.values())
        if total > 0:
            # The event loop itself runs once per counted dispatch (the
            # counters are fired by the Simulator tap) — credit it with
            # the total so the dispatch machinery ranks hottest.
            for loop_tail in DISPATCH_LOOP_TAILS:
                tails.setdefault(loop_tail, total)
        for tail, count in tails.items():
            suffix = "." + _normalize_tail(tail)
            for qualname in graph.functions:
                if qualname.endswith(suffix) or qualname == suffix[1:]:
                    roots.append((count, tail, qualname))
        overlay: Mapping[str, Set[str]] = extra_edges or {}
        reasons: Dict[str, str] = {}
        for count, tail, qualname in sorted(roots, key=lambda r: (-r[0], r[1], r[2])):
            if tail in DISPATCH_LOOP_TAILS and tail not in self.dispatch_counts:
                root_reason = f"dispatch loop, {int(count)} events dispatched"
            else:
                root_reason = f"{int(count)} dispatches of {tail}"
            for reached in sorted(self._closure(graph, qualname, overlay)):
                if reached in reasons:
                    continue
                if reached == qualname:
                    reasons[reached] = root_reason
                else:
                    reasons[reached] = f"reachable from {tail} ({int(count)} dispatches)"
        self._bound_graph_id = id(graph)
        self._reasons = reasons
        return reasons

    @staticmethod
    def _closure(
        graph: CallGraph, root: str, overlay: Mapping[str, Set[str]]
    ) -> Set[str]:
        """Functions reachable from ``root`` over graph + overlay edges."""
        seen: Set[str] = {root}
        queue = deque([root])
        while queue:
            current = queue.popleft()
            callees = [edge.callee for edge in graph.edges.get(current, [])]
            callees.extend(overlay.get(current, ()))
            for callee in callees:
                if callee not in seen and callee in graph.functions:
                    seen.add(callee)
                    queue.append(callee)
        return seen

    def hot_reason(
        self,
        graph: CallGraph,
        qualname: str,
        extra_edges: Optional[Mapping[str, Set[str]]] = None,
    ) -> Optional[str]:
        """Why ``qualname`` is hot under ``graph``, or None if it is not."""
        return self.reasons_for(graph, extra_edges).get(qualname)


def load_hot_profile(path: str) -> HotnessModel:
    """Build a :class:`HotnessModel` from a ``--trace`` capture.

    Accepts either a full trace file whose top-level ``"perf"`` key holds
    a profiler snapshot (trace format v2, what ``repro run --trace``
    writes) or a bare snapshot with its own ``"counters"`` mapping.
    Anything else — unreadable file, invalid JSON, no perf counters —
    raises :class:`ProfileError` with a message naming the file.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ProfileError(f"cannot read profile {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ProfileError(f"profile {path!r} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProfileError(
            f"profile {path!r} must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    perf = payload.get("perf") if "perf" in payload else payload
    counters = perf.get("counters") if isinstance(perf, dict) else None
    if not isinstance(counters, dict):
        raise ProfileError(
            f"profile {path!r} carries no perf counters — expected a "
            "--trace capture with a trace-format-v2 'perf' section "
            "(repro run --trace) or a bare profiler snapshot"
        )
    counts: Dict[str, float] = {}
    for name, value in counters.items():
        if not isinstance(name, str) or isinstance(value, bool) or not isinstance(
            value, (int, float)
        ):
            raise ProfileError(
                f"profile {path!r}: counter {name!r} -> {value!r} is not "
                "a name -> number pair"
            )
        if name.startswith(HOT_COUNTER_PREFIX) and value > 0:
            counts[name[len(HOT_COUNTER_PREFIX):]] = float(value)
    return HotnessModel(counts)
