"""The ``repro modelcheck`` harness: schemes, mutants, conformance, report.

Three sections, each optional from the CLI:

* **scheme verification** — exhaustively explore the model for each
  requested scheme and check every invariant, deadlock freedom, and
  fair termination;
* **mutation harness** — re-run the exploration with each seeded bug
  from :mod:`repro.analysis.model.mutations` injected and require that
  the checker rejects every one with a counterexample;
* **conformance** — shadow one seeded DES run per scheme against the
  model (see :mod:`repro.analysis.model.conformance`).

Everything lands in one :class:`ModelCheckReport` whose findings are
ordinary :class:`repro.analysis.findings.Finding` objects, so the shared
``--fail-on`` gate and the text/JSON reporters work unchanged and the
JSON artifact CI uploads carries the full counterexample traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.findings import Finding, Severity
from repro.analysis.model import specsync as _specsync_module
from repro.analysis.model.checker import CheckResult, explore
from repro.analysis.model.conformance import ConformanceReport, run_des_conformance
from repro.analysis.model.mutations import MUTATIONS, Mutation
from repro.analysis.model.specsync import SCHEMES, SpecSyncModel

__all__ = [
    "SchemeCheck",
    "MutantOutcome",
    "ModelCheckReport",
    "run_modelcheck",
]

#: Where model-level findings anchor: the protocol model is the spec.
_MODEL_PATH: str = _specsync_module.__file__ or "specsync.py"


@dataclass
class SchemeCheck:
    """One scheme's exhaustive verification result."""

    scheme: str
    result: CheckResult
    settings: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {
            "scheme": self.scheme,
            "settings": self.settings,
            **self.result.to_dict(),
        }


@dataclass
class MutantOutcome:
    """Whether the checker rejected one seeded mutation."""

    mutation: Mutation
    caught: bool
    violations: List[str] = field(default_factory=list)
    counterexample: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {
            "mutation": self.mutation.name,
            "description": self.mutation.description,
            "scheme": self.mutation.scheme,
            "expect": self.mutation.expect,
            "caught": self.caught,
            "violations": list(self.violations),
            "counterexample": list(self.counterexample),
        }


@dataclass
class ModelCheckReport:
    """Everything one ``repro modelcheck`` invocation produced."""

    schemes: List[SchemeCheck] = field(default_factory=list)
    mutants: List[MutantOutcome] = field(default_factory=list)
    conformance: List[ConformanceReport] = field(default_factory=list)

    @property
    def findings(self) -> List[Finding]:
        """Model-level defects as lint findings (for the shared gate)."""
        findings: List[Finding] = []
        for check in self.schemes:
            for violation in check.result.violations:
                findings.append(
                    Finding(
                        rule_id=f"MODEL-{violation.kind.upper().replace('_', '-')}",
                        severity=Severity.ERROR,
                        path=_MODEL_PATH,
                        line=1,
                        message=(
                            f"scheme {check.scheme}: {violation.name}: "
                            f"{violation.message} "
                            f"(counterexample: {len(violation.trace)} steps)"
                        ),
                    )
                )
            if check.result.truncated:
                findings.append(
                    Finding(
                        rule_id="MODEL-TRUNCATED",
                        severity=Severity.ERROR,
                        path=_MODEL_PATH,
                        line=1,
                        message=(
                            f"scheme {check.scheme}: exploration truncated at "
                            f"{check.result.states} states — verification incomplete"
                        ),
                    )
                )
        for outcome in self.mutants:
            if not outcome.caught:
                findings.append(
                    Finding(
                        rule_id="MODEL-MUTANT-SURVIVED",
                        severity=Severity.ERROR,
                        path=_MODEL_PATH,
                        line=1,
                        message=(
                            f"seeded mutation {outcome.mutation.name!r} "
                            f"({outcome.mutation.description}) was not "
                            f"rejected — expected {outcome.mutation.expect}"
                        ),
                    )
                )
        for report in self.conformance:
            for violation in report.violations:
                findings.append(
                    Finding(
                        rule_id="MODEL-CONFORMANCE",
                        severity=Severity.ERROR,
                        path=_MODEL_PATH,
                        line=1,
                        message=f"scheme {report.scheme} (DES run): {violation}",
                    )
                )
        return findings

    @property
    def ok(self) -> bool:
        """True when every section passed."""
        return not self.findings

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation, counterexample traces included."""
        return {
            "schemes": [c.to_dict() for c in self.schemes],
            "mutants": [m.to_dict() for m in self.mutants],
            "conformance": [c.to_dict() for c in self.conformance],
            "findings": [f.to_dict() for f in self.findings],
            "ok": self.ok,
        }

    def render_text(self) -> str:
        """Human-readable multi-section report."""
        lines: List[str] = []
        for check in self.schemes:
            result = check.result
            status = "ok" if result.ok else f"{len(result.violations)} violation(s)"
            lines.append(
                f"[{check.scheme}] {result.states} states, "
                f"{result.transitions} transitions, depth {result.depth}, "
                f"{result.terminal_states} terminal, "
                f"{result.elapsed_s:.2f}s: {status}"
            )
            for violation in result.violations:
                lines.append(violation.render())
            if result.truncated:
                lines.append(
                    f"  MODEL-TRUNCATED: exploration stopped at "
                    f"{result.states} states — verification incomplete"
                )
        if self.mutants:
            caught = sum(1 for m in self.mutants if m.caught)
            lines.append(f"mutation harness: {caught}/{len(self.mutants)} mutants rejected")
            for outcome in self.mutants:
                mark = "caught" if outcome.caught else "SURVIVED"
                detail = f" via {', '.join(outcome.violations)}" if outcome.violations else ""
                lines.append(f"  [{mark}] {outcome.mutation.name}{detail}")
                if outcome.caught and outcome.counterexample:
                    lines.extend(outcome.counterexample)
        for report in self.conformance:
            status = "conformant" if report.ok else f"{len(report.violations)} violation(s)"
            lines.append(
                f"conformance [{report.scheme}] seed {report.seed}: "
                f"{report.transitions_checked} transitions shadowed "
                f"({report.inserted_checks} checks inserted): {status}"
            )
            for violation in report.violations:
                lines.append(f"  {violation}")
        lines.append("modelcheck: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def _mutant_model(mutation: Mutation, num_workers: int, max_iterations: int) -> SpecSyncModel:
    """A model seeded with one mutation, sized so the bug is reachable."""
    return SpecSyncModel(
        num_workers=num_workers,
        scheme=mutation.scheme,
        # double-inflight needs two live windows, i.e. three iterations.
        max_iterations=max(max_iterations, 3),
        threshold=0.5 * num_workers,
        staleness_bound=0,  # tightest SSP bound — off-by-one surfaces fastest
        abort_budget=1,
        mutation=mutation.name,
    )


def run_mutation_harness(
    num_workers: int = 2, max_iterations: int = 3, max_states: int = 2_000_000
) -> List[MutantOutcome]:
    """Explore every seeded mutant; report which the checker rejected."""
    outcomes: List[MutantOutcome] = []
    for mutation in MUTATIONS:
        model = _mutant_model(mutation, num_workers, max_iterations)
        result = explore(model, max_states=max_states, max_violations=3)
        first = result.violations[0] if result.violations else None
        outcomes.append(
            MutantOutcome(
                mutation=mutation,
                caught=bool(result.violations),
                violations=[f"{v.kind} [{v.name}]" for v in result.violations],
                counterexample=list(first.trace) if first is not None else [],
            )
        )
    return outcomes


def run_modelcheck(
    schemes: Optional[Sequence[str]] = None,
    workers: int = 3,
    max_iterations: int = 2,
    abort_rate: float = 0.5,
    staleness_bound: int = 1,
    abort_budget: int = 1,
    max_states: int = 2_000_000,
    mutants: bool = False,
    conformance: bool = False,
    seed: int = 0,
) -> ModelCheckReport:
    """Run the requested modelcheck sections and collect one report."""
    report = ModelCheckReport()
    for scheme in schemes if schemes is not None else SCHEMES:
        model = SpecSyncModel(
            num_workers=workers,
            scheme=scheme,
            max_iterations=max_iterations,
            threshold=abort_rate * workers,
            staleness_bound=staleness_bound,
            abort_budget=abort_budget,
        )
        result = explore(model, max_states=max_states)
        report.schemes.append(
            SchemeCheck(
                scheme=scheme,
                result=result,
                settings={
                    "workers": workers,
                    "max_iterations": max_iterations,
                    "threshold": abort_rate * workers,
                    "staleness_bound": staleness_bound,
                    "abort_budget": abort_budget,
                },
            )
        )
    if mutants:
        report.mutants = run_mutation_harness(max_states=max_states)
    if conformance:
        for scheme in schemes if schemes is not None else SCHEMES:
            report.conformance.append(
                run_des_conformance(
                    scheme=scheme,
                    workers=workers,
                    seed=seed,
                    staleness_bound=staleness_bound,
                    abort_budget=abort_budget,
                    abort_rate=abort_rate,
                )
            )
    return report
