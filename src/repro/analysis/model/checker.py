"""A small zero-dependency explicit-state model checker.

The checker exhaustively enumerates the reachable state space of a
*model* — any object exposing the small duck-typed surface below — by
breadth-first (default) or depth-first search over hashed states, and
checks four property classes on the way:

* **state invariants** — predicates over every reachable state;
* **action invariants** — predicates over every fired transition
  ``(pre, action, post)``, recomputed independently of the transition
  generator so a buggy generator cannot hide its own defect;
* **deadlock** — a state with no enabled actions that the model does not
  consider terminal;
* **liveness / termination** — every reachable state must be able to
  reach a terminal state (backward reachability from the terminal set);
  additionally, a quiescent terminal state must have no in-flight
  messages (a message sent but never delivered was *dropped*).

Every violation carries the shortest counterexample the search strategy
admits, reconstructed from parent pointers and rendered with the model's
own vocabulary (:meth:`render_action` / :meth:`render_state`).

Model surface (duck-typed, no base class needed)::

    model.initial_state() -> state            # hashable
    model.successors(state) -> [(action, state), ...]
    model.is_terminal(state) -> bool
    model.in_flight(state) -> int             # undelivered messages
    model.render_state(state) -> str
    model.render_action(action) -> str
    model.state_invariants  -> [(name, fn(state) -> Optional[str])]
    model.action_invariants -> [(name, fn(pre, action, post) -> Optional[str])]

States must be hashable value objects (tuples of tuples); the checker
never mutates them.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

__all__ = ["Violation", "CheckResult", "explore"]

#: Counterexample steps beyond which the rendered trace is elided in the
#: middle — full traces still land in the JSON artifact.
_TRACE_RENDER_CAP = 60


@dataclass(frozen=True)
class Violation:
    """One property violation plus its counterexample trace.

    ``kind`` is one of ``state-invariant``, ``action-invariant``,
    ``deadlock``, ``livelock``, or ``dropped-message``; ``name`` is the
    violated invariant's name (or the kind again for the built-in
    checks).  ``trace`` is the rendered shortest path from the initial
    state to the violating state/transition, one step per entry.
    """

    kind: str
    name: str
    message: str
    trace: Tuple[str, ...]
    state: str

    def render(self) -> str:
        """Multi-line human-readable form: headline, then the trace."""
        lines = [f"{self.kind} [{self.name}]: {self.message}"]
        steps = list(self.trace)
        if len(steps) > _TRACE_RENDER_CAP:
            head = steps[: _TRACE_RENDER_CAP // 2]
            tail = steps[-_TRACE_RENDER_CAP // 2 :]
            steps = head + [f"  ... ({len(self.trace) - len(head) - len(tail)} steps elided) ..."] + tail
        lines.extend(steps)
        lines.append(f"  final state: {self.state}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (the CI counterexample artifact)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "message": self.message,
            "trace": list(self.trace),
            "state": self.state,
        }


@dataclass
class CheckResult:
    """Outcome of one exhaustive exploration."""

    states: int
    transitions: int
    depth: int
    terminal_states: int
    violations: List[Violation] = field(default_factory=list)
    elapsed_s: float = 0.0
    truncated: bool = False

    @property
    def ok(self) -> bool:
        """True when the exploration completed with zero violations."""
        return not self.violations and not self.truncated

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {
            "states": self.states,
            "transitions": self.transitions,
            "depth": self.depth,
            "terminal_states": self.terminal_states,
            "violations": [v.to_dict() for v in self.violations],
            "elapsed_s": round(self.elapsed_s, 6),
            "truncated": self.truncated,
            "ok": self.ok,
        }


class _Search:
    """Shared bookkeeping for one exploration run."""

    def __init__(self, model: Any, max_violations: int):
        self.model = model
        self.max_violations = max_violations
        init = model.initial_state()
        self.states: List[Any] = [init]
        self.index: Dict[Any, int] = {init: 0}
        #: parent pointer per state id: (parent id, action) — None at the root
        self.parents: List[Optional[Tuple[int, Any]]] = [None]
        self.depths: List[int] = [0]
        #: predecessor ids per state id (for backward liveness reachability)
        self.preds: List[List[int]] = [[]]
        self.terminal_ids: List[int] = []
        self.violations: List[Violation] = []
        #: (kind, name) pairs already reported — one counterexample per
        #: property keeps the report readable without hiding distinct bugs
        self.reported: Set[Tuple[str, str]] = set()

    def trace_to(self, sid: int, extra: Optional[str] = None) -> Tuple[str, ...]:
        """Rendered path root → ``sid`` (+ one extra step), via parents."""
        actions: List[Any] = []
        cursor = sid
        while self.parents[cursor] is not None:
            parent, action = self.parents[cursor]  # type: ignore[misc]
            actions.append(action)
            cursor = parent
        actions.reverse()
        lines = [f"  init: {self.model.render_state(self.states[0])}"]
        for step, action in enumerate(actions, start=1):
            lines.append(f"  step {step}: {self.model.render_action(action)}")
        if extra is not None:
            lines.append(f"  step {len(actions) + 1}: {extra}")
        return tuple(lines)

    def report(
        self,
        kind: str,
        name: str,
        message: str,
        sid: int,
        state: Any,
        extra: Optional[str] = None,
    ) -> None:
        """Record a violation unless ``(kind, name)`` was already seen."""
        if (kind, name) in self.reported:
            return
        self.reported.add((kind, name))
        self.violations.append(
            Violation(
                kind=kind,
                name=name,
                message=message,
                trace=self.trace_to(sid, extra=extra),
                state=self.model.render_state(state),
            )
        )

    @property
    def full(self) -> bool:
        """Whether the violation budget is exhausted."""
        return len(self.violations) >= self.max_violations


def _check_state_invariants(search: _Search, sid: int, state: Any) -> None:
    for name, fn in search.model.state_invariants:
        if ("state-invariant", name) in search.reported:
            continue
        message = fn(state)
        if message is not None:
            search.report("state-invariant", name, message, sid, state)


def explore(
    model: Any,
    max_states: int = 2_000_000,
    max_violations: int = 10,
    check_liveness: bool = True,
    strategy: str = "bfs",
) -> CheckResult:
    """Exhaustively explore ``model`` and check all its properties.

    ``strategy`` is ``"bfs"`` (default — counterexamples are shortest)
    or ``"dfs"`` (lower peak frontier, longer traces).  ``max_states``
    bounds the exploration; hitting it sets ``truncated`` on the result
    so a silently partial verification can never read as a pass.
    """
    if strategy not in ("bfs", "dfs"):
        raise ValueError(f"unknown search strategy {strategy!r}")
    started = time.perf_counter()
    search = _Search(model, max_violations)
    transitions = 0
    max_depth = 0
    truncated = False

    _check_state_invariants(search, 0, search.states[0])
    if model.is_terminal(search.states[0]):
        search.terminal_ids.append(0)

    frontier: deque = deque([0])
    pop = frontier.popleft if strategy == "bfs" else frontier.pop
    while frontier and not search.full:
        sid = pop()
        state = search.states[sid]
        successors = model.successors(state)
        if not successors:
            if not model.is_terminal(state):
                search.report(
                    "deadlock",
                    "deadlock",
                    "no enabled actions but the protocol has not terminated",
                    sid,
                    state,
                )
            elif model.in_flight(state) > 0:
                search.report(
                    "dropped-message",
                    "dropped-message",
                    f"terminated with {model.in_flight(state)} message(s) "
                    f"still in flight — sent but never delivered",
                    sid,
                    state,
                )
            continue
        for action, nxt in successors:
            transitions += 1
            for name, fn in model.action_invariants:
                if ("action-invariant", name) in search.reported:
                    continue
                message = fn(state, action, nxt)
                if message is not None:
                    search.report(
                        "action-invariant",
                        name,
                        message,
                        sid,
                        nxt,
                        extra=model.render_action(action),
                    )
            nid = search.index.get(nxt)
            if nid is not None:
                search.preds[nid].append(sid)
                continue
            if len(search.states) >= max_states:
                truncated = True
                continue
            nid = len(search.states)
            search.index[nxt] = nid
            search.states.append(nxt)
            search.parents.append((sid, action))
            search.depths.append(search.depths[sid] + 1)
            search.preds.append([sid])
            if search.depths[nid] > max_depth:
                max_depth = search.depths[nid]
            _check_state_invariants(search, nid, nxt)
            if model.is_terminal(nxt):
                search.terminal_ids.append(nid)
            frontier.append(nid)

    if check_liveness and not truncated and not search.full:
        _check_liveness(search)

    return CheckResult(
        states=len(search.states),
        transitions=transitions,
        depth=max_depth,
        terminal_states=len(search.terminal_ids),
        violations=search.violations,
        elapsed_s=time.perf_counter() - started,
        truncated=truncated,
    )


def _check_liveness(search: _Search) -> None:
    """Fair termination: every state must reach *some* terminal state.

    Backward BFS from the terminal set over recorded predecessor edges;
    any explored state left unreached is a livelock witness (under
    fairness — some infinite schedule avoids termination forever).  The
    shallowest such state gives the shortest counterexample prefix.
    """
    if not search.terminal_ids:
        search.report(
            "livelock",
            "termination",
            "no terminal state is reachable at all",
            0,
            search.states[0],
        )
        return
    live = [False] * len(search.states)
    queue: deque = deque(search.terminal_ids)
    for tid in search.terminal_ids:
        live[tid] = True
    while queue:
        sid = queue.popleft()
        for pred in search.preds[sid]:
            if not live[pred]:
                live[pred] = True
                queue.append(pred)
    dead = [sid for sid, ok in enumerate(live) if not ok]
    if not dead:
        return
    witness = min(dead, key=lambda sid: search.depths[sid])
    search.report(
        "livelock",
        "termination",
        f"{len(dead)} reachable state(s) cannot reach any terminal "
        f"state (fair termination fails); shallowest witness shown",
        witness,
        search.states[witness],
    )
