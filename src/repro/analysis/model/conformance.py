"""Trace conformance: the code checks the model, the model checks the code.

Exhaustive exploration (:func:`repro.analysis.model.checker.explore`)
proves properties of the *model*; this module closes the loop by
projecting *real executions* onto the model's transitions and failing if
any observed step is not model-legal.  Two execution substrates are
covered:

* **DES runs** — a :class:`repro.events.Simulator` tap (the
  multi-subscriber tap bus) observes every ``Network._deliver`` and
  ``TrainingEngine._on_compute_done`` event of a live engine run and
  feeds a :class:`ShadowTracker`, which steps an *unbounded*
  :class:`~repro.analysis.model.specsync.SpecSyncModel` along the
  observed actions;
* **multiprocess runs** — the server process records its wire-tag
  stream (``("pull", w)`` / ``("push", w)``), which
  :func:`replay_wire_trace` replays through the model's per-worker phase
  machine (the projection of :class:`WorkerState` onto the server-visible
  alphabet).

The scheduler's timer check is internal to the scheduler and invisible
on the wire, so the shadow inserts the ``resync_check`` action lazily
when a RESYNC delivery is observed without a matching in-flight re-sync
— a weak-transition match.  The insertion itself is guarded: it only
succeeds if a bound window with enough peer pushes exists, so an
implementation that re-syncs below the ``ABORT_RATE × m`` threshold (or
without any notify at all) still fails conformance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.model.specsync import (
    COMPUTING,
    PHASE_NAMES,
    PULL_REQ,
    Action,
    SpecSyncModel,
)
from repro.events import Simulator
from repro.netsim.messages import MessageKind

__all__ = [
    "ShadowTracker",
    "ConformanceReport",
    "run_des_conformance",
    "replay_wire_trace",
]

#: Conformance stops collecting after this many violations — once the
#: shadow diverges, every later step would fail for follow-on reasons.
_MAX_VIOLATIONS = 3


class ShadowTracker:
    """Steps a :class:`SpecSyncModel` along an observed action stream.

    The model must be built with ``max_iterations=None`` (real runs are
    not iteration-bounded) and a finite ``window_keep`` (otherwise
    windows the real scheduler checked-and-dropped accumulate forever).
    """

    def __init__(self, model: SpecSyncModel):
        if model.max_iterations is not None:
            raise ValueError("conformance shadowing needs max_iterations=None")
        self.model = model
        self.state = model.initial_state()
        self.steps = 0
        self.inserted_checks = 0
        self.violations: List[str] = []

    @property
    def broken(self) -> bool:
        """Whether shadowing stopped after too many violations."""
        return len(self.violations) >= _MAX_VIOLATIONS

    def observe(
        self, kind: str, worker: int, iteration: Optional[int] = None, time: float = 0.0
    ) -> Optional[str]:
        """Apply one observed action; returns the violation, if any."""
        if self.broken:
            return None
        if kind == "resync" and not self.state.workers[worker].resyncs:
            # The scheduler's check is not a wire event: insert it as the
            # weak transition that must have preceded this delivery.
            error = self._apply("resync_check", worker, iteration, time)
            if error is not None:
                self.violations.append(error)
                return error
            self.inserted_checks += 1
        error = self._apply(kind, worker, iteration, time)
        if error is not None:
            self.violations.append(error)
        return error

    def _apply(
        self, kind: str, worker: int, iteration: Optional[int], time: float
    ) -> Optional[str]:
        for action, nxt in self.model.successors(self.state):
            if action.kind != kind or action.worker != worker:
                continue
            if (
                iteration is not None
                and action.iteration is not None
                and action.iteration != iteration
            ):
                continue
            self.state = nxt
            self.steps += 1
            return None
        observed = Action(kind, worker, iteration)
        return (
            f"observed {observed.render()} at t={time:.6g} is not enabled "
            f"in the model; shadow state: {self.state.render()}"
        )


@dataclass
class ConformanceReport:
    """Outcome of shadowing one real run against the model."""

    scheme: str
    num_workers: int
    seed: int
    events_observed: int = 0
    transitions_checked: int = 0
    inserted_checks: int = 0
    action_counts: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every observed transition was model-legal."""
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {
            "scheme": self.scheme,
            "num_workers": self.num_workers,
            "seed": self.seed,
            "events_observed": self.events_observed,
            "transitions_checked": self.transitions_checked,
            "inserted_checks": self.inserted_checks,
            "action_counts": dict(sorted(self.action_counts.items())),
            "violations": list(self.violations),
            "ok": self.ok,
        }


class _ProjectionTap:
    """A tap-bus subscriber projecting engine events onto model actions."""

    def __init__(self, engine: Any, tracker: ShadowTracker, report: ConformanceReport):
        self.tracker = tracker
        self.report = report
        self._node_to_worker = {w.node_name: w.worker_id for w in engine.workers}

    def __call__(self, time: float, seq: int, fn: Callable, args: tuple) -> None:
        target = getattr(fn, "__func__", fn)
        qualname = getattr(target, "__qualname__", "")
        if qualname == "Network._deliver":
            self._on_delivery(time, args[0])
        elif qualname == "TrainingEngine._on_compute_done":
            self._step("compute_done", args[0].worker_id, None, time)

    def _on_delivery(self, time: float, message: Any) -> None:
        kind = message.kind
        if kind is MessageKind.PULL_REQUEST:
            self._step(kind.wire_name, message.payload, None, time)
        elif kind in (MessageKind.PULL_RESPONSE, MessageKind.PUSH_ACK):
            self._step(kind.wire_name, self._node_to_worker[message.dst], None, time)
        elif kind is MessageKind.PUSH:
            self._step(kind.wire_name, self._node_to_worker[message.src], None, time)
        elif kind in (MessageKind.NOTIFY, MessageKind.RESYNC):
            # NOTIFY carries (worker, iteration); RESYNC additionally
            # carries the triggering peer-push count, which the protocol
            # model does not track.
            worker, iteration = message.payload[0], message.payload[1]
            self._step(kind.wire_name, worker, iteration, time)

    def _step(self, kind: str, worker: int, iteration: Optional[int], time: float) -> None:
        self.report.events_observed += 1
        self.report.action_counts[kind] = self.report.action_counts.get(kind, 0) + 1
        self.tracker.observe(kind, worker, iteration, time)


def _build_policy(scheme: str, abort_time_s: float, abort_rate: float, staleness_bound: int):
    from repro.core.hyperparams import SpecSyncHyperparams
    from repro.core.specsync import SpecSyncPolicy
    from repro.sync import AspPolicy, BspPolicy, SspPolicy

    if scheme == "asp":
        return AspPolicy()
    if scheme == "bsp":
        return BspPolicy()
    if scheme == "ssp":
        return SspPolicy(staleness_bound=staleness_bound)
    if scheme == "specsync":
        # Cherrypick (fixed hyperparameters): the model's threshold must
        # match the scheduler's for the whole run, which adaptive
        # retuning would break.
        return SpecSyncPolicy.cherrypick(
            SpecSyncHyperparams(abort_time_s=abort_time_s, abort_rate=abort_rate)
        )
    raise ValueError(f"unknown scheme {scheme!r}")


def run_des_conformance(
    scheme: str = "specsync",
    workers: int = 3,
    seed: int = 0,
    horizon_s: float = 40.0,
    abort_time_s: float = 1.0,
    abort_rate: float = 0.4,
    staleness_bound: int = 1,
    abort_budget: int = 1,
) -> ConformanceReport:
    """Run one seeded DES run under the tap and shadow it with the model.

    Builds the ``tiny`` workload on a homogeneous cluster (deterministic
    link — no jitter), installs the projection tap, runs the engine to
    ``horizon_s``, and reports every observed transition that was not
    model-legal.
    """
    from repro.cluster.spec import ClusterSpec
    from repro.workloads import tiny_workload

    policy = _build_policy(scheme, abort_time_s, abort_rate, staleness_bound)
    engine = tiny_workload().build_engine(
        ClusterSpec.homogeneous(workers),
        policy,
        seed=seed,
        horizon_s=horizon_s,
        early_stop=False,
        max_aborts_per_iteration=abort_budget,
    )
    model = SpecSyncModel(
        num_workers=workers,
        scheme=scheme,
        max_iterations=None,
        threshold=workers * abort_rate if scheme == "specsync" else None,
        staleness_bound=staleness_bound,
        abort_budget=abort_budget,
        window_keep=8,
    )
    report = ConformanceReport(scheme=scheme, num_workers=workers, seed=seed)
    tracker = ShadowTracker(model)
    tap = _ProjectionTap(engine, tracker, report)
    Simulator.install_tap(tap)
    try:
        engine.run()
    finally:
        Simulator.remove_tap(tap)
    report.transitions_checked = tracker.steps
    report.inserted_checks = tracker.inserted_checks
    report.violations = list(tracker.violations)
    return report


def replay_wire_trace(
    trace: Sequence[Tuple[str, int]], num_workers: int, abort_budget: int = 1
) -> List[str]:
    """Replay a multiprocess server wire-tag trace through the model.

    ``trace`` is the server's request stream in processing order:
    ``("pull", worker_id)`` / ``("push", worker_id)``.  Each worker's
    stream is replayed through the projection of the model's
    :class:`WorkerState` phase machine onto the server-visible alphabet —
    a served pull collapses PULL_REQUEST/PULL_RESPONSE into entering
    ``COMPUTING``, an applied push collapses compute_done/PUSH/PUSH_ACK
    into completing the iteration, and a re-pull without an intervening
    push is exactly the abort-restart transition, legal only while the
    abort budget lasts.  Returns every violation found (empty = conformant).
    """
    phases = [PULL_REQ] * num_workers
    aborts = [0] * num_workers
    iterations = [0] * num_workers
    violations: List[str] = []
    for position, (tag, worker) in enumerate(trace):
        if not 0 <= worker < num_workers:
            violations.append(f"entry {position}: unknown worker id {worker}")
            continue
        if tag == "pull":
            if phases[worker] == PULL_REQ:
                phases[worker] = COMPUTING
            elif phases[worker] == COMPUTING:
                # A pull while computing is the abort-restart re-pull.
                aborts[worker] += 1
                if aborts[worker] > abort_budget:
                    violations.append(
                        f"entry {position}: worker {worker} re-pulled "
                        f"{aborts[worker]}x in iteration {iterations[worker]}, "
                        f"beyond the abort budget of {abort_budget}"
                    )
            else:  # pragma: no cover - unreachable with two phases
                violations.append(
                    f"entry {position}: pull from worker {worker} in phase "
                    f"{PHASE_NAMES[phases[worker]]}"
                )
        elif tag == "push":
            if phases[worker] != COMPUTING:
                violations.append(
                    f"entry {position}: push from worker {worker} without a "
                    f"served pull (phase {PHASE_NAMES[phases[worker]]})"
                )
                continue
            phases[worker] = PULL_REQ
            iterations[worker] += 1
            aborts[worker] = 0
        else:
            violations.append(f"entry {position}: unknown wire tag {tag!r}")
    return violations
