"""A formal model of the SpecSync protocol for the explicit-state checker.

The model abstracts the DES implementation (``repro.ps.engine`` +
``repro.core.scheduler``) to *bounded event orderings*: time disappears,
and every interleaving of message deliveries, compute completions, and
scheduler checks is explored instead.  What remains is exactly the state
the protocol's correctness depends on:

* a global parameter-store clock ``version`` (pushes applied so far);
* per worker: a **phase** in the pull → compute → push cycle, the
  in-progress iteration index, the store version of its current
  snapshot, its abort count for the iteration, and three in-flight
  queues — NOTIFY messages to the scheduler, open scheduler
  **push-counter windows** ``(iteration, base, own)``, and RESYNC
  messages heading back.

A scheduler window models Algorithm 2's ``(t_notify, t_notify +
ABORT_TIME]`` push count: it opens when the NOTIFY delivers, its ``base``
binds to the store version at the matching pull's serve point (the
snapshot the worker computes on), and ``own`` counts the worker's own
pushes after binding, so *peer* pushes inside the window are always
``version - base - own``.  Binding at the serve point is sound for
conformance because the engine sends NOTIFY and the next PULL_REQUEST at
the same instant with equal control latency — the real window never sees
a push the model misses (see ``docs/model_checking.md``).

The scheduler's timer check becomes the internal ``resync_check`` action,
enabled whenever a bound window's peer count reaches ``ABORT_RATE × m``;
checks from superseded windows model *late* re-syncs.  Every other action
is a message delivery named by :class:`repro.netsim.messages.MessageKind`
(:data:`MODEL_ALPHABET` mirrors the enum — lint rule
``PROTO-MODEL-ALPHABET`` keeps the two in lockstep), plus the internal
``compute_done`` (the engine stops being abortable when the gradient
leaves for the wire, not when the push applies).

ASP/BSP/SSP are the same machine with different start gates and no
speculation traffic, so all four schemes of the paper's evaluation are
verified by one model.  Seeded bugs for the mutation harness live in
:mod:`repro.analysis.model.mutations` and are consulted *only* by the
transition generator — the invariants recompute everything from the
pre-state, so a mutated generator cannot vouch for itself.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional, Sequence, Tuple

from repro.netsim.messages import MessageKind

__all__ = [
    "MODEL_ALPHABET",
    "INTERNAL_ACTIONS",
    "SCHEMES",
    "Action",
    "WorkerState",
    "ProtocolState",
    "SpecSyncModel",
]

#: Every message kind the model's transition alphabet covers.  The
#: PROTO-MODEL-ALPHABET lint rule statically cross-checks this tuple
#: against the ``MessageKind`` enum in both directions, so adding a
#: message kind without teaching the model about it fails lint.
MODEL_ALPHABET: Tuple[MessageKind, ...] = (
    MessageKind.PULL_REQUEST,
    MessageKind.PULL_RESPONSE,
    MessageKind.PUSH,
    MessageKind.PUSH_ACK,
    MessageKind.NOTIFY,
    MessageKind.RESYNC,
)

#: Non-message actions: the compute completing inside a worker, and the
#: scheduler's timer-driven window check (Algorithm 2 ``CheckResync``).
INTERNAL_ACTIONS: Tuple[str, ...] = ("compute_done", "resync_check")

#: The synchronization schemes the one machine models via its start gate.
SCHEMES: Tuple[str, ...] = ("asp", "bsp", "ssp", "specsync")

# Worker phases: the pull → compute → push cycle, plus parked and done.
GATED = 0  # waiting for a BSP/SSP barrier release
PULL_REQ = 1  # PULL_REQUEST in flight (serve pending)
PULL_RSP = 2  # PULL_RESPONSE in flight (snapshot taken server-side)
COMPUTING = 3  # gradient computation in progress — the abortable phase
PUSH_SENT = 4  # PUSH in flight (no longer abortable)
ACKING = 5  # PUSH applied, PUSH_ACK in flight
DONE = 6  # reached the iteration bound

PHASE_NAMES = ("GATED", "PULL_REQ", "PULL_RSP", "COMPUTING", "PUSH_SENT", "ACKING", "DONE")

#: Sentinel for a window whose base version is not yet bound (NOTIFY
#: delivered before the matching pull was served).
UNBOUND = -1

_MID_ITERATION = (PULL_REQ, PULL_RSP, COMPUTING, PUSH_SENT, ACKING)

#: wire-name → enum-member-name, for counterexample rendering.
_KIND_RENDER = {kind.wire_name: kind.name for kind in MessageKind}


class Action(NamedTuple):
    """One transition label: a message delivery or an internal step.

    ``kind`` is a :class:`MessageKind` wire name (``pull_request`` …) or
    one of :data:`INTERNAL_ACTIONS`; ``iteration`` is carried by the
    actions whose wire messages carry one (NOTIFY / RESYNC / the check).
    """

    kind: str
    worker: int
    iteration: Optional[int] = None

    def render(self) -> str:
        """``MessageKind`` vocabulary, e.g. ``RESYNC w0 iter=1``."""
        label = _KIND_RENDER.get(self.kind, self.kind)
        suffix = f" iter={self.iteration}" if self.iteration is not None else ""
        return f"{label} w{self.worker}{suffix}"


class WorkerState(NamedTuple):
    """One worker's slice of the protocol state (immutable)."""

    phase: int
    iteration: int
    snap: int  # store version of the current snapshot (set at serve)
    aborts: int  # aborts within the current iteration
    notifies: Tuple[int, ...]  # in-flight NOTIFY iterations (FIFO)
    windows: Tuple[Tuple[int, int, int], ...]  # (iteration, base, own)
    resyncs: Tuple[int, ...]  # in-flight RESYNC target iterations (FIFO)

    def render(self) -> str:
        """Compact one-line form for counterexample traces."""
        parts = [f"{PHASE_NAMES[self.phase]} it={self.iteration} snap={self.snap}"]
        if self.aborts:
            parts.append(f"aborts={self.aborts}")
        if self.notifies:
            parts.append(f"notify={list(self.notifies)}")
        if self.windows:
            rendered = [
                f"(it={it}, base={'?' if base == UNBOUND else base}, own={own})"
                for it, base, own in self.windows
            ]
            parts.append(f"win=[{', '.join(rendered)}]")
        if self.resyncs:
            parts.append(f"resync={list(self.resyncs)}")
        return " ".join(parts)


class ProtocolState(NamedTuple):
    """The global model state: the PS clock plus every worker."""

    version: int
    workers: Tuple[WorkerState, ...]

    def render(self) -> str:
        """Compact one-line form for counterexample traces."""
        workers = " | ".join(f"w{i}: {w.render()}" for i, w in enumerate(self.workers))
        return f"v={self.version} | {workers}"


#: Type of one named invariant over states.
StateInvariant = Tuple[str, Callable[[ProtocolState], Optional[str]]]
#: Type of one named invariant over transitions.
ActionInvariant = Tuple[str, Callable[[ProtocolState, Action, ProtocolState], Optional[str]]]


class SpecSyncModel:
    """The SpecSync/ASP/BSP/SSP protocol as a checkable state machine.

    ``max_iterations`` bounds each worker's iteration count so the state
    space closes (``None`` disables the bound — only legal for
    conformance shadowing, never for :func:`~repro.analysis.model.checker.explore`).
    ``threshold`` is the re-sync push count ``ABORT_RATE × m``;
    ``window_keep`` prunes windows more than that many iterations behind
    their worker (unbounded runs would otherwise accumulate them).
    ``mutation`` names a seeded bug from
    :mod:`repro.analysis.model.mutations` to inject into the transition
    generator.
    """

    def __init__(
        self,
        num_workers: int,
        scheme: str = "specsync",
        max_iterations: Optional[int] = 2,
        threshold: Optional[float] = None,
        staleness_bound: int = 1,
        abort_budget: int = 1,
        mutation: Optional[str] = None,
        window_keep: Optional[int] = None,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r}; known: {', '.join(SCHEMES)}")
        if max_iterations is not None and max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if staleness_bound < 0:
            raise ValueError(f"staleness_bound must be >= 0, got {staleness_bound}")
        if abort_budget < 0:
            raise ValueError(f"abort_budget must be >= 0, got {abort_budget}")
        self.num_workers = num_workers
        self.scheme = scheme
        self.max_iterations = max_iterations
        self.threshold = threshold if threshold is not None else 0.5 * num_workers
        if self.threshold <= 0:
            raise ValueError(f"threshold must be positive, got {self.threshold}")
        self.staleness_bound = staleness_bound
        self.abort_budget = abort_budget
        self.mutation = mutation
        self.window_keep = window_keep
        self.state_invariants: List[StateInvariant] = self._build_state_invariants()
        self.action_invariants: List[ActionInvariant] = self._build_action_invariants()

    # ------------------------------------------------------------------
    # Checker surface
    # ------------------------------------------------------------------
    def initial_state(self) -> ProtocolState:
        """Every worker issuing its first pull (the engine's run start)."""
        idle = WorkerState(
            phase=PULL_REQ, iteration=0, snap=0, aborts=0, notifies=(), windows=(), resyncs=()
        )
        workers = tuple(idle for _ in range(self.num_workers))
        # The start gate passes for everyone at iteration 0 in every
        # scheme, mirroring TrainingEngine.run's unconditional kick-off.
        return ProtocolState(version=0, workers=workers)

    def is_terminal(self, state: ProtocolState) -> bool:
        """All workers reached the iteration bound."""
        return all(w.phase == DONE for w in state.workers)

    def in_flight(self, state: ProtocolState) -> int:
        """Messages sent but not yet delivered (NOTIFY + RESYNC queues)."""
        return sum(len(w.notifies) + len(w.resyncs) for w in state.workers)

    def render_state(self, state: ProtocolState) -> str:
        """Delegate to :meth:`ProtocolState.render`."""
        return state.render()

    def render_action(self, action: Action) -> str:
        """Delegate to :meth:`Action.render`."""
        return action.render()

    # ------------------------------------------------------------------
    # Transition generator
    # ------------------------------------------------------------------
    def successors(self, state: ProtocolState) -> List[Tuple[Action, ProtocolState]]:
        """Every enabled action and the state it leads to."""
        out: List[Tuple[Action, ProtocolState]] = []
        for w, st in enumerate(state.workers):
            if st.phase == PULL_REQ:
                out.append((Action("pull_request", w), self._serve_pull(state, w)))
            elif st.phase == PULL_RSP:
                out.append((Action("pull_response", w), self._deliver_pull(state, w)))
            elif st.phase == COMPUTING:
                out.append((Action("compute_done", w), self._compute_done(state, w)))
            elif st.phase == PUSH_SENT:
                out.append((Action("push", w), self._apply_push(state, w)))
            elif st.phase == ACKING:
                out.append((Action("push_ack", w), self._ack(state, w)))
            if st.notifies:
                out.append(
                    (Action("notify", w, st.notifies[0]), self._deliver_notify(state, w))
                )
            for it, base, own in st.windows:
                if base == UNBOUND:
                    continue
                if not self._check_enabled(state, st, base, own):
                    continue
                out.append((Action("resync_check", w, it), self._run_check(state, w, it)))
            if st.resyncs and self.mutation != "dropped-resync":
                out.append(
                    (Action("resync", w, st.resyncs[0]), self._deliver_resync(state, w))
                )
        return out

    def _check_enabled(self, state: ProtocolState, st: WorkerState, base: int, own: int) -> bool:
        threshold = self.threshold
        if self.mutation == "threshold-off-by-one":
            threshold -= 1  # the classic `>=` vs `>` / N vs N-1 slip
        inflight_cap = 2 if self.mutation == "double-inflight-resync" else 1
        if len(st.resyncs) >= inflight_cap:
            return False
        return state.version - base - own >= threshold

    # -- per-action successor builders ---------------------------------
    def _replace(self, state: ProtocolState, w: int, ws: WorkerState, version: Optional[int] = None) -> ProtocolState:
        workers = state.workers[:w] + (ws,) + state.workers[w + 1 :]
        return ProtocolState(
            version=state.version if version is None else version, workers=workers
        )

    def _serve_pull(self, state: ProtocolState, w: int) -> ProtocolState:
        """PULL_REQUEST delivery: the server snapshots the store now."""
        st = state.workers[w]
        snap = state.version
        if self.mutation == "stale-restart-pull" and st.aborts > 0:
            snap = st.snap  # restart keeps computing on the stale snapshot
        windows = tuple(
            (it, state.version if (it == st.iteration and base == UNBOUND) else base, own)
            for it, base, own in st.windows
        )
        return self._replace(state, w, st._replace(phase=PULL_RSP, snap=snap, windows=windows))

    def _deliver_pull(self, state: ProtocolState, w: int) -> ProtocolState:
        """PULL_RESPONSE delivery: the worker starts computing."""
        return self._replace(state, w, state.workers[w]._replace(phase=COMPUTING))

    def _compute_done(self, state: ProtocolState, w: int) -> ProtocolState:
        """Gradient finished: the PUSH leaves — no longer abortable."""
        return self._replace(state, w, state.workers[w]._replace(phase=PUSH_SENT))

    def _apply_push(self, state: ProtocolState, w: int) -> ProtocolState:
        """PUSH delivery: the store applies the gradient (version += 1)."""
        st = state.workers[w]
        windows = tuple(
            (it, base, own + (1 if base != UNBOUND else 0)) for it, base, own in st.windows
        )
        ws = st._replace(phase=ACKING, windows=windows)
        return self._replace(state, w, ws, version=state.version + 1)

    def _ack(self, state: ProtocolState, w: int) -> ProtocolState:
        """PUSH_ACK delivery: iteration completes; gates re-evaluate."""
        st = state.workers[w]
        next_it = st.iteration + 1
        done = self.max_iterations is not None and next_it >= self.max_iterations
        # State-space reduction at the DONE boundary (an exploration
        # artifact — real runs end by horizon, not by DONE): a finished
        # worker's pending NOTIFYs deliver as no-ops and its windows can
        # only emit re-syncs that are discarded on arrival, so both are
        # collapsed here.  Stutter-equivalent: no invariant distinguishes
        # the collapsed interleavings, and conformance shadowing always
        # runs with ``max_iterations=None`` where ``done`` never holds.
        notifies = st.notifies + ((next_it,) if self.scheme == "specsync" and not done else ())
        windows = st.windows
        if self.window_keep is not None:
            windows = tuple(win for win in windows if win[0] >= next_it - self.window_keep)
        if done:
            notifies = ()
            windows = ()
        ws = st._replace(
            phase=DONE if done else GATED,
            iteration=next_it,
            aborts=0,
            notifies=notifies,
            windows=windows,
        )
        workers = list(state.workers)
        workers[w] = ws
        # The engine releases parked peers from on_iteration_complete
        # *before* the completing worker re-gates itself.
        if self.scheme in ("bsp", "ssp") and self.mutation != "bsp-missing-release":
            for v in range(self.num_workers):
                if v != w and workers[v].phase == GATED and self._may_start(workers, v):
                    workers[v] = workers[v]._replace(phase=PULL_REQ)
        if not done and self._may_start(workers, w):
            workers[w] = workers[w]._replace(phase=PULL_REQ)
        return ProtocolState(version=state.version, workers=tuple(workers))

    def _deliver_notify(self, state: ProtocolState, w: int) -> ProtocolState:
        """NOTIFY delivery: the scheduler opens a push-counter window."""
        st = state.workers[w]
        it = st.notifies[0]
        windows = st.windows
        if (
            st.phase != DONE
            and st.iteration == it
            and not any(win[0] == it for win in windows)
        ):
            base = st.snap if st.phase in (PULL_RSP, COMPUTING, PUSH_SENT, ACKING) else UNBOUND
            windows = windows + ((it, base, 0),)
        return self._replace(state, w, st._replace(notifies=st.notifies[1:], windows=windows))

    def _run_check(self, state: ProtocolState, w: int, it: int) -> ProtocolState:
        """``CheckResync`` fires: consume the window, send the RESYNC."""
        st = state.workers[w]
        windows = tuple(win for win in st.windows if win[0] != it)
        return self._replace(
            state, w, st._replace(windows=windows, resyncs=st.resyncs + (it,))
        )

    def _deliver_resync(self, state: ProtocolState, w: int) -> ProtocolState:
        """RESYNC delivery: abort-and-repull, or discard when too late."""
        st = state.workers[w]
        target = st.resyncs[0]
        ws = st._replace(resyncs=st.resyncs[1:])
        if self._abort_eligible(st, target):
            restart_phase = COMPUTING if self.mutation == "resync-skips-pull" else PULL_REQ
            ws = ws._replace(phase=restart_phase, aborts=st.aborts + 1)
        return self._replace(state, w, ws)

    def _abort_eligible(self, st: WorkerState, target: int) -> bool:
        if st.phase != COMPUTING or st.aborts >= self.abort_budget:
            return False
        if self.mutation == "late-resync-applied":
            return True  # ignores the iteration match — aborts stale targets
        return st.iteration == target

    # -- scheme start gates --------------------------------------------
    def _may_start(self, workers: Sequence[WorkerState], w: int) -> bool:
        """The scheme's ``can_start_iteration`` over iteration counts."""
        if self.scheme in ("asp", "specsync"):
            return True
        lead = workers[w].iteration - min(v.iteration for v in workers)
        if self.scheme == "bsp":
            return lead <= 0
        bound = self.staleness_bound
        if self.mutation == "ssp-bound-off-by-one":
            bound += 1
        return lead <= bound

    # ------------------------------------------------------------------
    # Invariants — recomputed from first principles, never trusting the
    # transition generator (that is what makes mutation testing honest).
    # ------------------------------------------------------------------
    def _build_state_invariants(self) -> List[StateInvariant]:
        invariants: List[StateInvariant] = [
            ("single-inflight-resync", self._inv_single_inflight),
            ("abort-budget", self._inv_abort_budget),
            ("snapshot-not-from-future", self._inv_snapshot_sanity),
        ]
        if self.scheme == "ssp":
            invariants.append(("ssp-staleness-bound", self._inv_ssp_bound))
        if self.scheme == "bsp":
            invariants.append(("bsp-lockstep", self._inv_bsp_lockstep))
        return invariants

    def _build_action_invariants(self) -> List[ActionInvariant]:
        return [
            ("resync-requires-threshold", self._ainv_threshold),
            ("resync-single-issue", self._ainv_single_issue),
            ("abort-only-when-eligible", self._ainv_abort_eligible),
            ("abort-restarts-with-pull", self._ainv_abort_repulls),
            ("abort-sees-fresher-params", self._ainv_abort_fresher),
            ("late-resync-discarded", self._ainv_late_discarded),
            ("restart-pull-is-fresher", self._ainv_restart_fresher),
        ]

    # -- state invariants ----------------------------------------------
    def _inv_single_inflight(self, state: ProtocolState) -> Optional[str]:
        for w, st in enumerate(state.workers):
            if len(st.resyncs) > 1:
                return (
                    f"worker {w} has {len(st.resyncs)} re-syncs in flight "
                    f"(targets {list(st.resyncs)}); the protocol allows at most one"
                )
        return None

    def _inv_abort_budget(self, state: ProtocolState) -> Optional[str]:
        for w, st in enumerate(state.workers):
            if st.aborts > self.abort_budget:
                return (
                    f"worker {w} aborted {st.aborts}x in iteration "
                    f"{st.iteration}, beyond the budget of {self.abort_budget}"
                )
        return None

    def _inv_snapshot_sanity(self, state: ProtocolState) -> Optional[str]:
        for w, st in enumerate(state.workers):
            if st.snap > state.version:
                return (
                    f"worker {w} holds snapshot version {st.snap} but the "
                    f"store is only at {state.version}"
                )
        return None

    def _inv_ssp_bound(self, state: ProtocolState) -> Optional[str]:
        floor = min(st.iteration for st in state.workers)
        for w, st in enumerate(state.workers):
            lead = st.iteration - floor
            if st.phase in _MID_ITERATION and lead > self.staleness_bound:
                return (
                    f"worker {w} is running iteration {st.iteration} while "
                    f"the slowest worker is at {floor}: staleness {lead} "
                    f"exceeds the SSP bound {self.staleness_bound}"
                )
            if st.phase == GATED and lead > self.staleness_bound + 1:
                return (
                    f"worker {w} parked at lead {lead}, beyond "
                    f"bound+1={self.staleness_bound + 1}"
                )
        return None

    def _inv_bsp_lockstep(self, state: ProtocolState) -> Optional[str]:
        floor = min(st.iteration for st in state.workers)
        for w, st in enumerate(state.workers):
            if st.phase in _MID_ITERATION and st.iteration != floor:
                return (
                    f"worker {w} is running iteration {st.iteration} while "
                    f"the barrier round is {floor}: BSP must run in lockstep"
                )
        return None

    # -- action invariants ---------------------------------------------
    def _ainv_threshold(
        self, pre: ProtocolState, action: Action, post: ProtocolState
    ) -> Optional[str]:
        """Paper invariant (a): re-sync only when peer pushes since the
        worker's pull reach ``ABORT_RATE × m``."""
        if action.kind != "resync_check":
            return None
        st = pre.workers[action.worker]
        window = next((win for win in st.windows if win[0] == action.iteration), None)
        if window is None:
            return (
                f"re-sync check for worker {action.worker} iteration "
                f"{action.iteration} without an open scheduler window"
            )
        _, base, own = window
        if base == UNBOUND:
            return (
                f"re-sync check for worker {action.worker} ran before the "
                f"iteration-{action.iteration} pull was served (window base unbound)"
            )
        peers = pre.version - base - own
        if peers < self.threshold:
            return (
                f"re-sync issued to worker {action.worker} on {peers} peer "
                f"push(es) since its pull, below the ABORT_RATE x m "
                f"threshold of {self.threshold:g}"
            )
        return None

    def _ainv_single_issue(
        self, pre: ProtocolState, action: Action, post: ProtocolState
    ) -> Optional[str]:
        """Paper invariant (c): never issue while one is already in flight."""
        if action.kind != "resync_check":
            return None
        st = pre.workers[action.worker]
        if st.resyncs:
            return (
                f"re-sync issued to worker {action.worker} while one for "
                f"iteration {st.resyncs[0]} is still in flight"
            )
        return None

    def _ainv_abort_eligible(
        self, pre: ProtocolState, action: Action, post: ProtocolState
    ) -> Optional[str]:
        """Paper invariant (d), active half: an abort must hit the exact
        in-progress iteration of a computing worker with budget left."""
        if action.kind != "resync":
            return None
        st, post_st = pre.workers[action.worker], post.workers[action.worker]
        if post_st.aborts <= st.aborts:
            return None  # discarded — checked by late-resync-discarded
        if st.phase != COMPUTING:
            return (
                f"worker {action.worker} aborted while in phase "
                f"{PHASE_NAMES[st.phase]}; only an in-progress computation is abortable"
            )
        if st.iteration != action.iteration:
            return (
                f"late re-sync applied: worker {action.worker} is at "
                f"iteration {st.iteration} but the re-sync targeted "
                f"iteration {action.iteration}"
            )
        if st.aborts >= self.abort_budget:
            return (
                f"worker {action.worker} aborted beyond its budget of "
                f"{self.abort_budget} per iteration"
            )
        return None

    def _ainv_abort_repulls(
        self, pre: ProtocolState, action: Action, post: ProtocolState
    ) -> Optional[str]:
        """Paper invariant (b), first half: an abort must restart with a pull."""
        if action.kind != "resync":
            return None
        st, post_st = pre.workers[action.worker], post.workers[action.worker]
        if post_st.aborts > st.aborts and post_st.phase != PULL_REQ:
            return (
                f"worker {action.worker} aborted but went to phase "
                f"{PHASE_NAMES[post_st.phase]} instead of re-pulling"
            )
        return None

    def _ainv_abort_fresher(
        self, pre: ProtocolState, action: Action, post: ProtocolState
    ) -> Optional[str]:
        """Paper invariant (b), second half: fresher parameters exist at
        the abort point (otherwise the abort wasted work for nothing)."""
        if action.kind != "resync":
            return None
        st, post_st = pre.workers[action.worker], post.workers[action.worker]
        if post_st.aborts > st.aborts and pre.version <= st.snap:
            return (
                f"worker {action.worker} aborted at store version "
                f"{pre.version} while already holding snapshot {st.snap} — "
                f"no fresher parameters to re-pull"
            )
        return None

    def _ainv_late_discarded(
        self, pre: ProtocolState, action: Action, post: ProtocolState
    ) -> Optional[str]:
        """Paper invariant (d), passive half: a discarded re-sync must
        leave the worker untouched apart from consuming the message."""
        if action.kind != "resync":
            return None
        st, post_st = pre.workers[action.worker], post.workers[action.worker]
        if post_st.aborts > st.aborts:
            return None  # honored — covered by the abort invariants
        expected = st._replace(resyncs=st.resyncs[1:])
        if post_st != expected:
            return (
                f"discarded re-sync for worker {action.worker} still "
                f"changed its state: {st.render()} -> {post_st.render()}"
            )
        return None

    def _ainv_restart_fresher(
        self, pre: ProtocolState, action: Action, post: ProtocolState
    ) -> Optional[str]:
        """Paper invariant (b), serve side: the restart pull must hand the
        aborted worker a strictly fresher snapshot than it was computing on."""
        if action.kind != "pull_request":
            return None
        st, post_st = pre.workers[action.worker], post.workers[action.worker]
        if st.aborts > 0 and post_st.snap <= st.snap:
            return (
                f"worker {action.worker} restarted after an abort but was "
                f"served snapshot {post_st.snap}, not fresher than the "
                f"aborted snapshot {st.snap}"
            )
        return None
