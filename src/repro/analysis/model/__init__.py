"""Explicit-state model checking of the SpecSync abort/re-sync protocol.

This subpackage has two halves that check each other:

* :mod:`~repro.analysis.model.checker` — a small zero-dependency
  explicit-state model checker (BFS/DFS over hashed states, invariant +
  deadlock + liveness checks, shortest-counterexample reconstruction);
* :mod:`~repro.analysis.model.specsync` — a formal model of the
  scheduler/worker/server protocol whose alphabet is exactly
  :class:`repro.netsim.messages.MessageKind` (enforced by the
  ``PROTO-MODEL-ALPHABET`` lint rule).

:mod:`~repro.analysis.model.conformance` closes the loop by projecting
*real* runs — DES runs via the simulator tap bus, multiprocess runs via
the server wire-tag trace — onto model transitions, and
:mod:`~repro.analysis.model.mutations` seeds known protocol bugs that
the checker must reject.  :mod:`~repro.analysis.model.harness` wires it
all into ``repro modelcheck``.
"""

from __future__ import annotations

from repro.analysis.model.checker import CheckResult, Violation, explore
from repro.analysis.model.conformance import (
    ConformanceReport,
    ShadowTracker,
    replay_wire_trace,
    run_des_conformance,
)
from repro.analysis.model.harness import (
    ModelCheckReport,
    MutantOutcome,
    SchemeCheck,
    run_modelcheck,
    run_mutation_harness,
)
from repro.analysis.model.mutations import MUTATIONS, Mutation, mutation_names
from repro.analysis.model.specsync import (
    INTERNAL_ACTIONS,
    MODEL_ALPHABET,
    SCHEMES,
    Action,
    ProtocolState,
    SpecSyncModel,
    WorkerState,
)

__all__ = [
    "explore",
    "CheckResult",
    "Violation",
    "SpecSyncModel",
    "Action",
    "WorkerState",
    "ProtocolState",
    "MODEL_ALPHABET",
    "INTERNAL_ACTIONS",
    "SCHEMES",
    "Mutation",
    "MUTATIONS",
    "mutation_names",
    "ShadowTracker",
    "ConformanceReport",
    "run_des_conformance",
    "replay_wire_trace",
    "SchemeCheck",
    "MutantOutcome",
    "ModelCheckReport",
    "run_modelcheck",
    "run_mutation_harness",
]
