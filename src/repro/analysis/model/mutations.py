"""Seeded protocol bugs that the model checker must catch.

Each mutation names a code path in
:class:`repro.analysis.model.specsync.SpecSyncModel`'s *transition
generator* that misbehaves the way a real implementation bug would —
off-by-one thresholds, dropped messages, skipped restarts.  The
invariants never consult the mutation flag (they recompute everything
from the pre-state), so a surviving mutant means the checker genuinely
cannot see that class of bug.  ``repro modelcheck --mutants`` runs every
mutation and fails if any survives; the harness smoke-runs in CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["Mutation", "MUTATIONS", "mutation_names"]


@dataclass(frozen=True)
class Mutation:
    """One seeded bug: where it is injected and what must catch it."""

    name: str
    description: str
    scheme: str  # the scheme whose model the mutant is checked under
    expect: str  # the property class expected to reject the mutant


#: The registry.  Every entry must be rejected by the checker with a
#: readable counterexample (asserted by tests and the CI smoke run).
MUTATIONS: Tuple[Mutation, ...] = (
    Mutation(
        name="threshold-off-by-one",
        description=(
            "scheduler issues a re-sync at ABORT_RATE x m - 1 peer pushes "
            "(the classic >= vs > slip on the abort threshold)"
        ),
        scheme="specsync",
        expect="action-invariant resync-requires-threshold",
    ),
    Mutation(
        name="double-inflight-resync",
        description=(
            "scheduler issues a second re-sync while one is still in "
            "flight to the same worker"
        ),
        scheme="specsync",
        expect="action-invariant resync-single-issue",
    ),
    Mutation(
        name="late-resync-applied",
        description=(
            "engine honors a re-sync that targets an already-completed "
            "iteration instead of discarding it"
        ),
        scheme="specsync",
        expect="action-invariant abort-only-when-eligible",
    ),
    Mutation(
        name="resync-skips-pull",
        description=(
            "aborted worker restarts its computation without re-pulling "
            "fresher parameters"
        ),
        scheme="specsync",
        expect="action-invariant abort-restarts-with-pull",
    ),
    Mutation(
        name="stale-restart-pull",
        description=(
            "the restart pull serves the aborted worker its old snapshot "
            "instead of the current store version"
        ),
        scheme="specsync",
        expect="action-invariant restart-pull-is-fresher",
    ),
    Mutation(
        name="dropped-resync",
        description="issued re-sync messages are never delivered",
        scheme="specsync",
        expect="dropped-message at quiescence",
    ),
    Mutation(
        name="bsp-missing-release",
        description=(
            "completing an iteration never releases workers parked at "
            "the barrier"
        ),
        scheme="bsp",
        expect="deadlock",
    ),
    Mutation(
        name="ssp-bound-off-by-one",
        description="the SSP gate admits workers at staleness bound + 1",
        scheme="ssp",
        expect="state-invariant ssp-staleness-bound",
    ),
)


def mutation_names() -> Tuple[str, ...]:
    """The registered mutation names, in registry order."""
    return tuple(m.name for m in MUTATIONS)
