"""Graph helpers shared by the static rules and the dynamic sanitizers.

Both the static ``CONC-LOCK-ORDER`` rule and the runtime lock-order
oracle (:mod:`repro.analysis.dynamic.lockorder`) reduce to the same
question: does the lock-acquisition-order graph contain a cycle?  The
edge *payloads* differ — the static pass attaches ``(ModuleInfo, line)``
witnesses, the dynamic pass ``(path, line)`` call sites — so the cycle
finder here is generic over the payload type and only looks at keys.
"""

from __future__ import annotations

from typing import List, Mapping, Set, Tuple

__all__ = ["find_cycles"]


def find_cycles(edges: Mapping[str, Mapping[str, object]]) -> List[Tuple[str, ...]]:
    """Elementary cycles in a directed graph, deduped by member set.

    ``edges`` maps source node -> {destination node -> payload}; payloads
    are ignored.  Each cycle is reported once, as the node tuple starting
    from its smallest member, in deterministic (sorted) order.
    """
    cycles: List[Tuple[str, ...]] = []
    seen: Set[frozenset] = set()

    def dfs(start: str, node: str, path: List[str], visited: Set[str]) -> None:
        for succ in sorted(edges.get(node, ())):
            if succ == start and len(path) > 1:
                key = frozenset(path)
                if key not in seen:
                    seen.add(key)
                    cycles.append(tuple(path))
            elif succ not in visited and succ > start:
                # Only explore nodes ordered after the start so each cycle
                # is discovered from its smallest member exactly once.
                visited.add(succ)
                dfs(start, succ, path + [succ], visited)
                visited.discard(succ)

    for start in sorted(edges):
        dfs(start, start, [start], {start})
    return cycles
