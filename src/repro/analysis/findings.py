"""Lint findings: what a rule reports and how it serializes.

A :class:`Finding` pins one defect to a ``file:line`` location, names the
rule that produced it, and carries a human-readable message.  Findings are
value objects — the engine marks suppressed ones (``# repro: allow[...]``
comments) rather than dropping them, so reporters can show both views and
the JSON output round-trips losslessly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Tuple

__all__ = ["Severity", "Finding"]


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings break determinism, protocol completeness, or
    deadlock freedom outright; ``WARNING`` findings come from heuristic
    rules that can over-approximate; ``INFO`` findings are advisory —
    the profile-guided perf rules report at this level until a measured
    profile proves the code hot.  The default CLI gate fails on any
    unsuppressed finding at warning or above — a warning that is truly
    fine should carry an explicit suppression with a justification.
    """

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        """Severities ordered for threshold gates (info < warning < error)."""
        return _SEVERITY_RANK[self]


_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    message: str
    suppressed: bool = field(default=False, compare=False)
    #: line numbers along the offending control/call path (flow rules);
    #: empty for per-node rules.  ``path`` being the file path already,
    #: this serializes as ``flow_path`` in JSON.
    flow_path: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.rule_id:
            raise ValueError("rule_id must be non-empty")
        if self.line < 1:
            raise ValueError(f"line must be >= 1, got {self.line}")

    @property
    def location(self) -> str:
        """``path:line`` — clickable in most terminals and editors."""
        return f"{self.path}:{self.line}"

    def with_suppressed(self, suppressed: bool) -> "Finding":
        """A copy with the suppression flag set."""
        return replace(self, suppressed=suppressed)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "rule_id": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
            "flow_path": list(self.flow_path),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output."""
        return cls(
            rule_id=data["rule_id"],
            severity=Severity(data["severity"]),
            path=data["path"],
            line=int(data["line"]),
            message=data["message"],
            suppressed=bool(data.get("suppressed", False)),
            flow_path=tuple(int(n) for n in data.get("flow_path", ())),
        )

    def render(self) -> str:
        """One-line text form: ``path:line: severity [rule] message``.

        Flow findings append the offending path compactly, e.g.
        ``(path: L12 -> L15 -> L22)``.
        """
        mark = " (suppressed)" if self.suppressed else ""
        trail = ""
        if self.flow_path:
            trail = " (path: " + " -> ".join(f"L{n}" for n in self.flow_path) + ")"
        return (
            f"{self.location}: {self.severity.value} "
            f"[{self.rule_id}] {self.message}{trail}{mark}"
        )
