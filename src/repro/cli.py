"""Command-line interface.

Subcommands::

    repro list                          # available workloads and schemes
    repro run --workload mf --scheme adaptive --workers 40
    repro compare --workload cifar10 --schemes original adaptive
    repro experiment fig8               # regenerate a paper table/figure
    repro trace out.json                # summarize a --trace capture
    repro analyze out.json              # causal analytics: critical path,
                                        # speculation ledger, staleness
    repro perf report out.json          # profiler/straggler dashboard
    repro bench [names…] --scale smoke  # emit BENCH_<name>.json files
    repro bench --compare OLD NEW       # regression-gate two bench files
    repro top --smoke --once --json     # live telemetry dashboard over the
                                        # shm ring-buffer exporters
    repro lint [--format json] [paths…] # codebase-specific static analysis
    repro sanitize [--backend threaded] # runtime sanitizers (locks, races,
                                        # replay determinism)
    repro modelcheck [--workers 3]      # explicit-state model checking of
                                        # the abort/re-sync protocol

``run``, ``compare`` and ``experiment`` accept ``--trace PATH`` to capture
a Chrome trace-event (Perfetto) file of the whole invocation; ``-v``
routes the :mod:`repro.obs` loggers to stderr.

Every experiment the benchmark harness runs is reachable from here, so the
paper's evaluation can be regenerated without pytest.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional

import repro
from repro import obs
from repro.analysis import render_json, render_text, run_lint
from repro.analysis.gate import add_fail_on_argument, gate_exit_code
from repro.analysis.model.specsync import SCHEMES as MODEL_SCHEMES

from repro.cluster.spec import ClusterSpec
from repro.experiments import (
    ExperimentScale,
    run_fig3,
    run_fig5,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_table1,
    run_table2,
    scheme_catalog,
)
from repro.experiments import ablations as _ablations
from repro.metrics.serialize import run_summary_to_dict, traces_to_jsonl
from repro.utils.ascii_plot import ascii_plot
from repro.utils.tables import TextTable, format_bytes
from repro.workloads import (
    cifar10_workload,
    imagenet_workload,
    matrix_factorization_workload,
    tiny_workload,
)

__all__ = ["main", "build_parser"]

WORKLOADS: Dict[str, Callable] = {
    "mf": matrix_factorization_workload,
    "cifar10": cifar10_workload,
    "imagenet": imagenet_workload,
    "tiny": tiny_workload,
}

EXPERIMENTS: Dict[str, Callable[[ExperimentScale], object]] = {
    "table1": run_table1,
    "fig3": run_fig3,
    "fig5": run_fig5,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "table2": run_table2,
    "ablation-broadcast": _ablations.run_ablation_broadcast,
    "ablation-ssp": _ablations.run_ablation_specsync_ssp,
    "ablation-abort-budget": _ablations.run_ablation_abort_budget,
    "ablation-sensitivity": _ablations.run_ablation_sensitivity,
    "ablation-optimizer": _ablations.run_ablation_optimizer,
    "ablation-failure-injection": _ablations.run_ablation_failure_injection,
    "ablation-orthogonality": _ablations.run_ablation_orthogonality,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SpecSync reproduction: run workloads, compare schemes, "
                    "regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log progress to stderr (-v info, -vv debug)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads, schemes, and experiments")

    run_parser = sub.add_parser("run", help="run one scheme on one workload")
    _add_run_args(run_parser)
    run_parser.add_argument("--scheme", default="adaptive",
                            help="scheme key (see `repro list`)")
    run_parser.add_argument("--json", metavar="PATH",
                            help="write a JSON run summary to PATH")
    run_parser.add_argument("--traces", metavar="PATH",
                            help="write the pull/push/abort trace (JSONL) to PATH")
    run_parser.add_argument("--plot", action="store_true",
                            help="render the loss curve as ASCII art")

    compare_parser = sub.add_parser(
        "compare", help="race several schemes on one workload"
    )
    _add_run_args(compare_parser)
    compare_parser.add_argument(
        "--schemes", nargs="+", default=["original", "adaptive"],
        help="scheme keys to race",
    )
    compare_parser.add_argument("--plot", action="store_true",
                                help="overlay the loss curves as ASCII art")

    exp_parser = sub.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    exp_parser.add_argument("name", choices=sorted(EXPERIMENTS),
                            help="which experiment to run")
    exp_parser.add_argument("--scale", choices=["full", "smoke"],
                            default="full")
    exp_parser.add_argument("--seed", type=int, default=3)
    exp_parser.add_argument(
        "--trace", metavar="PATH",
        help="capture a Chrome trace-event (Perfetto) file of the "
             "whole experiment",
    )

    trace_parser = sub.add_parser(
        "trace", help="summarize a Chrome trace captured with --trace"
    )
    trace_parser.add_argument("path", help="trace JSON file to summarize")
    trace_parser.add_argument("--format", choices=["text", "json"],
                              default="text")

    analyze_parser = sub.add_parser(
        "analyze",
        help="causal trace analytics: critical-path attribution, "
             "speculation ledger, staleness distributions",
    )
    analyze_parser.add_argument("path", help="trace JSON file to analyze")
    analyze_parser.add_argument("--format", choices=["text", "json"],
                                default="text")
    analyze_parser.add_argument(
        "--compare", metavar="OTHER",
        help="diff against another trace (or a saved analysis JSON)",
    )
    analyze_parser.add_argument(
        "--output", metavar="PATH",
        help="also write the analytics JSON to PATH (for CI artifacts)",
    )
    analyze_parser.add_argument(
        "--bench-output", metavar="PATH",
        help="also write the speculation-efficiency metrics as a "
             "BENCH-schema file usable with `repro bench --compare`",
    )
    add_fail_on_argument(analyze_parser)

    perf_parser = sub.add_parser(
        "perf", help="performance dashboards built from --trace captures"
    )
    perf_sub = perf_parser.add_subparsers(dest="perf_command", required=True)
    perf_report_parser = perf_sub.add_parser(
        "report",
        help="render the profiler/straggler dashboard from a trace file",
    )
    perf_report_parser.add_argument("path", help="trace JSON file to inspect")
    perf_report_parser.add_argument("--format", choices=["text", "json"],
                                    default="text")

    top_parser = sub.add_parser(
        "top",
        help="live telemetry dashboard: attach to a live-exported run, "
             "replay a recorded trace, or run the multiprocess smoke "
             "workload with the shm ring exporter enabled",
    )
    top_mode = top_parser.add_mutually_exclusive_group(required=True)
    top_mode.add_argument(
        "--attach", metavar="SPEC.json",
        help="attach to a running live-exported session via its ring "
             "spec file (this process becomes the single consumer)",
    )
    top_mode.add_argument(
        "--replay", metavar="TRACE.json",
        help="feed a recorded trace-format-v2 file through the dashboard",
    )
    top_mode.add_argument(
        "--smoke", action="store_true",
        help="run the multiprocess smoke workload with live export and "
             "watch it",
    )
    top_parser.add_argument(
        "--interval", type=float, default=0.5,
        help="refresh/poll interval in wall seconds (default 0.5)",
    )
    top_parser.add_argument(
        "--duration", type=float, default=None,
        help="how long to watch, in wall seconds (smoke run default 0.6; "
             "attach default: until interrupted)",
    )
    top_parser.add_argument(
        "--speed", type=float, default=0.0,
        help="--replay pacing as a multiple of recorded time (0 = instant)",
    )
    top_parser.add_argument(
        "--once", action="store_true",
        help="emit a single final snapshot instead of a refreshing view",
    )
    top_parser.add_argument(
        "--json", action="store_true",
        help="emit the final snapshot as JSON (for CI and scripting)",
    )
    top_parser.add_argument("--seed", type=int, default=0,
                            help="--smoke workload seed")
    top_parser.add_argument(
        "--drain", metavar="PATH",
        help="serialize the captured stream to a trace-format-v2 file at "
             "PATH when the dashboard ends (repro analyze/trace/perf "
             "consume it unchanged)",
    )

    bench_parser = sub.add_parser(
        "bench",
        help="run the continuous benchmarks (emit BENCH_<name>.json) or "
             "compare two bench files with the regression gate",
    )
    bench_parser.add_argument(
        "names", nargs="*",
        help="benchmarks to run (default: all; see repro.perfbench.BENCHES)",
    )
    bench_parser.add_argument(
        "--scale", choices=["smoke", "full"], default=None,
        help="benchmark sizing (default: $REPRO_SCALE or 'full')",
    )
    bench_parser.add_argument(
        "--output-dir", default=".", metavar="DIR",
        help="directory for the per-benchmark BENCH_<name>.json files",
    )
    bench_parser.add_argument(
        "--suite", metavar="PATH",
        help="also write one combined bench file with every result",
    )
    bench_parser.add_argument(
        "--compare", nargs=2, metavar=("OLD", "NEW"),
        help="skip running: diff two bench files and gate on regressions",
    )
    bench_parser.add_argument(
        "--threshold", type=float, default=None,
        help="tolerated fraction for deterministic 'count' metrics "
             "(default 0.10)",
    )
    bench_parser.add_argument(
        "--rate-tolerance", type=float, default=None,
        help="tolerated fraction for wall-clock 'rate' metrics "
             "(default 0.15)",
    )
    add_fail_on_argument(bench_parser)

    lint_parser = sub.add_parser(
        "lint",
        help="run the repro-specific static-analysis suite "
             "(determinism, protocol exhaustiveness, concurrency, flow)",
    )
    lint_parser.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: the installed repro package)",
    )
    lint_parser.add_argument("--format", choices=["text", "json"],
                             default="text")
    lint_parser.add_argument(
        "--show-suppressed", action="store_true",
        help="also print findings waived by # repro: allow[...] comments",
    )
    lint_parser.add_argument(
        "--rule", action="append", default=None, metavar="ID",
        help="run only this rule id (repeatable, e.g. --rule FLOW-RELEASE)",
    )
    lint_parser.add_argument(
        "--pack", action="append", default=None, metavar="NAME",
        help="run only this rule pack (repeatable: determinism, protocol, "
             "concurrency, flow, perf, ownership); unions with --rule",
    )
    lint_parser.add_argument(
        "--profile", metavar="TRACE.json", default=None,
        help="hot-path data for the perf rules: a repro run --trace "
             "capture (trace-format-v2 'perf' section) or a bare "
             "profiler snapshot; findings on measured-hot functions "
             "escalate from info to warning",
    )
    lint_parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="also write the findings (in the selected --format) to PATH",
    )
    add_fail_on_argument(lint_parser)

    sanitize_parser = sub.add_parser(
        "sanitize",
        help="run the dynamic sanitizers: lock-order recorder, lockset "
             "race detector, replay-determinism checker",
    )
    sanitize_parser.add_argument(
        "--backend", choices=["threaded", "multiprocess"], default="threaded",
        help="which real-time backend to instrument",
    )
    sanitize_parser.add_argument("--duration", type=float, default=0.3,
                                 help="instrumented run length in wall seconds")
    sanitize_parser.add_argument("--workers", type=int, default=4)
    sanitize_parser.add_argument("--seed", type=int, default=0)
    sanitize_parser.add_argument("--format", choices=["text", "json"],
                                 default="text")
    sanitize_parser.add_argument(
        "--output", metavar="PATH",
        help="also write the JSON report to PATH (for CI artifacts)",
    )
    sanitize_parser.add_argument(
        "--no-replay", action="store_true",
        help="skip the (slower) replay-determinism check",
    )
    add_fail_on_argument(sanitize_parser)

    model_parser = sub.add_parser(
        "modelcheck",
        help="exhaustively model-check the SpecSync abort/re-sync "
             "protocol (invariants, deadlock, liveness) and optionally "
             "run the mutation harness and DES trace conformance",
    )
    model_parser.add_argument(
        "--scheme", choices=list(MODEL_SCHEMES) + ["all"], default="all",
        help="which synchronization scheme's model to explore",
    )
    model_parser.add_argument("--workers", type=int, default=3,
                              help="modelled worker count m")
    model_parser.add_argument("--max-iterations", type=int, default=2,
                              help="iteration bound that closes the state space")
    model_parser.add_argument("--abort-rate", type=float, default=0.5,
                              help="re-sync threshold as a fraction of m")
    model_parser.add_argument("--staleness-bound", type=int, default=1,
                              help="SSP staleness bound s")
    model_parser.add_argument("--abort-budget", type=int, default=1,
                              help="max aborts per worker per iteration")
    model_parser.add_argument("--max-states", type=int, default=2_000_000,
                              help="exploration cap (hitting it fails the run)")
    model_parser.add_argument(
        "--mutants", action="store_true",
        help="also run the seeded-mutation harness (every known protocol "
             "bug must be rejected with a counterexample)",
    )
    model_parser.add_argument(
        "--conformance", action="store_true",
        help="also shadow one seeded DES run per scheme against the model",
    )
    model_parser.add_argument("--seed", type=int, default=0,
                              help="seed for the --conformance DES run")
    model_parser.add_argument("--format", choices=["text", "json"],
                              default="text")
    model_parser.add_argument(
        "--output", metavar="PATH",
        help="also write the JSON report (with counterexample traces) "
             "to PATH (for CI artifacts)",
    )
    add_fail_on_argument(model_parser)
    return parser


def _add_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", choices=sorted(WORKLOADS), default="mf")
    parser.add_argument("--workers", type=int, default=40)
    parser.add_argument("--heterogeneous", action="store_true",
                        help="use the paper's Cluster-2 instance mix")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--horizon", type=float, default=None,
                        help="virtual-time horizon in seconds")
    parser.add_argument("--no-early-stop", action="store_true",
                        help="run the full horizon even after convergence")
    parser.add_argument(
        "--trace", metavar="PATH",
        help="capture a Chrome trace-event (Perfetto) file of the "
             "whole invocation",
    )


@contextmanager
def _maybe_trace(args):
    """Capture the whole command in a Chrome trace when ``--trace`` is set.

    Enablement is process-wide (:func:`repro.obs.collecting`), so engines
    and runtimes constructed arbitrarily deep inside the workload code pick
    up the collector without any plumbing through their constructors.
    """
    trace_path = getattr(args, "trace", None)
    if not trace_path:
        yield
        return
    collector = obs.TraceCollector()
    collector.metadata["command"] = args.command
    for key in ("workload", "scheme", "name", "seed", "workers"):
        value = getattr(args, key, None)
        if value is not None:
            collector.metadata[key] = value
    with obs.collecting(collector):
        yield
    with open(trace_path, "w", encoding="utf-8") as handle:
        count = obs.write_chrome_trace(collector, handle)
    print(f"{count} trace events written to {trace_path}", file=sys.stderr)


def _build_cluster(args) -> ClusterSpec:
    if args.heterogeneous:
        per_type = max(1, args.workers // 4)
        return ClusterSpec.heterogeneous(
            [("m3.xlarge", per_type), ("m3.2xlarge", per_type),
             ("m4.xlarge", per_type), ("m4.2xlarge", per_type)]
        )
    return ClusterSpec.homogeneous(args.workers)


def _run_one(args, scheme_key: str):
    workload = WORKLOADS[args.workload]()
    catalog = scheme_catalog(workload.name)
    if scheme_key not in catalog:
        known = ", ".join(sorted(catalog))
        raise SystemExit(f"unknown scheme {scheme_key!r}; known: {known}")
    cluster = _build_cluster(args)
    result = workload.run(
        cluster,
        catalog[scheme_key].make(),
        seed=args.seed,
        horizon_s=args.horizon,
        early_stop=not args.no_early_stop,
    )
    return workload, result


def _result_row(workload, result) -> List[str]:
    time_to_conv = result.time_to_convergence(workload.convergence)
    return [
        result.scheme,
        f"{time_to_conv:.0f}s" if time_to_conv is not None else "never",
        str(result.total_iterations),
        str(result.total_aborts),
        f"{result.mean_staleness:.1f}",
        f"{result.final_loss:.4f}",
        format_bytes(result.total_transfer_bytes),
    ]


def _cmd_list() -> int:
    table = TextTable(["workload", "target loss", "iteration time", "horizon"])
    for name in sorted(WORKLOADS):
        workload = WORKLOADS[name]()
        table.add_row([
            name,
            workload.convergence.target_loss,
            f"{workload.paper_iteration_time_s:g}s",
            f"{workload.default_horizon_s:g}s",
        ])
    print(table.render())
    print("\nschemes: " + ", ".join(sorted(scheme_catalog("mf"))))
    print("experiments: " + ", ".join(sorted(EXPERIMENTS)))
    return 0


def _cmd_run(args) -> int:
    workload, result = _run_one(args, args.scheme)
    table = TextTable(
        ["scheme", "time to target", "iterations", "aborts",
         "mean staleness", "final loss", "transfer"],
        title=f"{workload.name} on {_build_cluster(args).describe()}",
    )
    table.add_row(_result_row(workload, result))
    print(table.render())
    if args.plot:
        print()
        print(ascii_plot({result.scheme: result.curve.as_series()},
                         x_label="virtual s", y_label="loss"))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(run_summary_to_dict(result), handle, indent=2)
        print(f"\nsummary written to {args.json}")
    if args.traces:
        with open(args.traces, "w", encoding="utf-8") as handle:
            count = traces_to_jsonl(result.traces, handle)
        print(f"{count} trace events written to {args.traces}")
    return 0


def _cmd_compare(args) -> int:
    workload = WORKLOADS[args.workload]()
    table = TextTable(
        ["scheme", "time to target", "iterations", "aborts",
         "mean staleness", "final loss", "transfer"],
        title=(
            f"{workload.name} (target {workload.convergence.target_loss}) "
            f"on {_build_cluster(args).describe()}"
        ),
    )
    results = {}
    for scheme_key in args.schemes:
        _, result = _run_one(args, scheme_key)
        results[scheme_key] = result
        table.add_row(_result_row(workload, result))
    print(table.render())

    baseline_key = args.schemes[0]
    baseline_time = results[baseline_key].time_to_convergence(workload.convergence)
    if baseline_time is not None:
        for scheme_key in args.schemes[1:]:
            this_time = results[scheme_key].time_to_convergence(workload.convergence)
            if this_time is not None:
                print(f"{scheme_key} speedup over {baseline_key}: "
                      f"{baseline_time / this_time:.2f}x")
    if args.plot:
        print()
        print(ascii_plot(
            {k: r.curve.as_series() for k, r in results.items()},
            x_label="virtual s", y_label="loss",
        ))
    return 0


def _cmd_experiment(args) -> int:
    scale = ExperimentScale.SMOKE if args.scale == "smoke" else ExperimentScale.FULL
    driver = EXPERIMENTS[args.name]
    result = driver(scale, seed=args.seed)
    print(result.render())
    return 0


def _cmd_trace(args) -> int:
    try:
        with open(args.path, "r", encoding="utf-8") as handle:
            trace = obs.load_trace(handle)
    except (OSError, ValueError) as exc:
        print(f"repro trace: error: {exc}", file=sys.stderr)
        return 2
    summary = obs.summarize_trace(trace)
    if args.format == "json":
        print(json.dumps({
            "total_events": summary.total_events,
            "tracks": summary.tracks,
            "spans": {
                name: {"count": count, "total_us": total}
                for name, (count, total) in sorted(summary.spans.items())
            },
            "instants": dict(sorted(summary.instants.items())),
            "flow_pairs": dict(sorted(summary.flows.items())),
            "unpaired_flows": summary.unpaired_flows,
            "abort_flow_pairs": summary.abort_flow_pairs,
            "flow_accounting": summary.flow_accounting,
            "aborts_by_track": dict(sorted(summary.aborts_by_track.items())),
            "counters": dict(sorted(summary.counters.items())),
            "gauges": dict(sorted(summary.gauges.items())),
            "histograms": dict(sorted(summary.histograms.items())),
            "perf": summary.perf,
            "metadata": dict(sorted(summary.metadata.items())),
        }, indent=2))
    else:
        print(obs.render_summary(summary))
    return 0


def _load_analysis(path: str) -> dict:
    """Load ``path`` as analytics JSON, analyzing it first if it is a trace.

    Accepts either a ``--trace`` capture (``traceEvents``) or a saved
    ``repro analyze --output`` file (``runs``), so comparisons work
    against both raw and pre-digested artifacts.
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, dict) and "runs" in data and "traceEvents" not in data:
        if data.get("schema_version") != obs.ANALYSIS_SCHEMA_VERSION:
            raise obs.AnalysisError(
                f"unsupported analysis schema_version "
                f"{data.get('schema_version')!r} "
                f"(this build reads v{obs.ANALYSIS_SCHEMA_VERSION})"
            )
        return data
    return obs.analyze_trace(data)


def _cmd_analyze(args) -> int:
    from repro.analysis.findings import Finding, Severity

    def _gate_error(rule_id: str, message: str) -> int:
        findings = [Finding(
            rule_id=rule_id, severity=Severity.ERROR,
            path=args.path, line=1, message=message,
        )]
        print(render_text(findings))
        return gate_exit_code(findings, args.fail_on)

    try:
        analysis = _load_analysis(args.path)
    except (OSError, json.JSONDecodeError) as exc:
        return _gate_error("TRACE-PARSE", f"cannot read trace: {exc}")
    except obs.AnalysisError as exc:
        return _gate_error("TRACE-SCHEMA", str(exc))

    if args.compare:
        try:
            other = _load_analysis(args.compare)
        except (OSError, json.JSONDecodeError) as exc:
            return _gate_error("TRACE-PARSE", f"cannot read comparison: {exc}")
        except obs.AnalysisError as exc:
            return _gate_error("TRACE-SCHEMA", str(exc))
        print(obs.render_analysis_comparison(other, analysis))
    elif args.format == "json":
        print(json.dumps(analysis, indent=1, sort_keys=True))
    else:
        print(obs.render_analysis_text(analysis))

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(analysis, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"analytics written to {args.output}", file=sys.stderr)
    if args.bench_output:
        payload = obs.analysis_bench_payload(analysis)
        with open(args.bench_output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"bench metrics written to {args.bench_output}", file=sys.stderr)
    return gate_exit_code([], args.fail_on)


def _cmd_perf(args) -> int:
    try:
        with open(args.path, "r", encoding="utf-8") as handle:
            trace = obs.load_trace(handle)
    except (OSError, ValueError) as exc:
        print(f"repro perf: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(trace.get("perf", {}), indent=2, sort_keys=True))
    else:
        print(obs.render_perf_report(trace))
    return 0


def _drain_live_capture(aggregator, path: str) -> None:
    """Serialize an aggregator's retained stream to trace-format-v2."""
    collector = obs.TraceCollector()
    collector.metadata["command"] = "top"
    aggregator.drain_to_collector(collector)
    with open(path, "w", encoding="utf-8") as handle:
        count = obs.write_chrome_trace(collector, handle)
    print(f"{count} trace events written to {path}", file=sys.stderr)


def _cmd_top(args) -> int:
    import time

    from repro.obs.live import (
        LiveTelemetrySession,
        TelemetryAggregator,
        render_dashboard,
        replay_trace,
        run_dashboard,
        trace_worker_count,
    )

    def emit(snapshot: dict) -> None:
        if args.json:
            print(json.dumps(snapshot, indent=1, sort_keys=True))
        else:
            print(render_dashboard(snapshot))

    if args.replay:
        try:
            with open(args.replay, "r", encoding="utf-8") as handle:
                trace = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"repro top: error: {exc}", file=sys.stderr)
            return 2
        aggregator = TelemetryAggregator(
            num_workers=trace_worker_count(trace)
        )
        try:
            if args.speed > 0 and not args.once and not args.json:
                snapshot = replay_trace(
                    trace, aggregator, speed=args.speed, sleep_fn=time.sleep,
                    on_frame=lambda s: print("\x1b[2J\x1b[H" + render_dashboard(s)),
                    frame_interval_s=args.interval,
                )
            else:
                snapshot = replay_trace(trace, aggregator)
        except ValueError as exc:
            print(f"repro top: error: {exc}", file=sys.stderr)
            return 2
        emit(snapshot)
        if args.drain:
            _drain_live_capture(aggregator, args.drain)
        return 0

    if args.attach:
        try:
            session = LiveTelemetrySession.load_spec(args.attach)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"repro top: error: {exc}", file=sys.stderr)
            return 2
        aggregator = session.aggregator()
        try:
            snapshot = run_dashboard(
                aggregator,
                now_fn=time.monotonic,
                sleep_fn=time.sleep,
                write=sys.stdout.write,
                interval_s=args.interval,
                duration_s=args.duration,
                once=args.once,
                as_json=args.json,
            )
        finally:
            session.close()
        if args.drain:
            _drain_live_capture(aggregator, args.drain)
        return 0

    # --smoke: the perfbench multiprocess smoke workload with the ring
    # exporters on; this CLI process is the single consumer of the rings.
    import threading

    from repro.core.tuning import AdaptiveTuner
    from repro.perfbench.benches import _small_training_setup
    from repro.runtime.multiprocess import MultiprocessRun

    setup = _small_training_setup()
    session = LiveTelemetrySession.create(num_workers=len(setup["partitions"]))
    duration = args.duration if args.duration is not None else 0.6
    failure: List[BaseException] = []

    def _run() -> None:
        try:
            MultiprocessRun(
                time_scale=0.004, tuner=AdaptiveTuner(), seed=args.seed,
                live_session=session, **setup,
            ).run(duration_s=duration)
        except BaseException as exc:  # surfaced after the join below
            failure.append(exc)

    runner = threading.Thread(target=_run, daemon=True)
    try:
        runner.start()
        aggregator = session.aggregator()
        if args.once:
            # Poll quietly while the run is live (keeps the rings from
            # ever filling), then print one final snapshot.
            while runner.is_alive():
                aggregator.poll(time.monotonic())
                time.sleep(min(args.interval, 0.1))
            runner.join()
            aggregator.poll(time.monotonic())
            emit(aggregator.snapshot(time.monotonic()))
        else:
            run_dashboard(
                aggregator,
                now_fn=time.monotonic,
                sleep_fn=time.sleep,
                write=sys.stdout.write,
                interval_s=args.interval,
                duration_s=args.duration,
                once=False,
                as_json=args.json,
                stop_when=lambda: not runner.is_alive(),
            )
            runner.join()
        if args.drain:
            _drain_live_capture(aggregator, args.drain)
    finally:
        session.close()
        session.unlink()
    if failure:
        print(f"repro top: smoke run failed: {failure[0]}", file=sys.stderr)
        return 1
    return 0


def _cmd_bench(args) -> int:
    from repro.perfbench import (
        bench_payload,
        compare_benchmarks,
        load_bench_payload,
        render_comparison,
        render_results,
        resolve_scale,
        run_benchmarks,
    )

    if args.compare:
        old_path, new_path = args.compare
        try:
            old_payload = load_bench_payload(old_path)
            new_payload = load_bench_payload(new_path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"repro bench: error: {exc}", file=sys.stderr)
            return 2
        print(render_comparison(old_payload, new_payload))
        findings = compare_benchmarks(
            old_payload,
            new_payload,
            new_path=new_path,
            threshold=args.threshold,
            rate_tolerance=args.rate_tolerance,
        )
        print()
        print(render_text(findings))
        return gate_exit_code(findings, args.fail_on)

    try:
        scale = resolve_scale(args.scale or os.environ.get("REPRO_SCALE"))
        results = run_benchmarks(args.names or None, scale=scale)
    except ValueError as exc:
        print(f"repro bench: error: {exc}", file=sys.stderr)
        return 2
    print(render_results(results))
    written = []
    try:
        os.makedirs(args.output_dir, exist_ok=True)
        for result in results:
            path = os.path.join(args.output_dir, f"BENCH_{result.name}.json")
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(bench_payload([result], scale), handle,
                          indent=1, sort_keys=True)
                handle.write("\n")
            written.append(path)
        if args.suite:
            with open(args.suite, "w", encoding="utf-8") as handle:
                json.dump(bench_payload(results, scale), handle,
                          indent=1, sort_keys=True)
                handle.write("\n")
            written.append(args.suite)
    except OSError as exc:
        print(f"repro bench: error: {exc}", file=sys.stderr)
        return 2
    print(f"\nwrote {', '.join(written)}", file=sys.stderr)
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.perfmodel import ProfileError, load_hot_profile
    from repro.analysis.rules import rules_for

    paths = args.paths or [os.path.dirname(os.path.abspath(repro.__file__))]
    try:
        rules = rules_for(rule_ids=args.rule, packs=args.pack)
    except ValueError as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2
    if args.profile is not None:
        try:
            hotness = load_hot_profile(args.profile)
        except ProfileError as exc:
            print(f"repro lint: error: {exc}", file=sys.stderr)
            return 2
        for rule in rules:
            if getattr(rule, "uses_profile", False):
                rule.hotness = hotness
    try:
        findings = run_lint(paths, rules=rules)
    except FileNotFoundError as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        rendered = render_json(findings)
    else:
        rendered = render_text(findings, show_suppressed=args.show_suppressed)
    print(rendered)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    return gate_exit_code(findings, args.fail_on)


def _cmd_sanitize(args) -> int:
    from repro.analysis.dynamic import run_sanitizers

    report = run_sanitizers(
        backend=args.backend,
        duration_s=args.duration,
        workers=args.workers,
        seed=args.seed,
        replay=not args.no_replay,
    )
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render_text())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"report written to {args.output}", file=sys.stderr)
    return gate_exit_code(report.findings, args.fail_on)


def _cmd_modelcheck(args) -> int:
    from repro.analysis.model import run_modelcheck

    report = run_modelcheck(
        schemes=None if args.scheme == "all" else [args.scheme],
        workers=args.workers,
        max_iterations=args.max_iterations,
        abort_rate=args.abort_rate,
        staleness_bound=args.staleness_bound,
        abort_budget=args.abort_budget,
        max_states=args.max_states,
        mutants=args.mutants,
        conformance=args.conformance,
        seed=args.seed,
    )
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render_text())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"report written to {args.output}", file=sys.stderr)
    return gate_exit_code(report.findings, args.fail_on)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.verbose:
        obs.attach_cli_handler(
            logging.DEBUG if args.verbose > 1 else logging.INFO
        )
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        with _maybe_trace(args):
            return _cmd_run(args)
    if args.command == "compare":
        with _maybe_trace(args):
            return _cmd_compare(args)
    if args.command == "experiment":
        with _maybe_trace(args):
            return _cmd_experiment(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "perf":
        return _cmd_perf(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "sanitize":
        return _cmd_sanitize(args)
    if args.command == "modelcheck":
        return _cmd_modelcheck(args)
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
