"""The versioned parameter store (the servers' shared state).

A single logical store holds the global model parameters.  Sharding across
server machines affects only *transfer timing* (a pull fans out over
``num_shards`` parallel streams) — the store's semantics are those of
MXNet's KVStore: atomically apply one pushed gradient at a time, serve
consistent snapshots, and stamp everything with a global version (the count
of pushes applied so far).

Version arithmetic gives the staleness measure used throughout the paper:
a gradient computed on snapshot version ``v`` and applied at version ``V``
missed ``V − v`` peer updates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ml.optim import SgdUpdateRule
from repro.ml.params import ParamSet

__all__ = ["PullSnapshot", "PushRecord", "ParameterStore"]


@dataclass(frozen=True)
class PullSnapshot:
    """What a pull returns: a deep parameter copy and its version stamp."""

    params: ParamSet
    version: int
    time: float


@dataclass(frozen=True)
class PushRecord:
    """Bookkeeping for one applied push."""

    worker_id: int
    version_after: int
    snapshot_version: int
    staleness: int
    learning_rate: float
    time: float


class ParameterStore:
    """Global parameters + update rule + version counter.

    ``num_shards`` is exposed so clients can size their parallel transfers,
    but all shards share this one consistent state — the simulation treats
    the shard set as a single serialization point, which matches MXNet's
    per-key atomic updates (each of our updates touches every key, so the
    per-key and whole-model orderings coincide).
    """

    def __init__(self, initial_params: ParamSet, update_rule: SgdUpdateRule,
                 num_shards: int = 1):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self._params = initial_params.copy()
        self._update_rule = update_rule
        self.num_shards = int(num_shards)
        self._version = 0
        self._push_records: list[PushRecord] = []

    # ------------------------------------------------------------------
    # Server operations
    # ------------------------------------------------------------------
    def snapshot(self, time: float) -> PullSnapshot:
        """A consistent deep copy of the current parameters."""
        return PullSnapshot(params=self._params.copy(), version=self._version, time=time)

    def apply_push(
        self, worker_id: int, gradient: ParamSet, snapshot_version: int, time: float
    ) -> PushRecord:
        """Apply one pushed gradient; returns the push's bookkeeping record."""
        if snapshot_version > self._version:
            raise ValueError(
                f"snapshot version {snapshot_version} is from the future "
                f"(store at {self._version})"
            )
        staleness = self._version - snapshot_version
        if hasattr(self._update_rule, "apply_stale"):
            # Staleness-aware rules (related work [29]) damp the rate of
            # out-of-date gradients; the store is where staleness is known.
            rate = self._update_rule.apply_stale(
                self._params, gradient, staleness
            )
        else:
            rate = self._update_rule.apply(self._params, gradient)
        self._version += 1
        record = PushRecord(
            worker_id=worker_id,
            version_after=self._version,
            snapshot_version=snapshot_version,
            staleness=self._version - 1 - snapshot_version,
            learning_rate=rate,
            time=time,
        )
        self._push_records.append(record)
        return record

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Number of pushes applied so far."""
        return self._version

    @property
    def params(self) -> ParamSet:
        """Live view of the parameters (read-only by convention)."""
        return self._params

    def push_records(self) -> list:
        """All applied pushes, in apply order."""
        return list(self._push_records)

    def mean_staleness(self) -> float:
        """Average missed-updates count over all applied pushes."""
        if not self._push_records:
            return 0.0
        return sum(r.staleness for r in self._push_records) / len(self._push_records)

    def __repr__(self) -> str:
        return f"ParameterStore(version={self._version}, shards={self.num_shards})"
