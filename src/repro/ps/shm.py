"""Zero-copy shared-memory parameter transport with seqlock version fences.

The multiprocess backend used to pickle every ndarray payload through its
queues — the exact per-iteration cost the ROADMAP's "make the hot paths
actually fast" item targets.  This module is the replacement data plane:
each parameter key lives in its own ``multiprocessing.shared_memory``
segment, and a store-wide *version fence* (a seqlock) makes multi-key
snapshots consistent without locks:

* the **writer** bumps the fence sequence to an odd value, mutates the
  payload segments, publishes the new version, and bumps the sequence
  back to even — all inside :meth:`ShmParamStore.write_fence`;
* a **reader** samples the sequence, copies the payload out, and retries
  whenever the sequence was odd (a write was in flight) or changed while
  it copied — :meth:`ShmParamStore.read_fence` / :meth:`ShmParamStore.read`.

The queues stay as the *control plane*: pull/push wire tags still cross
the server's request queue in processing order (trace conformance replays
that stream through the protocol model), but the array payloads never do.

Single-writer discipline
------------------------
Each store has exactly one writing process (the server for the parameter
store; the owning worker for its gradient slot).  The seqlock's int64
header accesses are single aligned stores/loads, which CPython + the
queue round-trips (full memory barriers at every ``put``/``get`` syscall)
make safe at this scale; :meth:`write_fence` still detects and rejects a
second concurrent writer loudly.

Ownership
---------
The parent process creates every segment and children inherit the mapped
objects across ``fork`` — no child ever calls ``attach``, so none of them
double-registers with the resource tracker (the Python < 3.13 pitfall
where an attaching process unlinks segments its creator still owns at
exit).  The parent is the single owner: :meth:`close` drops the local
mapping, :meth:`unlink` frees the OS objects.

Raw segment buffers (``ShmArraySegment.array``) must only be touched
inside a fence ``with`` block; the ``BUF-SHM-UNFENCED`` rule of the
ownership lint pack enforces exactly that for code outside this module.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.ml.params import ParamSet

__all__ = [
    "ShmArraySegment",
    "ShmParamStore",
    "ShmStoreSpec",
    "ShmTornRead",
]

#: int64 header slots of the store's meta segment.
_HEADER_SLOTS = 2
_SEQ = 0
_VERSION = 1

#: A reader retries a torn snapshot this many times before concluding the
#: writer died mid-fence.  Bounded by *count*, not wall time: ``repro.ps``
#: is in the deterministic zone, so no wall clock is read here.
_MAX_READ_ATTEMPTS = 10_000

#: Backoff between retries once the first few spins fail — the writer's
#: fence window is microseconds unless the OS preempted it mid-write.
_SPIN_ATTEMPTS = 16
_RETRY_SLEEP_S = 0.0001


class ShmTornRead(RuntimeError):
    """A fenced read never saw a stable sequence (writer died mid-fence?)."""


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Drop *shm* from this process's resource tracker after an attach.

    ``SharedMemory.__init__`` registers every mapping (not just created
    ones) with the tracker on Python < 3.13, so an attaching process
    would unlink the creator's segments when it exits.  The creator keeps
    the one canonical registration; attachers unregister theirs.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(
            getattr(shm, "_name", shm.name), "shared_memory"
        )
    except Exception:  # pragma: no cover - tracker layout is stdlib-private
        pass


def _retrack(shm: shared_memory.SharedMemory) -> None:
    """Re-register *shm* just before the owner unlinks it.

    When creator and attacher share one (forked) resource tracker, an
    attacher's :func:`_untrack` removes the single cache entry for the
    name; ``SharedMemory.unlink`` would then send an unmatched
    unregister and the tracker logs a ``KeyError``.  Registering again
    (idempotent — the cache is a set) keeps the books balanced.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.register(
            getattr(shm, "_name", shm.name), "shared_memory"
        )
    except Exception:  # pragma: no cover - tracker layout is stdlib-private
        pass


class ShmArraySegment:
    """One parameter key's float64 payload in its own shared segment.

    The ``array`` property is a live numpy view onto the mapped buffer —
    zero-copy by construction, and therefore only safe to touch inside
    the owning store's version fence.
    """

    def __init__(
        self, key: str, shape: Tuple[int, ...], shm: shared_memory.SharedMemory
    ):
        self.key = key
        self.shape = tuple(shape)
        self._shm = shm
        self._array: np.ndarray = np.ndarray(
            self.shape, dtype=np.float64, buffer=shm.buf
        )

    @classmethod
    def create(cls, key: str, value: np.ndarray) -> "ShmArraySegment":
        """Allocate a segment sized for *value* and copy it in."""
        initial = np.asarray(value, dtype=np.float64)
        shm = shared_memory.SharedMemory(
            create=True, size=max(int(initial.nbytes), 8)
        )
        segment = cls(key, initial.shape, shm)
        segment.array[...] = initial
        return segment

    @classmethod
    def attach(
        cls, key: str, shape: Tuple[int, ...], name: str
    ) -> "ShmArraySegment":
        """Map an existing segment by name (non-owning)."""
        shm = shared_memory.SharedMemory(name=name)
        _untrack(shm)
        return cls(key, tuple(shape), shm)

    @property
    def name(self) -> str:
        """OS-level segment name (for :class:`ShmStoreSpec` / attach)."""
        return self._shm.name

    @property
    def array(self) -> np.ndarray:
        """Live view onto the shared buffer — fence-guarded access only."""
        if self._array is None:
            raise ValueError(f"segment {self.key!r} is closed")
        return self._array

    def close(self) -> None:
        """Drop the numpy view and unmap the buffer in this process."""
        # The view must go first: SharedMemory.close() releases the
        # exported memoryview and raises BufferError while anything still
        # references it.
        self._array = None  # type: ignore[assignment]
        self._shm.close()

    def unlink(self) -> None:
        """Free the OS object (owner only, after every process closed)."""
        _retrack(self._shm)
        self._shm.unlink()

    def __repr__(self) -> str:
        return f"ShmArraySegment({self.key!r}, shape={self.shape})"


@dataclass(frozen=True)
class ShmStoreSpec:
    """Picklable description of a store, for explicit cross-process attach.

    The multiprocess backend does not need it (children inherit the
    mapped objects across ``fork``), but spawn-based consumers and tests
    attach through this.
    """

    meta_name: str
    #: ``(key, segment_name, shape)`` per parameter, in key order.
    segments: Tuple[Tuple[str, str, Tuple[int, ...]], ...]


class _ReadFence:
    """Consistency token yielded by :meth:`ShmParamStore.read_fence`."""

    __slots__ = ("seq_at_enter", "consistent")

    def __init__(self, seq_at_enter: int):
        self.seq_at_enter = seq_at_enter
        self.consistent = False


class ShmParamStore:
    """A fenced set of shared-memory segments, one per parameter key.

    One process writes (under :meth:`write_fence`), any number read
    (:meth:`read` / :meth:`read_fence`).  The fence couples a version
    number to the payload: a consistent read returns the exact arrays
    that were published with that version, however many keys there are.
    """

    def __init__(
        self,
        meta_shm: shared_memory.SharedMemory,
        segments: Dict[str, ShmArraySegment],
        owner: bool,
    ):
        self._meta_shm = meta_shm
        self._meta: np.ndarray = np.ndarray(
            (_HEADER_SLOTS,), dtype=np.int64, buffer=meta_shm.buf
        )
        self._segments = segments
        self._owner = owner
        # Per-process retry visibility (satellite of the live telemetry
        # plane): retries were always bounded but previously invisible.
        self._counters: Dict[str, int] = {
            "reads": 0,
            "torn_read_retries": 0,
            "fence_waits": 0,
        }

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, params: ParamSet) -> "ShmParamStore":
        """Allocate segments for every key of *params* at version 0."""
        meta = shared_memory.SharedMemory(create=True, size=_HEADER_SLOTS * 8)
        store = cls(
            meta,
            {key: ShmArraySegment.create(key, value) for key, value in params.items()},
            owner=True,
        )
        store._meta[:] = 0
        return store

    @classmethod
    def attach(cls, spec: ShmStoreSpec) -> "ShmParamStore":
        """Map an existing store from its :class:`ShmStoreSpec`."""
        meta = shared_memory.SharedMemory(name=spec.meta_name)
        _untrack(meta)
        segments = {
            key: ShmArraySegment.attach(key, shape, name)
            for key, name, shape in spec.segments
        }
        return cls(meta, segments, owner=False)

    def spec(self) -> ShmStoreSpec:
        """The picklable attach handle for this store."""
        return ShmStoreSpec(
            meta_name=self._meta_shm.name,
            segments=tuple(
                (key, segment.name, segment.shape)
                for key, segment in self._segments.items()
            ),
        )

    # ------------------------------------------------------------------
    # Fences
    # ------------------------------------------------------------------
    @contextmanager
    def write_fence(self, version: int) -> Iterator[None]:
        """Single-writer fence: odd sequence while the payload is torn.

        Publishes *version* and re-evens the sequence on exit — also on
        the exception path, so a crashed apply never wedges readers in
        the retry loop (the backend tears down loudly instead).
        """
        seq = int(self._meta[_SEQ])
        if seq % 2:
            raise RuntimeError(
                "shared-memory store already inside a write fence; the "
                "seqlock is single-writer by protocol"
            )
        self._meta[_SEQ] = seq + 1
        try:
            yield
        finally:
            self._meta[_VERSION] = version
            self._meta[_SEQ] = seq + 2

    @contextmanager
    def read_fence(self) -> Iterator[_ReadFence]:
        """Yield a fence token; ``fence.consistent`` is valid after exit."""
        fence = _ReadFence(int(self._meta[_SEQ]))
        yield fence
        fence.consistent = (
            fence.seq_at_enter % 2 == 0
            and int(self._meta[_SEQ]) == fence.seq_at_enter
        )

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def write(self, params: ParamSet, version: int) -> None:
        """Publish *params* as *version* (single-writer)."""
        with self.write_fence(version):
            for key, segment in self._segments.items():
                segment.array[...] = params[key]

    def read(self) -> Tuple[ParamSet, int]:
        """A consistent ``(snapshot, version)`` pair; retries torn reads."""
        for attempt in range(_MAX_READ_ATTEMPTS):
            with self.read_fence() as fence:
                arrays = {
                    key: segment.array.copy()
                    for key, segment in self._segments.items()
                }
                version = int(self._meta[_VERSION])
            if fence.consistent:
                self._counters["reads"] += 1
                return ParamSet(arrays), version
            self._counters["torn_read_retries"] += 1
            if attempt >= _SPIN_ATTEMPTS:
                self._counters["fence_waits"] += 1
                time.sleep(_RETRY_SLEEP_S)
        raise ShmTornRead(
            f"no consistent snapshot after {_MAX_READ_ATTEMPTS} attempts; "
            f"the writer likely died inside its fence"
        )

    @property
    def version(self) -> int:
        """The last published version, read through the fence."""
        for attempt in range(_MAX_READ_ATTEMPTS):
            with self.read_fence() as fence:
                version = int(self._meta[_VERSION])
            if fence.consistent:
                return version
            self._counters["torn_read_retries"] += 1
            if attempt >= _SPIN_ATTEMPTS:
                self._counters["fence_waits"] += 1
                time.sleep(_RETRY_SLEEP_S)
        raise ShmTornRead(
            f"no consistent version after {_MAX_READ_ATTEMPTS} attempts; "
            f"the writer likely died inside its fence"
        )

    def backing(self) -> ParamSet:
        """A :class:`ParamSet` over the *live* segment arrays (no copy).

        Strictly the single writer's tool: mutate it only inside
        :meth:`write_fence`, and never hand it to a reading process —
        readers go through :meth:`read`, which is what the fence
        certifies.
        """
        return ParamSet(
            {key: segment.array for key, segment in self._segments.items()}
        )

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def keys(self) -> List[str]:
        """Parameter names, in creation order."""
        return list(self._segments)

    def counters(self) -> Dict[str, int]:
        """This process's fence statistics, as a metrics-ready dict.

        ``reads`` counts consistent snapshots, ``torn_read_retries``
        counts snapshots discarded because a write fence was in flight
        (or the sequence moved mid-copy), and ``fence_waits`` counts the
        retries that escalated past the spin phase into a sleep.  The
        numbers are local to this process's mapping — each worker sees
        its own contention, which is exactly what the live telemetry
        plane exports per source.
        """
        return dict(self._counters)

    def close(self) -> None:
        """Unmap every segment in this process (idempotent per process)."""
        for segment in self._segments.values():
            segment.close()
        self._meta = None  # type: ignore[assignment]
        self._meta_shm.close()

    def unlink(self) -> None:
        """Free the OS objects; only the creating (owner) store may."""
        if not self._owner:
            raise RuntimeError("only the owning store may unlink its segments")
        for segment in self._segments.values():
            segment.unlink()
        _retrack(self._meta_shm)
        self._meta_shm.unlink()

    def __repr__(self) -> str:
        return (
            f"ShmParamStore(keys={list(self._segments)}, owner={self._owner})"
        )
