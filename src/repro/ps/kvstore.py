"""An MXNet-flavoured KVStore façade over the parameter store.

The paper implements SpecSync as a pluggable module against MXNet's
KVStore (init / push / pull per key).  This façade exposes that exact
surface on top of :class:`repro.ps.store.ParameterStore`, so code written
against the MXNet idiom ports directly::

    kv = KVStore.create("dist_async", update_rule)
    kv.init("weight", np.zeros((10, 4)))
    kv.push("weight", grad_array)
    fresh = kv.pull("weight")

Per-key pushes are applied atomically in arrival order, matching MXNet's
semantics; ``version`` counts whole-model updates for staleness math when
every push covers all keys (the engine's usage), and per-key versions are
tracked for partial-push users.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.ml.optim import SgdUpdateRule
from repro.ml.params import ParamSet
from repro.utils.validation import check_in

__all__ = ["KVStore"]

_SUPPORTED_MODES = ("local", "dist_sync", "dist_async")


class KVStore:
    """Key-value parameter storage with MXNet-style init/push/pull."""

    def __init__(self, mode: str, update_rule: SgdUpdateRule):
        self.mode = check_in("mode", mode, _SUPPORTED_MODES)
        self._update_rule = update_rule
        self._arrays: Dict[str, np.ndarray] = {}
        self._key_versions: Dict[str, int] = {}
        self._total_pushes = 0
        #: key -> cached single-key ParamSet over the *same* array object;
        #: update rules mutate arrays in place, so the wrapper stays valid
        #: and push() allocates no per-call parameter wrapper.
        self._param_wrappers: Dict[str, ParamSet] = {}

    @classmethod
    def create(cls, mode: str = "dist_async",
               update_rule: Optional[SgdUpdateRule] = None) -> "KVStore":
        """MXNet-style constructor (``kvstore.create("dist_async")``)."""
        from repro.ml.optim import ConstantSchedule

        return cls(mode, update_rule or SgdUpdateRule(ConstantSchedule(0.1)))

    # ------------------------------------------------------------------
    # MXNet surface
    # ------------------------------------------------------------------
    def init(self, key: str, value: np.ndarray) -> None:
        """Register a key with its initial value.  Re-init is an error."""
        if key in self._arrays:
            raise KeyError(f"key {key!r} already initialized")
        # Explicit copy: the store must not alias the caller's array.
        array = np.array(value, dtype=np.float64, copy=True)
        self._arrays[key] = array
        self._param_wrappers[key] = ParamSet({key: array})
        self._key_versions[key] = 0

    def push(self, key: str, gradient: np.ndarray) -> int:
        """Apply one gradient to ``key``; returns the key's new version.

        The shared update rule's schedule advances once per push, like a
        server-side updater in MXNet.
        """
        array = self._require(key)
        gradient = np.asarray(gradient, dtype=np.float64)
        if gradient.shape != array.shape:
            raise ValueError(
                f"gradient shape {gradient.shape} does not match "
                f"{key!r} shape {array.shape}"
            )
        # Route through the update rule on the cached single-key ParamSet
        # so schedules/clipping behave exactly as in the engine.  apply()
        # mutates the stored array in place, so no re-assignment is needed.
        self._update_rule.apply(self._param_wrappers[key], ParamSet({key: gradient}))
        self._key_versions[key] += 1
        self._total_pushes += 1
        return self._key_versions[key]

    def pull(self, key: str) -> np.ndarray:
        """A copy of the key's current value."""
        return self._require(key).copy()

    def row_sparse_pull(self, key: str, row_ids: np.ndarray) -> np.ndarray:
        """Pull only selected rows (MXNet's row_sparse_pull) — the access
        pattern sparse embedding models use."""
        array = self._require(key)
        if array.ndim < 1:
            raise ValueError(f"key {key!r} is scalar; no rows to pull")
        row_ids = np.asarray(row_ids, dtype=np.int64)
        nrows = array.shape[0]
        if row_ids.size and (
            int(row_ids.min()) < 0 or int(row_ids.max()) >= nrows
        ):
            bad = row_ids[(row_ids < 0) | (row_ids >= nrows)]
            raise ValueError(
                f"row_ids out of bounds for key {key!r} with {nrows} rows: "
                f"{bad.tolist()} (valid range is 0..{nrows - 1})"
            )
        # Fancy indexing already materializes a fresh gathered array; the
        # old trailing .copy() duplicated every pulled row a second time.
        return array[row_ids]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def keys(self) -> List[str]:
        return list(self._arrays)

    def version(self, key: str) -> int:
        """Number of pushes applied to ``key``."""
        self._require(key)
        return self._key_versions[key]

    @property
    def total_pushes(self) -> int:
        return self._total_pushes

    def as_paramset(self) -> ParamSet:
        """Snapshot of all keys as a :class:`ParamSet` (deep copy)."""
        return ParamSet({k: v.copy() for k, v in self._arrays.items()})

    def _require(self, key: str) -> np.ndarray:
        if key not in self._arrays:
            known = ", ".join(sorted(self._arrays)) or "(none)"
            raise KeyError(f"key {key!r} not initialized; known keys: {known}")
        return self._arrays[key]

    def __repr__(self) -> str:
        return (
            f"KVStore(mode={self.mode!r}, keys={len(self._arrays)}, "
            f"pushes={self._total_pushes})"
        )
