"""The synchronization-policy interface.

A :class:`SyncPolicy` decides *when* workers may pull and whether in-flight
iterations should be aborted; the engine owns everything else (timing,
transfers, gradients).  ASP/BSP/SSP/naïve-waiting live in ``repro.sync``;
SpecSync lives in ``repro.core``.  Policies interact with the engine through
a narrow surface:

* hooks the engine calls (``on_pull``, ``on_push_applied``, …), and
* actions the policy may invoke back (``engine.release_worker``,
  ``engine.request_resync``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.ps.engine import TrainingEngine
    from repro.ps.store import PushRecord

__all__ = ["WorkerView", "SyncPolicy"]


@dataclass(frozen=True)
class WorkerView:
    """Read-only facts about one worker that policies may inspect."""

    worker_id: int
    node_name: str
    iterations_completed: int
    computing: bool
    parked: bool


class SyncPolicy(abc.ABC):
    """Base class for synchronization schemes.

    The default implementation is exactly ASP: never delay, never gate,
    never abort.  Subclasses override the hooks they need.
    """

    def __init__(self):
        # Bound by the engine before the run starts (see ``bind``).
        self.engine: Optional["TrainingEngine"] = None

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Scheme name used in reports (e.g. ``"asp"``, ``"specsync-adaptive"``)."""

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, engine: "TrainingEngine") -> None:
        """Called once before the run starts; policies keep the reference."""
        self.engine = engine

    # ------------------------------------------------------------------
    # Hooks (called by the engine)
    # ------------------------------------------------------------------
    def pull_delay(self, worker_id: int) -> float:
        """Extra virtual seconds to wait before issuing a pull (naïve waiting)."""
        return 0.0

    def can_start_iteration(self, worker_id: int) -> bool:
        """Gate the next iteration (BSP barrier / SSP staleness bound).

        Returning False parks the worker; the policy must eventually call
        ``engine.release_worker(worker_id)`` to wake it.
        """
        return True

    def on_pull(self, worker_id: int, snapshot_version: int) -> None:
        """A worker received a pull response and is about to compute."""

    def on_push_applied(self, record: "PushRecord") -> None:
        """The store applied a worker's push (called at server-side apply time)."""

    def on_iteration_complete(self, worker_id: int, iteration: int) -> None:
        """A worker fully finished an iteration (push acked)."""

    def on_abort(self, worker_id: int, iteration: int) -> None:
        """A worker aborted an iteration and will re-pull."""

    def on_run_end(self) -> None:
        """The run is over; flush any policy-side stats."""

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Policy-specific numbers for the run report (override as needed)."""
        return {}
