"""The training engine: drives every worker through pull → compute → push.

This is the simulated counterpart of MXNet's distributed worker runtime.
Each worker loops:

1. ask the policy whether it may start (BSP/SSP gating) and how long to
   defer its pull (naïve waiting);
2. pull a parameter snapshot from the servers (a real network round trip on
   the virtual timeline);
3. compute a gradient for one mini-batch — the computation occupies
   ``ComputeTimeModel.sample()`` virtual seconds and can be **aborted** by a
   policy-requested re-sync, in which case the worker re-pulls and restarts
   (SpecSync's abort-and-refresh, paper Algorithm 2);
4. push the gradient; the store applies it at server-side delivery time
   using the snapshot's version for staleness accounting;
5. notify the policy and go to 1.

Gradients are evaluated numerically on the exact snapshot pulled, so every
staleness effect in the results is real SGD arithmetic, not a model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.cluster.compute import ComputeTimeModel
from repro.cluster.spec import ClusterSpec
from repro.events import Simulator
from repro.metrics.convergence import ConvergenceCriterion
from repro.metrics.curves import EvalPoint, LossCurve
from repro.metrics.traces import AbortEvent, PullEvent, PushEvent, TraceRecorder
from repro.ml.datasets.base import Partition
from repro.ml.models.base import Batch, Model
from repro.ml.optim import SgdUpdateRule
from repro.netsim.ledger import TransferLedger
from repro.netsim.messages import CONTROL_MESSAGE_BYTES, Message, MessageKind
from repro.netsim.network import LinkModel, Network
from repro.obs.clock import VirtualClock
from repro.obs.core import tracer_for
from repro.obs.log import VirtualTimeLoggerAdapter, get_logger
from repro.obs.perf import profiler_for
from repro.obs.straggler import AbortStormDetector, StragglerDetector
from repro.obs.tracks import SERVER_TRACK, resync_flow_key, worker_track
from repro.ps.policy import SyncPolicy, WorkerView
from repro.ps.result import RunResult, WorkerStats
from repro.ps.store import ParameterStore, PullSnapshot
from repro.utils.rng import RngStreams

__all__ = ["EngineConfig", "WorkerRuntime", "TrainingEngine"]

SERVERS_NODE = "servers"
SCHEDULER_NODE = "scheduler"


@dataclass
class EngineConfig:
    """Knobs of one training run (independent of workload and scheme)."""

    batch_size: int
    horizon_s: float
    eval_interval_s: float
    param_wire_bytes: float
    grad_wire_bytes: Optional[float] = None  # default: same as params
    link: LinkModel = field(default_factory=LinkModel)
    #: opt-in NIC congestion: serialize each node's outgoing transfers
    #: (see Network.serialize_node_transfers); off for the calibrated
    #: experiments.
    serialize_node_transfers: bool = False
    num_shards: Optional[int] = None  # default: one shard per node
    max_aborts_per_iteration: int = 1
    record_accuracy: bool = False
    convergence: Optional[ConvergenceCriterion] = None  # early-stop when met
    max_total_iterations: Optional[int] = None

    def __post_init__(self):
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.horizon_s <= 0:
            raise ValueError(f"horizon_s must be positive, got {self.horizon_s}")
        if self.eval_interval_s <= 0:
            raise ValueError(
                f"eval_interval_s must be positive, got {self.eval_interval_s}"
            )
        if self.param_wire_bytes < 0:
            raise ValueError("param_wire_bytes must be >= 0")
        if self.max_aborts_per_iteration < 0:
            raise ValueError("max_aborts_per_iteration must be >= 0")

    @property
    def push_wire_bytes(self) -> float:
        # repro: allow[BUF-RETURN-VIEW] grad_wire_bytes/param_wire_bytes are scalar wire-size settings that trip the arrayish name heuristic, not arrays
        return (
            self.grad_wire_bytes
            if self.grad_wire_bytes is not None
            else self.param_wire_bytes
        )


class WorkerRuntime:
    """Mutable per-worker state the engine drives."""

    def __init__(
        self,
        worker_id: int,
        node_name: str,
        partition: Partition,
        compute_model: ComputeTimeModel,
        batch_rng: np.random.Generator,
        compute_rng: np.random.Generator,
    ):
        self.worker_id = worker_id
        self.node_name = node_name
        self.partition = partition
        self.compute_model = compute_model
        self.batch_rng = batch_rng
        self.compute_rng = compute_rng

        # Iteration state
        self.iteration = 0  # index of the in-progress iteration
        self.iteration_started_at = 0.0
        self.snapshot: Optional[PullSnapshot] = None
        self.batch: Optional[Batch] = None
        self.computing = False
        self.parked = False
        self.compute_event = None
        self.compute_started_at = 0.0
        self.aborts_in_iteration = 0
        # Span anchors (observability): when the in-flight pull/push began.
        self.pull_issued_at = 0.0
        self.push_started_at = 0.0
        self.track = worker_track(worker_id)

        # Counters
        self.pulls = 0
        self.pushes = 0
        self.aborts = 0
        self.clean_spans: List[float] = []  # spans of abort-free iterations
        self.all_spans: List[float] = []

    def mean_iteration_time(self, window: int = 20) -> Optional[float]:
        """Recent mean iteration span, preferring abort-free iterations."""
        spans = self.clean_spans[-window:] or self.all_spans[-window:]
        if not spans:
            return None
        return sum(spans) / len(spans)

    def view(self) -> WorkerView:
        """Snapshot this worker's policy-visible state."""
        return WorkerView(
            worker_id=self.worker_id,
            node_name=self.node_name,
            iterations_completed=self.iteration,
            computing=self.computing,
            parked=self.parked,
        )


class TrainingEngine:
    """One simulated distributed-training run."""

    def __init__(
        self,
        model: Model,
        partitions: List[Partition],
        eval_batch: Batch,
        update_rule: SgdUpdateRule,
        policy: SyncPolicy,
        cluster: ClusterSpec,
        base_compute_model: ComputeTimeModel,
        config: EngineConfig,
        seed: int = 0,
        workload_name: str = "workload",
        compute_models: Optional[List[ComputeTimeModel]] = None,
    ):
        if len(partitions) != cluster.num_workers:
            raise ValueError(
                f"{len(partitions)} partitions for {cluster.num_workers} workers"
            )
        if compute_models is not None and len(compute_models) != cluster.num_workers:
            raise ValueError(
                f"{len(compute_models)} compute models for "
                f"{cluster.num_workers} workers"
            )
        self.model = model
        self.eval_batch = eval_batch
        self.policy = policy
        self.cluster = cluster
        self.config = config
        self.seed = seed
        self.workload_name = workload_name

        self.streams = RngStreams(seed)
        self.sim = Simulator()
        self.ledger = TransferLedger()
        self.network = Network(
            self.sim, link=config.link, ledger=self.ledger,
            rng=self.streams.get("network"),
            node_bandwidth={
                node.name: node.instance.network_bytes_per_s
                for node in cluster.nodes
            },
            serialize_node_transfers=config.serialize_node_transfers,
        )
        self.store = ParameterStore(
            initial_params=model.init_params(self.streams.get("init")),
            update_rule=update_rule,
            num_shards=config.num_shards or cluster.num_workers,
        )
        self.traces = TraceRecorder()
        self.curve = LossCurve()
        # Observability: live against the enabled collector, or the shared
        # no-op tracer (the default).  Bound at construction — enable
        # observability (repro.obs.collecting) *before* building engines.
        self.tracer = tracer_for(VirtualClock(self.sim))
        # Profiler (same enablement rules): per-phase virtual-time
        # histograms plus the online straggler/abort-storm detectors.
        self.profiler = profiler_for(VirtualClock(self.sim))
        self._straggler: Optional[StragglerDetector] = None
        self._abort_storm: Optional[AbortStormDetector] = None
        if self.profiler.enabled:
            self._straggler = StragglerDetector(cluster.num_workers)
            self._abort_storm = AbortStormDetector()
        self._log = VirtualTimeLoggerAdapter(
            get_logger("engine"), lambda: self.sim.now
        )

        self.workers: List[WorkerRuntime] = []
        for i, node in enumerate(cluster.nodes):
            self.workers.append(
                WorkerRuntime(
                    worker_id=i,
                    node_name=node.name,
                    partition=partitions[i],
                    compute_model=(
                        compute_models[i]
                        if compute_models is not None
                        else base_compute_model.scaled(node.speed_factor)
                    ),
                    batch_rng=self.streams.get("batch", i),
                    compute_rng=self.streams.get("compute", i),
                )
            )

        self._stopped = False
        self._consecutive_converged = 0
        self._accuracy_fn: Optional[Callable] = (
            getattr(model, "accuracy", None) if config.record_accuracy else None
        )
        policy.bind(self)

    # ------------------------------------------------------------------
    # Public surface for policies
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.sim.now

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    @property
    def store_version(self) -> int:
        """Global pushes applied so far."""
        return self.store.version

    def worker_view(self, worker_id: int) -> WorkerView:
        """Read-only facts about one worker (for policies)."""
        return self.workers[worker_id].view()

    def worker_node(self, worker_id: int) -> str:
        """The cluster node name hosting a worker."""
        return self.workers[worker_id].node_name

    def mean_iteration_time(self, worker_id: int) -> Optional[float]:
        """Recent mean iteration span for the tuner's T_i estimate."""
        return self.workers[worker_id].mean_iteration_time()

    def release_worker(self, worker_id: int) -> None:
        """Wake a parked worker (BSP barrier open, SSP bound satisfied)."""
        worker = self.workers[worker_id]
        if not worker.parked:
            return
        worker.parked = False
        if not self._stopped:
            self._schedule_pull(worker)

    def request_resync(
        self,
        worker_id: int,
        for_iteration: int,
        peer_pushes: Optional[int] = None,
    ) -> bool:
        """Abort ``worker_id``'s in-flight iteration and have it re-pull.

        ``peer_pushes`` is the triggering peer-push count from the
        scheduler's decision; it rides on the abort instant so trace
        analytics need no heuristic reconstruction of the cause.

        Returns False (no abort) when the worker already moved past
        ``for_iteration``, is not computing, or exhausted its abort budget —
        the "too late" cases of paper Section IV-A.
        """
        worker = self.workers[worker_id]
        if (
            self._stopped
            or not worker.computing
            or worker.iteration != for_iteration
            or worker.aborts_in_iteration >= self.config.max_aborts_per_iteration
        ):
            # Too late: drop any causal-flow origins the scheduler staged.
            self.tracer.flow_discard(resync_flow_key(worker_id, for_iteration))
            return False

        worker.compute_event.cancel()
        worker.computing = False
        wasted = self.sim.now - worker.compute_started_at
        worker.aborts += 1
        worker.aborts_in_iteration += 1
        if self.tracer.enabled:
            # The aborted portion of the compute, the abort point itself,
            # and the causal arrows from the peer pushes (and scheduler
            # decision) that triggered this re-sync.
            self.tracer.span(
                worker.track, "compute", start=worker.compute_started_at,
                args={"iteration": worker.iteration, "aborted": True,
                      "wasted_s": round(wasted, 9)},
            )
            abort_args = {"iteration": worker.iteration,
                          "wasted_s": round(wasted, 9)}
            if peer_pushes is not None:
                abort_args["peer_pushes"] = peer_pushes
            self.tracer.instant(
                worker.track, "abort", cat="abort", args=abort_args,
            )
            self.tracer.flow_end(
                resync_flow_key(worker_id, for_iteration), worker.track
            )
            self.tracer.count("engine.aborts")
            self.tracer.observe("engine.wasted_compute_s", wasted)
        if self.profiler.enabled:
            self.profiler.phase(
                "engine.compute_aborted", start=worker.compute_started_at
            )
            self._abort_storm.record_abort(self.sim.now)
        self._log.debug(
            "worker %d aborted iteration %d (wasted %.3gs)",
            worker_id, worker.iteration, wasted,
        )
        self.traces.record_abort(
            AbortEvent(
                time=self.sim.now,
                worker_id=worker_id,
                iteration=worker.iteration,
                wasted_compute_s=wasted,
            )
        )
        self.policy.on_abort(worker_id, worker.iteration)
        self._issue_pull(worker, is_restart=True)
        return True

    def send_control(
        self,
        kind: MessageKind,
        src: str,
        dst: str,
        payload,
        on_delivery: Callable[[Message], None],
    ) -> None:
        """Send a small control message (notify / re-sync) over the network."""
        message = Message(
            kind=kind, src=src, dst=dst,
            size_bytes=CONTROL_MESSAGE_BYTES, payload=payload,
        )
        self.network.send(message, on_delivery)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute the run and return its results."""
        self._log.info(
            "run start: %s/%s, %d workers, horizon %.6gs",
            self.workload_name, self.policy.name, self.num_workers,
            self.config.horizon_s,
        )
        if self.tracer.enabled:
            # Run boundary markers: several engines may share one collector
            # (repro compare --trace), each restarting virtual time at 0 —
            # the analyzer segments the event stream on these instants.
            self.tracer.instant(
                SERVER_TRACK, "run_start", cat="run",
                args={"workload": self.workload_name,
                      "scheme": self.policy.name,
                      "seed": self.seed,
                      "workers": self.num_workers,
                      "horizon_s": self.config.horizon_s},
            )
        for worker in self.workers:
            self._start_next_iteration(worker)
        self._schedule_eval()
        self.sim.run(until=self.config.horizon_s, stop_when=lambda: self._stopped)
        self.policy.on_run_end()
        if self.profiler.enabled:
            self.profiler.report(
                f"engine:{self.workload_name}:{self.policy.name}:seed{self.seed}",
                {
                    "straggler": self._straggler.report(),
                    "abort_storm": self._abort_storm.report(),
                },
            )
        if self.tracer.enabled:
            self.tracer.instant(
                SERVER_TRACK, "run_end", cat="run",
                args={"total_iterations": self.store.version,
                      "total_aborts": sum(w.aborts for w in self.workers)},
            )
        self._log.info(
            "run end: %d iterations, %d aborts, %d events fired",
            self.store.version, sum(w.aborts for w in self.workers),
            self.sim.events_fired,
        )
        return self._build_result()

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _start_next_iteration(self, worker: WorkerRuntime) -> None:
        if self._stopped or self._iteration_budget_exhausted():
            return
        worker.iteration_started_at = self.sim.now
        worker.aborts_in_iteration = 0
        if not self.policy.can_start_iteration(worker.worker_id):
            worker.parked = True
            return
        self._schedule_pull(worker)

    def _schedule_pull(self, worker: WorkerRuntime) -> None:
        delay = self.policy.pull_delay(worker.worker_id)
        if delay < 0:
            raise ValueError(f"policy returned negative pull delay {delay}")
        if delay > 0:
            self.sim.defer(delay, self._issue_pull, worker, False)
        else:
            self._issue_pull(worker, False)

    def _issue_pull(self, worker: WorkerRuntime, is_restart: bool) -> None:
        worker.pull_issued_at = self.sim.now
        request = Message(
            kind=MessageKind.PULL_REQUEST,
            src=worker.node_name,
            dst=SERVERS_NODE,
            size_bytes=CONTROL_MESSAGE_BYTES,
            payload=worker.worker_id,
        )
        self.network.send(
            request, lambda msg: self._serve_pull(worker, is_restart)
        )

    def _serve_pull(self, worker: WorkerRuntime, is_restart: bool) -> None:
        snapshot = self.store.snapshot(self.sim.now)
        response = Message(
            kind=MessageKind.PULL_RESPONSE,
            src=SERVERS_NODE,
            dst=worker.node_name,
            size_bytes=self.config.param_wire_bytes,
            payload=snapshot,
            parallel_streams=self.store.num_shards,
        )
        self.network.send(
            response, lambda msg: self._on_pull_response(worker, snapshot, is_restart)
        )

    def _on_pull_response(
        self, worker: WorkerRuntime, snapshot: PullSnapshot, is_restart: bool
    ) -> None:
        if self._stopped:
            return
        worker.snapshot = snapshot
        worker.pulls += 1
        if self.tracer.enabled:
            self.tracer.span(
                worker.track, "pull", start=worker.pull_issued_at,
                args={"iteration": worker.iteration,
                      "version": snapshot.version, "restart": is_restart},
            )
            self.tracer.count("engine.pulls")
        if self.profiler.enabled:
            self.profiler.phase("engine.pull", start=worker.pull_issued_at)
        self.traces.record_pull(
            PullEvent(
                time=self.sim.now,
                worker_id=worker.worker_id,
                version=snapshot.version,
                iteration=worker.iteration,
                is_restart=is_restart,
            )
        )
        self.policy.on_pull(worker.worker_id, snapshot.version)
        if not is_restart or worker.batch is None:
            # A restart recomputes the same training batch (Algorithm 2
            # jumps back to the gradient step for the same batch index).
            worker.batch = worker.partition.sample_batch(
                worker.batch_rng, self.config.batch_size
            )
        duration = worker.compute_model.sample_at(worker.compute_rng, self.sim.now)
        worker.computing = True
        worker.compute_started_at = self.sim.now
        worker.compute_event = self.sim.schedule(
            duration, self._on_compute_done, worker
        )

    def _on_compute_done(self, worker: WorkerRuntime) -> None:
        worker.computing = False
        if self.tracer.enabled:
            self.tracer.span(
                worker.track, "compute", start=worker.compute_started_at,
                args={"iteration": worker.iteration, "aborted": False},
            )
        if self.profiler.enabled:
            self.profiler.phase("engine.compute", start=worker.compute_started_at)
        worker.push_started_at = self.sim.now
        _, gradient = self.model.loss_and_grad(worker.snapshot.params, worker.batch)
        push = Message(
            kind=MessageKind.PUSH,
            src=worker.node_name,
            dst=SERVERS_NODE,
            size_bytes=self.config.push_wire_bytes,
            payload=(gradient, worker.snapshot.version),
            parallel_streams=self.store.num_shards,
        )
        self.network.send(push, lambda msg: self._apply_push(worker, msg))

    def _apply_push(self, worker: WorkerRuntime, message: Message) -> None:
        gradient, snapshot_version = message.payload
        record = self.store.apply_push(
            worker.worker_id, gradient, snapshot_version, self.sim.now
        )
        if self.tracer.enabled:
            self.tracer.instant(
                SERVER_TRACK, "push_applied",
                args={"worker": worker.worker_id,
                      "version_after": record.version_after,
                      "staleness": record.staleness},
            )
            self.tracer.count("engine.pushes")
            self.tracer.observe("engine.staleness", record.staleness)
        if self.profiler.enabled:
            # Per-worker push cadence feeds the straggler detector; the
            # interval series is what `repro perf report` sparklines.
            interval = self._straggler.record_push(worker.worker_id, self.sim.now)
            self._abort_storm.record_push(self.sim.now)
            if interval is not None:
                self.profiler.sample(
                    f"engine.push_interval.w{worker.worker_id:03d}",
                    interval,
                    ts=self.sim.now,
                )
        self.traces.record_push(
            PushEvent(
                time=self.sim.now,
                worker_id=worker.worker_id,
                version_after=record.version_after,
                snapshot_version=record.snapshot_version,
                staleness=record.staleness,
                iteration=worker.iteration,
            )
        )
        self.policy.on_push_applied(record)
        ack = Message(
            kind=MessageKind.PUSH_ACK,
            src=SERVERS_NODE,
            dst=worker.node_name,
            size_bytes=CONTROL_MESSAGE_BYTES,
        )
        self.network.send(ack, lambda msg: self._on_push_acked(worker))

    def _on_push_acked(self, worker: WorkerRuntime) -> None:
        span = self.sim.now - worker.iteration_started_at
        worker.all_spans.append(span)
        if worker.aborts_in_iteration == 0:
            worker.clean_spans.append(span)
        if self.tracer.enabled:
            self.tracer.span(
                worker.track, "push", start=worker.push_started_at,
                args={"iteration": worker.iteration},
            )
            self.tracer.span(
                worker.track, "iteration", start=worker.iteration_started_at,
                cat="iteration",
                args={"iteration": worker.iteration,
                      "aborts": worker.aborts_in_iteration},
            )
            self.tracer.observe("engine.iteration_s", span)
        if self.profiler.enabled:
            self.profiler.phase("engine.push", start=worker.push_started_at)
            self.profiler.phase(
                "engine.iteration", start=worker.iteration_started_at,
            )
        worker.pushes += 1
        worker.iteration += 1
        worker.batch = None
        self.policy.on_iteration_complete(worker.worker_id, worker.iteration)
        self._start_next_iteration(worker)

    def _iteration_budget_exhausted(self) -> bool:
        limit = self.config.max_total_iterations
        return limit is not None and self.store.version >= limit

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _schedule_eval(self) -> None:
        self.sim.defer(self.config.eval_interval_s, self._evaluate)

    def _evaluate(self) -> None:
        loss = self.model.loss(self.store.params, self.eval_batch)
        accuracy = None
        if self._accuracy_fn is not None:
            accuracy = self._accuracy_fn(self.store.params, self.eval_batch)
        if self.tracer.enabled:
            self.tracer.instant(
                SERVER_TRACK, "eval",
                args={"loss": round(float(loss), 9),
                      "total_iterations": self.store.version},
            )
        self.curve.add(
            EvalPoint(
                time=self.sim.now,
                total_iterations=self.store.version,
                loss=loss,
                accuracy=accuracy,
            )
        )
        if self._check_early_stop(loss):
            self._stopped = True
            return
        if self.sim.now < self.config.horizon_s:
            self._schedule_eval()

    def _check_early_stop(self, loss: float) -> bool:
        criterion = self.config.convergence
        if criterion is None:
            return False
        if loss <= criterion.target_loss:
            self._consecutive_converged += 1
        else:
            self._consecutive_converged = 0
        return self._consecutive_converged >= criterion.consecutive

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def _build_result(self) -> RunResult:
        stats = [
            WorkerStats(
                worker_id=w.worker_id,
                node_name=w.node_name,
                iterations=w.iteration,
                pulls=w.pulls,
                pushes=w.pushes,
                aborts=w.aborts,
                mean_iteration_time=w.mean_iteration_time() or 0.0,
            )
            for w in self.workers
        ]
        return RunResult(
            scheme=self.policy.name,
            workload=self.workload_name,
            num_workers=self.num_workers,
            seed=self.seed,
            horizon_s=self.config.horizon_s,
            curve=self.curve,
            traces=self.traces,
            ledger=self.ledger,
            worker_stats=stats,
            policy_summary=self.policy.summary(),
        )
