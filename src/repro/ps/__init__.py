"""Parameter-server substrate: sharded store, versioning, training engine.

This package is the from-scratch stand-in for MXNet's KVStore plus the
distributed worker runtime (paper Fig. 1): a versioned parameter store that
servers own, worker clients that pull snapshots and push gradients over the
simulated network, and the :class:`TrainingEngine` that drives every worker
through the pull → compute → push loop under a pluggable synchronization
policy.
"""

from repro.ps.store import ParameterStore, PullSnapshot, PushRecord
from repro.ps.kvstore import KVStore
from repro.ps.policy import SyncPolicy, WorkerView
from repro.ps.engine import TrainingEngine, EngineConfig, WorkerRuntime
from repro.ps.result import RunResult, WorkerStats
from repro.ps.shm import ShmArraySegment, ShmParamStore, ShmStoreSpec, ShmTornRead

__all__ = [
    "KVStore",
    "ParameterStore",
    "PullSnapshot",
    "PushRecord",
    "SyncPolicy",
    "WorkerView",
    "TrainingEngine",
    "EngineConfig",
    "WorkerRuntime",
    "RunResult",
    "WorkerStats",
    "ShmArraySegment",
    "ShmParamStore",
    "ShmStoreSpec",
    "ShmTornRead",
]
