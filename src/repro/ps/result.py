"""Run results: everything a finished training run reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.convergence import (
    ConvergenceCriterion,
    ConvergenceResult,
    detect_convergence,
)
from repro.metrics.curves import LossCurve
from repro.metrics.traces import TraceRecorder
from repro.netsim.ledger import TransferLedger

__all__ = ["WorkerStats", "RunResult"]


@dataclass(frozen=True)
class WorkerStats:
    """Per-worker counters at the end of a run."""

    worker_id: int
    node_name: str
    iterations: int
    pulls: int
    pushes: int
    aborts: int
    mean_iteration_time: float


@dataclass
class RunResult:
    """The full outcome of one simulated training run."""

    scheme: str
    workload: str
    num_workers: int
    seed: int
    horizon_s: float
    curve: LossCurve
    traces: TraceRecorder
    ledger: TransferLedger
    worker_stats: List[WorkerStats]
    convergence: Optional[ConvergenceResult] = None
    policy_summary: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total_iterations(self) -> int:
        """Cluster-wide completed iterations (== applied pushes)."""
        return sum(w.iterations for w in self.worker_stats)

    @property
    def total_aborts(self) -> int:
        """Cluster-wide abort count (SpecSync restarts)."""
        return sum(w.aborts for w in self.worker_stats)

    @property
    def mean_staleness(self) -> float:
        """Mean missed-update count over all applied pushes."""
        return self.traces.mean_staleness()

    @property
    def final_loss(self) -> float:
        """Loss at the last evaluation."""
        return self.curve.final_loss

    @property
    def total_transfer_bytes(self) -> float:
        """Total network bytes moved during the run."""
        return self.ledger.total_bytes

    # ------------------------------------------------------------------
    # Evaluation helpers
    # ------------------------------------------------------------------
    def evaluate_convergence(self, criterion: ConvergenceCriterion) -> ConvergenceResult:
        """Apply the paper's convergence criterion and cache the result."""
        self.convergence = detect_convergence(self.curve, criterion)
        return self.convergence

    def time_to_convergence(self, criterion: ConvergenceCriterion) -> Optional[float]:
        """Virtual runtime to convergence, or None when the run never got there."""
        result = detect_convergence(self.curve, criterion)
        return result.time if result.converged else None

    def speedup_over(self, baseline: "RunResult", criterion: ConvergenceCriterion) -> float:
        """Baseline-runtime / this-runtime to the same target (paper's speedup).

        Raises if either run failed to converge — a speedup against a
        non-converged run would be meaningless.
        """
        mine = self.time_to_convergence(criterion)
        theirs = baseline.time_to_convergence(criterion)
        if mine is None:
            raise ValueError(f"{self.scheme} did not converge; no speedup defined")
        if theirs is None:
            raise ValueError(f"{baseline.scheme} did not converge; no speedup defined")
        return theirs / mine

    def summary(self) -> Dict[str, object]:
        """Compact dictionary used by report renderers."""
        return {
            "scheme": self.scheme,
            "workload": self.workload,
            "workers": self.num_workers,
            "iterations": self.total_iterations,
            "aborts": self.total_aborts,
            "mean_staleness": round(self.mean_staleness, 3),
            "final_loss": round(self.final_loss, 5),
            "transfer_bytes": self.total_transfer_bytes,
            **self.policy_summary,
        }

    def __repr__(self) -> str:
        return (
            f"RunResult({self.scheme} on {self.workload}, "
            f"{self.num_workers} workers, iters={self.total_iterations}, "
            f"final_loss={self.final_loss:.4g})"
        )
