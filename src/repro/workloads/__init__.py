"""The paper's three benchmark workloads (Table I), plus test-scale variants.

A :class:`Workload` bundles everything one training run needs besides the
cluster and the synchronization scheme: the model, the dataset, the server
update rule, the per-iteration compute-time model (calibrated to Table I's
iteration times), and the wire sizes used for transfer accounting
(Table I's parameter counts at float32).
"""

from repro.workloads.base import Workload, WorkloadScale
from repro.workloads.presets import (
    matrix_factorization_workload,
    cifar10_workload,
    imagenet_workload,
    tiny_workload,
    PAPER_WORKLOADS,
)

__all__ = [
    "Workload",
    "WorkloadScale",
    "matrix_factorization_workload",
    "cifar10_workload",
    "imagenet_workload",
    "tiny_workload",
    "PAPER_WORKLOADS",
]
