"""The three Table-I workloads and a tiny test workload.

Numbers mirrored from Table I:

==========  ============  ===========  ============  ==============
Workload    # parameters  Dataset      Dataset size  Iteration time
==========  ============  ===========  ============  ==============
MF          4.2 million   MovieLens    100,000       3 s
CIFAR-10    2.5 million   CIFAR-10     50,000        14 s
ImageNet    5.9 million   ImageNet     281,167       70 s
==========  ============  ===========  ============  ==============

The virtual iteration times and the wire sizes (# parameters × 4 bytes)
reproduce the paper's scale exactly; the numeric models are
simulation-sized substitutes (see DESIGN.md, substitution table).
Convergence targets were calibrated so the ASP baseline converges within
the default horizon with a clear margin — the experiments compare schemes
against the *same* target, as the paper does.
"""

from __future__ import annotations

from repro.cluster.compute import ComputeTimeModel, StragglerModel
from repro.metrics.convergence import ConvergenceCriterion
from repro.ml.datasets.images import SyntheticImageDataset
from repro.ml.datasets.ratings import SyntheticRatingsDataset
from repro.ml.models.matrix_factorization import MatrixFactorizationModel
from repro.ml.models.mlp import MLPModel
from repro.ml.models.softmax import SoftmaxRegressionModel
from repro.ml.optim import ConstantSchedule, SgdUpdateRule, StepDecaySchedule
from repro.workloads.base import Workload

__all__ = [
    "matrix_factorization_workload",
    "cifar10_workload",
    "imagenet_workload",
    "tiny_workload",
    "PAPER_WORKLOADS",
]

#: EC2-like iteration-time variability: modest lognormal jitter plus
#: occasional transient stragglers (noisy neighbours, GC pauses).  Workers
#: start together and the jitter is small relative to the iteration time, so
#: pushes arrive in loose waves — the over-dispersed PAP regime the paper's
#: Fig. 3 box plots show, and the regime in which speculation pays off.
_EC2_JITTER = 0.08
_EC2_STRAGGLER = StragglerModel(probability=0.04, max_slowdown=3.0)

#: The synthetic datasets are fixed artifacts (like the paper's MovieLens /
#: CIFAR-10 / ImageNet): the run seed varies partitioning, batch sampling,
#: and timing, never the data itself.
_DATASET_SEED = 11

_MF_USERS = 600
_MF_ITEMS = 400


def matrix_factorization_workload(seed: int = 0) -> Workload:
    """The MF/MovieLens recommendation workload (Table I row 1)."""
    return Workload(
        name="mf",
        model_factory=lambda: MatrixFactorizationModel(
            num_users=_MF_USERS, num_items=_MF_ITEMS, rank=16, reg=0.02,
            global_mean=3.0,
        ),
        dataset_factory=lambda s: SyntheticRatingsDataset(
            num_users=_MF_USERS, num_items=_MF_ITEMS, num_ratings=60_000,
            true_rank=8, seed=_DATASET_SEED,
        ),
        update_rule_factory=lambda: SgdUpdateRule(
            schedule=StepDecaySchedule(
                initial_rate=0.35, milestones=(5000, 8000), decay=0.4
            ),
            clip_norm=10.0,
        ),
        batch_size=500,
        base_compute=ComputeTimeModel(
            mean_time_s=3.0, jitter_sigma=_EC2_JITTER, straggler=_EC2_STRAGGLER
        ),
        param_wire_bytes=4.2e6 * 4,
        convergence=ConvergenceCriterion(target_loss=0.46, consecutive=5),
        default_horizon_s=2100.0,
        eval_interval_s=6.0,
        paper_num_parameters=4_200_000,
        paper_dataset_size=100_000,
        paper_iteration_time_s=3.0,
    )


def cifar10_workload(seed: int = 0) -> Workload:
    """The CIFAR-10 / ResNet-110-class workload (Table I row 2).

    A tanh MLP stands in for the 110-layer residual net (DESIGN.md,
    substitution table); the step-decay learning-rate schedule mirrors the
    paper's decays at epochs 200/250, rescaled to update counts.
    """
    return Workload(
        name="cifar10",
        model_factory=lambda: MLPModel(
            input_dim=32, hidden_dims=[64], num_classes=10, reg=1e-4
        ),
        dataset_factory=lambda s: SyntheticImageDataset(
            num_classes=10, feature_dim=32, num_samples=20_000,
            class_separation=3.0, within_class_std=1.0, warp=True, seed=_DATASET_SEED,
        ),
        update_rule_factory=lambda: SgdUpdateRule(
            schedule=StepDecaySchedule(
                initial_rate=0.25, milestones=(2000, 12_000), decay=0.3
            ),
            clip_norm=10.0,
        ),
        batch_size=128,
        base_compute=ComputeTimeModel(
            mean_time_s=14.0, jitter_sigma=_EC2_JITTER, straggler=_EC2_STRAGGLER
        ),
        param_wire_bytes=2.5e6 * 4,
        convergence=ConvergenceCriterion(target_loss=0.45, consecutive=5),
        default_horizon_s=9000.0,
        eval_interval_s=25.0,
        paper_num_parameters=2_500_000,
        paper_dataset_size=50_000,
        paper_iteration_time_s=14.0,
    )


def imagenet_workload(seed: int = 0) -> Workload:
    """The ImageNet / ResNet-18-class workload (Table I row 3)."""
    return Workload(
        name="imagenet",
        model_factory=lambda: MLPModel(
            input_dim=64, hidden_dims=[128, 64], num_classes=100, reg=1e-4
        ),
        dataset_factory=lambda s: SyntheticImageDataset(
            num_classes=100, feature_dim=64, num_samples=30_000,
            class_separation=4.0, within_class_std=1.0, warp=True, seed=_DATASET_SEED,
        ),
        update_rule_factory=lambda: SgdUpdateRule(
            schedule=StepDecaySchedule(
                initial_rate=0.6, milestones=(2800, 8000), decay=0.25
            ),
            clip_norm=10.0,
        ),
        batch_size=128,
        base_compute=ComputeTimeModel(
            mean_time_s=70.0, jitter_sigma=_EC2_JITTER, straggler=_EC2_STRAGGLER
        ),
        param_wire_bytes=5.9e6 * 4,
        convergence=ConvergenceCriterion(target_loss=1.40, consecutive=5),
        default_horizon_s=14_000.0,
        eval_interval_s=120.0,
        paper_num_parameters=5_900_000,
        paper_dataset_size=281_167,
        paper_iteration_time_s=70.0,
    )


def tiny_workload(seed: int = 0) -> Workload:
    """A seconds-scale workload for unit and integration tests."""
    return Workload(
        name="tiny",
        model_factory=lambda: SoftmaxRegressionModel(
            input_dim=8, num_classes=3, reg=1e-4
        ),
        dataset_factory=lambda s: SyntheticImageDataset(
            num_classes=3, feature_dim=8, num_samples=1200,
            class_separation=3.0, warp=False, seed=_DATASET_SEED,
        ),
        update_rule_factory=lambda: SgdUpdateRule(schedule=ConstantSchedule(0.2)),
        batch_size=32,
        base_compute=ComputeTimeModel(mean_time_s=1.0, jitter_sigma=0.2),
        param_wire_bytes=1e5,
        convergence=ConvergenceCriterion(target_loss=0.35, consecutive=3),
        default_horizon_s=120.0,
        eval_interval_s=3.0,
        paper_num_parameters=27,
        paper_dataset_size=1200,
        paper_iteration_time_s=1.0,
    )


def PAPER_WORKLOADS(seed: int = 0) -> list:
    """The three Table-I workloads, in table order."""
    return [
        matrix_factorization_workload(seed),
        cifar10_workload(seed),
        imagenet_workload(seed),
    ]
