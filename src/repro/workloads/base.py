"""The Workload abstraction: everything a run needs except cluster + scheme."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro.cluster.compute import ComputeTimeModel
from repro.cluster.spec import ClusterSpec
from repro.metrics.convergence import ConvergenceCriterion
from repro.ml.datasets.base import Dataset
from repro.ml.models.base import Model
from repro.ml.optim import SgdUpdateRule
from repro.netsim.network import LinkModel
from repro.ps.engine import EngineConfig, TrainingEngine
from repro.ps.policy import SyncPolicy
from repro.utils.rng import RngStreams

__all__ = ["WorkloadScale", "Workload"]


class WorkloadScale(enum.Enum):
    """How big the numeric problem is.

    ``PAPER`` keeps virtual iteration times and wire sizes at Table I scale
    with simulation-sized numerics; ``BENCH`` additionally shrinks the
    numeric problem so the full benchmark suite runs in minutes.
    """

    PAPER = "paper"
    BENCH = "bench"


@dataclass
class Workload:
    """A named, fully-specified training workload."""

    name: str
    model_factory: Callable[[], Model]
    dataset_factory: Callable[[int], Dataset]  # seed -> dataset
    update_rule_factory: Callable[[], SgdUpdateRule]
    batch_size: int
    base_compute: ComputeTimeModel
    param_wire_bytes: float
    convergence: ConvergenceCriterion
    default_horizon_s: float
    eval_interval_s: float
    # Table I metadata (reporting only)
    paper_num_parameters: int = 0
    paper_dataset_size: int = 0
    paper_iteration_time_s: float = 0.0
    link: LinkModel = field(default_factory=LinkModel)

    def with_overrides(self, **changes) -> "Workload":
        """A copy of this workload with some fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Engine construction
    # ------------------------------------------------------------------
    def build_engine(
        self,
        cluster: ClusterSpec,
        policy: SyncPolicy,
        seed: int = 0,
        horizon_s: Optional[float] = None,
        early_stop: bool = False,
        max_total_iterations: Optional[int] = None,
        record_accuracy: bool = False,
        max_aborts_per_iteration: int = 1,
    ) -> TrainingEngine:
        """Wire up a :class:`TrainingEngine` for this workload.

        ``early_stop=True`` stops the simulation once the paper's
        convergence criterion holds (used by runtime-to-convergence
        experiments); otherwise the run spans the full horizon (used by
        learning-curve experiments).
        """
        streams = RngStreams(seed)
        dataset = self.dataset_factory(seed)
        partitions = dataset.partition(cluster.num_workers, streams.get("partition"))
        config = EngineConfig(
            batch_size=self.batch_size,
            horizon_s=horizon_s if horizon_s is not None else self.default_horizon_s,
            eval_interval_s=self.eval_interval_s,
            param_wire_bytes=self.param_wire_bytes,
            link=self.link,
            convergence=self.convergence if early_stop else None,
            max_total_iterations=max_total_iterations,
            record_accuracy=record_accuracy,
            max_aborts_per_iteration=max_aborts_per_iteration,
        )
        return TrainingEngine(
            model=self.model_factory(),
            partitions=partitions,
            eval_batch=dataset.eval_batch(),
            update_rule=self.update_rule_factory(),
            policy=policy,
            cluster=cluster,
            base_compute_model=self.base_compute,
            config=config,
            seed=seed,
            workload_name=self.name,
        )

    def run(
        self,
        cluster: ClusterSpec,
        policy: SyncPolicy,
        seed: int = 0,
        **kwargs,
    ):
        """Build and run in one call; returns the :class:`RunResult`."""
        return self.build_engine(cluster, policy, seed=seed, **kwargs).run()
