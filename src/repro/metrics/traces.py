"""Raw event traces of a training run.

The recorder captures every pull, push, and abort with its virtual
timestamp.  These are the "workload traces" the paper collects for its
Section III empirical study, and the raw material for PAP analysis and the
SpecSync adaptive tuner.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["PullEvent", "PushEvent", "AbortEvent", "TraceRecorder"]


@dataclass(frozen=True)
class PullEvent:
    """A worker received a parameter snapshot."""

    time: float
    worker_id: int
    version: int
    iteration: int
    is_restart: bool  # True when the pull follows an abort


@dataclass(frozen=True)
class PushEvent:
    """The store applied a worker's gradient."""

    time: float
    worker_id: int
    version_after: int
    snapshot_version: int
    staleness: int
    iteration: int


@dataclass(frozen=True)
class AbortEvent:
    """A worker aborted an in-flight iteration for a re-sync."""

    time: float
    worker_id: int
    iteration: int
    wasted_compute_s: float


class TraceRecorder:
    """Append-only trace store with the index structures analyses need."""

    def __init__(self):
        self.pulls: List[PullEvent] = []
        self.pushes: List[PushEvent] = []
        self.aborts: List[AbortEvent] = []
        self._push_times: List[float] = []  # parallel to self.pushes
        self._push_workers: List[int] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_pull(self, event: PullEvent) -> None:
        """Record a delivered pull snapshot."""
        self.pulls.append(event)

    def record_push(self, event: PushEvent) -> None:
        """Record an applied push (must arrive in time order)."""
        if self._push_times and event.time < self._push_times[-1]:
            raise ValueError("pushes must be recorded in time order")
        self.pushes.append(event)
        self._push_times.append(event.time)
        self._push_workers.append(event.worker_id)

    def record_abort(self, event: AbortEvent) -> None:
        """Record a speculative abort."""
        self.aborts.append(event)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def pushes_in_window(
        self, start: float, end: float, exclude_worker: Optional[int] = None
    ) -> int:
        """Number of pushes applied in (start, end], optionally excluding one
        worker's own pushes — the PAP count for that worker.
        """
        lo = bisect.bisect_right(self._push_times, start)
        hi = bisect.bisect_right(self._push_times, end)
        if exclude_worker is None:
            return hi - lo
        return sum(
            1 for i in range(lo, hi) if self._push_workers[i] != exclude_worker
        )

    def push_times(self) -> List[float]:
        """All push timestamps, in order."""
        return list(self._push_times)

    def pulls_by_worker(self) -> Dict[int, List[PullEvent]]:
        """Pull events grouped per worker, preserving time order."""
        grouped: Dict[int, List[PullEvent]] = {}
        for event in self.pulls:
            grouped.setdefault(event.worker_id, []).append(event)
        return grouped

    def pushes_by_worker(self) -> Dict[int, List[PushEvent]]:
        """Push events grouped per worker, preserving time order."""
        grouped: Dict[int, List[PushEvent]] = {}
        for event in self.pushes:
            grouped.setdefault(event.worker_id, []).append(event)
        return grouped

    def mean_staleness(self) -> float:
        """Average missed-update count over all pushes."""
        if not self.pushes:
            return 0.0
        return sum(p.staleness for p in self.pushes) / len(self.pushes)

    def total_wasted_compute(self) -> float:
        """Virtual seconds of computation discarded by aborts."""
        return sum(a.wasted_compute_s for a in self.aborts)

    def __repr__(self) -> str:
        return (
            f"TraceRecorder(pulls={len(self.pulls)}, pushes={len(self.pushes)}, "
            f"aborts={len(self.aborts)})"
        )
