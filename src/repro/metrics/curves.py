"""Learning curves: periodic evaluations of the global model.

Each :class:`EvalPoint` is one measurement of the global parameters on the
held-out batch; a :class:`LossCurve` is the ordered sequence, which is what
the paper's loss-versus-time (Fig. 5, 8, 10) and loss-versus-iteration
(Fig. 9) plots show.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["EvalPoint", "LossCurve"]


@dataclass(frozen=True)
class EvalPoint:
    """One evaluation of the global model."""

    time: float
    total_iterations: int  # pushes applied cluster-wide at eval time
    loss: float
    accuracy: Optional[float] = None


class LossCurve:
    """An ordered sequence of evaluations with interpolation queries."""

    def __init__(self):
        self._points: List[EvalPoint] = []

    def add(self, point: EvalPoint) -> None:
        """Append one evaluation (time must be non-decreasing)."""
        if self._points and point.time < self._points[-1].time:
            raise ValueError("eval points must be added in time order")
        self._points.append(point)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    def __getitem__(self, idx: int) -> EvalPoint:
        return self._points[idx]

    def points(self) -> List[EvalPoint]:
        """A copy of all evaluation points, in time order."""
        return list(self._points)

    def times(self) -> List[float]:
        """The evaluation timestamps."""
        return [p.time for p in self._points]

    def losses(self) -> List[float]:
        """The loss values, aligned with :meth:`times`."""
        return [p.loss for p in self._points]

    def iterations(self) -> List[int]:
        """Cluster-wide iteration counts, aligned with :meth:`times`."""
        return [p.total_iterations for p in self._points]

    @property
    def final_loss(self) -> float:
        if not self._points:
            raise ValueError("empty curve")
        return self._points[-1].loss

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def loss_at_time(self, time: float) -> float:
        """Loss of the most recent evaluation at or before ``time``."""
        if not self._points:
            raise ValueError("empty curve")
        times = [p.time for p in self._points]
        idx = bisect.bisect_right(times, time)
        if idx == 0:
            return self._points[0].loss
        return self._points[idx - 1].loss

    def time_to_loss(self, target: float) -> Optional[float]:
        """First evaluation time at which loss <= target (None if never)."""
        for point in self._points:
            if point.loss <= target:
                return point.time
        return None

    def iterations_to_loss(self, target: float) -> Optional[int]:
        """Cluster-wide iteration count when loss first reaches ``target``."""
        for point in self._points:
            if point.loss <= target:
                return point.total_iterations
        return None

    def as_series(self) -> List[Tuple[float, float]]:
        """(time, loss) pairs — the plot-ready Fig. 8-style series."""
        return [(p.time, p.loss) for p in self._points]

    def best_loss(self) -> float:
        """Minimum loss achieved anywhere on the curve."""
        if not self._points:
            raise ValueError("empty curve")
        return min(p.loss for p in self._points)

    def __repr__(self) -> str:
        if not self._points:
            return "LossCurve(empty)"
        return (
            f"LossCurve({len(self._points)} points, "
            f"t=[{self._points[0].time:.3g}, {self._points[-1].time:.3g}], "
            f"final={self.final_loss:.4g})"
        )
