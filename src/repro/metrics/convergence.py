"""Convergence detection.

The paper (Section VI-B): "Runtime is measured as the timespan from the
beginning of training to convergence, where convergence is defined as the
loss staying below the target value for 5 consecutive iterations."  We apply
the same criterion to the evaluation sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.metrics.curves import LossCurve

__all__ = ["ConvergenceCriterion", "ConvergenceResult", "detect_convergence"]


@dataclass(frozen=True)
class ConvergenceCriterion:
    """Loss must stay below ``target_loss`` for ``consecutive`` evaluations."""

    target_loss: float
    consecutive: int = 5

    def __post_init__(self):
        if self.consecutive < 1:
            raise ValueError(f"consecutive must be >= 1, got {self.consecutive}")


@dataclass(frozen=True)
class ConvergenceResult:
    """When convergence was reached (or that it never was)."""

    converged: bool
    time: Optional[float] = None
    total_iterations: Optional[int] = None

    def require_time(self) -> float:
        """The convergence time; raises if the run never converged."""
        if not self.converged or self.time is None:
            raise ValueError("run did not converge")
        return self.time


def detect_convergence(
    curve: LossCurve, criterion: ConvergenceCriterion
) -> ConvergenceResult:
    """Scan a loss curve for the paper's convergence point.

    Convergence is stamped at the *first* of the qualifying consecutive
    evaluations (the run was already at target then; the remaining
    evaluations just confirm stability).
    """
    run_start = None
    run_length = 0
    for idx, point in enumerate(curve):
        if point.loss <= criterion.target_loss:
            if run_length == 0:
                run_start = idx
            run_length += 1
            if run_length >= criterion.consecutive:
                first = curve[run_start]
                return ConvergenceResult(
                    converged=True,
                    time=first.time,
                    total_iterations=first.total_iterations,
                )
        else:
            run_length = 0
            run_start = None
    return ConvergenceResult(converged=False)
