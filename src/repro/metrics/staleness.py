"""Staleness statistics: the quantity SpecSync directly improves.

Staleness of an applied push = number of peer updates the gradient's
snapshot missed.  This module summarizes its distribution (mean, quantiles,
tail mass) from a run's push trace, and compares two runs — the measurement
behind the freshness claims in the paper's Sections III-IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.metrics.traces import TraceRecorder
from repro.utils.tables import TextTable

__all__ = ["StalenessStats", "StalenessAnalysis", "compare_staleness"]


@dataclass(frozen=True)
class StalenessStats:
    """Summary statistics of one staleness distribution."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    max_value: int

    @classmethod
    def from_values(cls, values: List[int]) -> "StalenessStats":
        if not values:
            raise ValueError("no staleness samples")
        arr = np.asarray(values, dtype=np.float64)
        return cls(
            count=len(values),
            mean=float(arr.mean()),
            median=float(np.median(arr)),
            p95=float(np.percentile(arr, 95)),
            p99=float(np.percentile(arr, 99)),
            max_value=int(arr.max()),
        )


class StalenessAnalysis:
    """Staleness distribution of one run, overall and per worker."""

    def __init__(self, traces: TraceRecorder):
        if not traces.pushes:
            raise ValueError("trace contains no pushes")
        self.values = [p.staleness for p in traces.pushes]
        self.overall = StalenessStats.from_values(self.values)
        self._per_worker: Dict[int, List[int]] = {}
        for push in traces.pushes:
            self._per_worker.setdefault(push.worker_id, []).append(push.staleness)

    def per_worker(self) -> Dict[int, StalenessStats]:
        """Summary per worker (stragglers show up as heavy tails here)."""
        return {
            worker: StalenessStats.from_values(values)
            for worker, values in self._per_worker.items()
        }

    def tail_mass(self, threshold: float) -> float:
        """Fraction of pushes whose staleness exceeds ``threshold``."""
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        return sum(1 for v in self.values if v > threshold) / len(self.values)

    def histogram(self, num_bins: int = 10) -> Dict[str, int]:
        """Counts per staleness bin, for quick terminal inspection."""
        if num_bins < 1:
            raise ValueError("num_bins must be >= 1")
        counts, edges = np.histogram(self.values, bins=num_bins)
        return {
            f"[{edges[i]:.0f}, {edges[i + 1]:.0f})": int(counts[i])
            for i in range(num_bins)
        }


def compare_staleness(
    runs: Dict[str, TraceRecorder], tail_threshold: float = 0.0
) -> str:
    """Render a staleness comparison table across named runs.

    ``tail_threshold`` defaults to the cross-run mean, highlighting how
    much of each run's distribution sits in the harmful tail.
    """
    analyses = {name: StalenessAnalysis(t) for name, t in runs.items()}
    if tail_threshold <= 0.0:
        tail_threshold = float(
            np.mean([a.overall.mean for a in analyses.values()])
        )
    table = TextTable(
        ["run", "pushes", "mean", "median", "p95", "p99",
         f"tail > {tail_threshold:.0f}"],
        title="Staleness comparison (missed peer updates per applied push)",
    )
    for name, analysis in analyses.items():
        stats = analysis.overall
        table.add_row(
            [
                name,
                stats.count,
                f"{stats.mean:.1f}",
                f"{stats.median:.0f}",
                f"{stats.p95:.0f}",
                f"{stats.p99:.0f}",
                f"{analysis.tail_mass(tail_threshold):.0%}",
            ]
        )
    return table.render()
