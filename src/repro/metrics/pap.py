"""Pushes-after-a-pull (PAP) analysis — the paper's Section III study.

For every pull a worker makes, count how many pushes *by other workers*
arrive in each 1-second interval of the following iteration.  Fig. 3 shows
the distribution of those per-interval counts as box plots (5/25/50/75/95th
percentiles); this module reproduces exactly those statistics from a run's
trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.metrics.traces import TraceRecorder

__all__ = ["BoxStats", "pap_interval_counts", "pap_box_stats", "PapAnalysis"]


@dataclass(frozen=True)
class BoxStats:
    """The five box-plot statistics the paper's Fig. 3 draws."""

    p5: float
    p25: float
    median: float
    p75: float
    p95: float

    @classmethod
    def from_samples(cls, samples: List[float]) -> "BoxStats":
        if not samples:
            raise ValueError("cannot compute box stats of an empty sample")
        arr = np.asarray(samples, dtype=np.float64)
        p5, p25, p50, p75, p95 = np.percentile(arr, [5, 25, 50, 75, 95])
        return cls(p5=float(p5), p25=float(p25), median=float(p50),
                   p75=float(p75), p95=float(p95))


def pap_interval_counts(
    traces: TraceRecorder,
    interval_s: float = 1.0,
    num_intervals: int = 10,
) -> Dict[int, List[int]]:
    """Per-interval PAP samples.

    Returns ``{interval_index: [count, ...]}`` where a sample is, for one
    (worker, pull) pair, the number of pushes from *other* workers that
    landed in ``[pull + k·interval, pull + (k+1)·interval)``.

    Only pulls whose full window fits before the worker's next pull are
    counted for interval ``k`` — mirroring the paper's per-iteration split.
    """
    if interval_s <= 0:
        raise ValueError(f"interval_s must be positive, got {interval_s}")
    if num_intervals <= 0:
        raise ValueError(f"num_intervals must be positive, got {num_intervals}")

    counts: Dict[int, List[int]] = {k: [] for k in range(num_intervals)}
    for worker_id, pulls in traces.pulls_by_worker().items():
        # The final pull starts an iteration whose end the trace never saw;
        # it contributes no samples (matching the paper's per-completed-
        # iteration accounting).
        for idx, pull in enumerate(pulls[:-1]):
            next_pull_time = pulls[idx + 1].time
            for k in range(num_intervals):
                window_start = pull.time + k * interval_s
                window_end = pull.time + (k + 1) * interval_s
                if window_end > next_pull_time:
                    break  # interval extends past this iteration
                counts[k].append(
                    traces.pushes_in_window(
                        window_start, window_end, exclude_worker=worker_id
                    )
                )
    return counts


def pap_box_stats(
    traces: TraceRecorder,
    interval_s: float = 1.0,
    num_intervals: int = 10,
) -> Dict[int, BoxStats]:
    """Box-plot statistics per interval (the Fig. 3 series)."""
    counts = pap_interval_counts(traces, interval_s, num_intervals)
    return {
        k: BoxStats.from_samples([float(c) for c in samples])
        for k, samples in counts.items()
        if samples
    }


class PapAnalysis:
    """Bundled PAP results for one run, with the headline summary numbers."""

    def __init__(
        self,
        traces: TraceRecorder,
        interval_s: float = 1.0,
        num_intervals: int = 10,
    ):
        self.traces = traces
        self.interval_s = interval_s
        self.num_intervals = num_intervals
        self.counts = pap_interval_counts(traces, interval_s, num_intervals)
        self.boxes = {
            k: BoxStats.from_samples([float(c) for c in samples])
            for k, samples in self.counts.items()
            if samples
        }

    def window_counts(self, seconds: float) -> List[int]:
        """For every completed (worker, pull), the number of peer pushes in
        the first ``seconds`` after the pull (windows that outlive the
        iteration are skipped, like the per-interval accounting)."""
        samples: List[int] = []
        for worker_id, pulls in self.traces.pulls_by_worker().items():
            for idx, pull in enumerate(pulls[:-1]):
                if pull.time + seconds > pulls[idx + 1].time:
                    continue
                samples.append(
                    self.traces.pushes_in_window(
                        pull.time, pull.time + seconds, exclude_worker=worker_id
                    )
                )
        return samples

    def median_pap_within(self, seconds: float) -> float:
        """Median pushes uncovered within ``seconds`` after a pull.

        The paper's headline: the median within 2 s is over 6 (for 40
        workers on CIFAR-10 — i.e. delaying a pull by ~14% of the iteration
        exposes ≳15% of the cluster's updates).
        """
        samples = self.window_counts(seconds)
        if not samples:
            return 0.0
        return float(np.median(samples))

    def uniformity_ratio(self) -> float:
        """Max/min of per-interval median counts (≈1 means uniform arrivals,
        the paper's Section III observation)."""
        medians = [b.median for b in self.boxes.values() if b.median > 0]
        if len(medians) < 2:
            return 1.0
        return max(medians) / min(medians)
