"""Metrics: event traces, PAP analysis, learning curves, convergence.

Everything the evaluation section measures comes out of this package:
pull/push traces feed the Fig. 3 PAP analysis, eval-loss curves feed
Figs. 5/8/9/10/11, and the convergence detector implements the paper's
"loss below target for 5 consecutive evaluations" runtime criterion.
"""

from repro.metrics.traces import TraceRecorder, PullEvent, PushEvent, AbortEvent
from repro.metrics.pap import PapAnalysis, pap_interval_counts, pap_box_stats, BoxStats
from repro.metrics.curves import LossCurve, EvalPoint
from repro.metrics.convergence import ConvergenceCriterion, detect_convergence
from repro.metrics.staleness import StalenessAnalysis, StalenessStats, compare_staleness
from repro.metrics.serialize import (
    curve_from_dict,
    curve_to_dict,
    run_summary_to_dict,
    traces_from_jsonl,
    traces_to_jsonl,
)

__all__ = [
    "TraceRecorder",
    "PullEvent",
    "PushEvent",
    "AbortEvent",
    "PapAnalysis",
    "pap_interval_counts",
    "pap_box_stats",
    "BoxStats",
    "LossCurve",
    "EvalPoint",
    "ConvergenceCriterion",
    "detect_convergence",
    "StalenessAnalysis",
    "StalenessStats",
    "compare_staleness",
    "curve_to_dict",
    "curve_from_dict",
    "traces_to_jsonl",
    "traces_from_jsonl",
    "run_summary_to_dict",
]
