"""JSON (de)serialization of run artifacts.

The paper's Section III empirical study is built on *collected workload
traces*; this module makes our traces and curves durable: export a run's
measurements to a JSON document (or JSONL stream for traces), reload them
later for analysis without re-simulating.
"""

from __future__ import annotations

import json
from typing import Dict, List, TextIO, Union

from repro.metrics.curves import EvalPoint, LossCurve
from repro.metrics.traces import AbortEvent, PullEvent, PushEvent, TraceRecorder

__all__ = [
    "curve_to_dict",
    "curve_from_dict",
    "traces_to_jsonl",
    "traces_from_jsonl",
    "run_summary_to_dict",
]


# ----------------------------------------------------------------------
# Loss curves
# ----------------------------------------------------------------------
def curve_to_dict(curve: LossCurve) -> Dict:
    """A JSON-ready dict of the full evaluation sequence."""
    return {
        "points": [
            {
                "time": p.time,
                "total_iterations": p.total_iterations,
                "loss": p.loss,
                "accuracy": p.accuracy,
            }
            for p in curve
        ]
    }


def curve_from_dict(data: Dict) -> LossCurve:
    """Inverse of :func:`curve_to_dict`."""
    curve = LossCurve()
    for point in data["points"]:
        curve.add(
            EvalPoint(
                time=float(point["time"]),
                total_iterations=int(point["total_iterations"]),
                loss=float(point["loss"]),
                accuracy=point.get("accuracy"),
            )
        )
    return curve


# ----------------------------------------------------------------------
# Traces (JSONL: one event per line, replayable in order)
# ----------------------------------------------------------------------
def traces_to_jsonl(traces: TraceRecorder, stream: TextIO) -> int:
    """Write all events, merged in time order, one JSON object per line.

    Returns the number of lines written.  Each line carries an ``event``
    discriminator (``pull`` / ``push`` / ``abort``).
    """
    events: List[tuple] = []
    for pull in traces.pulls:
        events.append((pull.time, 0, {
            "event": "pull", "time": pull.time, "worker_id": pull.worker_id,
            "version": pull.version, "iteration": pull.iteration,
            "is_restart": pull.is_restart,
        }))
    for push in traces.pushes:
        events.append((push.time, 1, {
            "event": "push", "time": push.time, "worker_id": push.worker_id,
            "version_after": push.version_after,
            "snapshot_version": push.snapshot_version,
            "staleness": push.staleness, "iteration": push.iteration,
        }))
    for abort in traces.aborts:
        events.append((abort.time, 2, {
            "event": "abort", "time": abort.time, "worker_id": abort.worker_id,
            "iteration": abort.iteration,
            "wasted_compute_s": abort.wasted_compute_s,
        }))
    events.sort(key=lambda e: (e[0], e[1]))
    for _, _, payload in events:
        stream.write(json.dumps(payload) + "\n")
    return len(events)


def traces_from_jsonl(stream: Union[TextIO, List[str]]) -> TraceRecorder:
    """Rebuild a :class:`TraceRecorder` from a JSONL stream."""
    traces = TraceRecorder()
    for line in stream:
        line = line.strip()
        if not line:
            continue
        data = json.loads(line)
        kind = data.get("event")
        if kind == "pull":
            traces.record_pull(PullEvent(
                time=float(data["time"]), worker_id=int(data["worker_id"]),
                version=int(data["version"]), iteration=int(data["iteration"]),
                is_restart=bool(data["is_restart"]),
            ))
        elif kind == "push":
            traces.record_push(PushEvent(
                time=float(data["time"]), worker_id=int(data["worker_id"]),
                version_after=int(data["version_after"]),
                snapshot_version=int(data["snapshot_version"]),
                staleness=int(data["staleness"]),
                iteration=int(data["iteration"]),
            ))
        elif kind == "abort":
            traces.record_abort(AbortEvent(
                time=float(data["time"]), worker_id=int(data["worker_id"]),
                iteration=int(data["iteration"]),
                wasted_compute_s=float(data["wasted_compute_s"]),
            ))
        else:
            raise ValueError(f"unknown trace event kind: {kind!r}")
    return traces


# ----------------------------------------------------------------------
# Run summaries
# ----------------------------------------------------------------------
def run_summary_to_dict(result) -> Dict:
    """A JSON-ready digest of a :class:`repro.ps.RunResult`.

    Includes the full curve plus the headline aggregates; traces are left
    to :func:`traces_to_jsonl` (they can be large).
    """
    return {
        "scheme": result.scheme,
        "workload": result.workload,
        "num_workers": result.num_workers,
        "seed": result.seed,
        "horizon_s": result.horizon_s,
        "total_iterations": result.total_iterations,
        "total_aborts": result.total_aborts,
        "mean_staleness": result.mean_staleness,
        "final_loss": result.final_loss,
        "total_transfer_bytes": result.total_transfer_bytes,
        "transfer_by_category": result.ledger.bytes_by_category(),
        "policy_summary": {
            k: v for k, v in result.policy_summary.items()
            if isinstance(v, (int, float, str, bool, type(None)))
        },
        "curve": curve_to_dict(result.curve),
        "workers": [
            {
                "worker_id": w.worker_id,
                "node": w.node_name,
                "iterations": w.iterations,
                "pulls": w.pulls,
                "pushes": w.pushes,
                "aborts": w.aborts,
                "mean_iteration_time": w.mean_iteration_time,
            }
            for w in result.worker_stats
        ],
    }
