"""Fig. 10 — robustness to heterogeneity.

Runs CIFAR-10 under Original and SpecSync-Adaptive on both the homogeneous
Cluster 1 and the 4-instance-type Cluster 2, reporting loss curves and
time-to-target.  The paper's observations, all checked by the bench:

* SpecSync-Adaptive beats Original on both cluster types;
* heterogeneity slows everyone down;
* the speedup on the heterogeneous cluster is smaller than on the
  homogeneous one (the tuner's uniform-arrival assumption degrades).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cluster.spec import ClusterSpec
from repro.experiments.common import ExperimentScale, run_scheme, scheme_catalog
from repro.metrics.curves import LossCurve
from repro.utils.tables import TextTable
from repro.workloads.presets import cifar10_workload

__all__ = ["Fig10Result", "run_fig10"]


@dataclass
class Fig10Result:
    #: (cluster kind, scheme) -> loss curve
    curves: Dict[str, Dict[str, LossCurve]]
    #: (cluster kind, scheme) -> time to target
    time_to_target: Dict[str, Dict[str, Optional[float]]]
    target: float

    def speedup(self, cluster_kind: str) -> Optional[float]:
        orig = self.time_to_target[cluster_kind].get("original")
        spec = self.time_to_target[cluster_kind].get("adaptive")
        if orig is None or spec is None:
            return None
        return orig / spec

    def render(self) -> str:
        table = TextTable(
            ["Cluster", "Scheme", "Time to target", "Speedup"],
            title=f"Fig. 10: CIFAR-10 heterogeneity robustness (target {self.target})",
        )
        for kind, per_scheme in self.time_to_target.items():
            speedup = self.speedup(kind)
            for scheme in ("original", "adaptive"):
                time = per_scheme.get(scheme)
                table.add_row(
                    [
                        kind,
                        scheme,
                        f"{time:.0f}s" if time is not None else "did not converge",
                        f"{speedup:.2f}x" if (
                            scheme == "adaptive" and speedup is not None
                        ) else "-",
                    ]
                )
        return table.render()


def run_fig10(
    scale: ExperimentScale = ExperimentScale.FULL, seed: int = 3
) -> Fig10Result:
    if scale is ExperimentScale.FULL:
        clusters = {
            "homogeneous (Cluster 1)": ClusterSpec.homogeneous(40),
            "heterogeneous (Cluster 2)": ClusterSpec.heterogeneous(),
        }
    else:
        clusters = {
            "homogeneous (Cluster 1)": ClusterSpec.homogeneous(8),
            "heterogeneous (Cluster 2)": ClusterSpec.heterogeneous(
                [("m3.xlarge", 2), ("m3.2xlarge", 2),
                 ("m4.xlarge", 2), ("m4.2xlarge", 2)]
            ),
        }
    workload = cifar10_workload(seed)
    catalog = scheme_catalog(workload.name)

    curves: Dict[str, Dict[str, LossCurve]] = {}
    times: Dict[str, Dict[str, Optional[float]]] = {}
    for kind, cluster in clusters.items():
        curves[kind] = {}
        times[kind] = {}
        for scheme_key in ("original", "adaptive"):
            result = run_scheme(workload, cluster, catalog[scheme_key], seed=seed,
                                early_stop=True)
            curves[kind][scheme_key] = result.curve
            times[kind][scheme_key] = result.time_to_convergence(
                workload.convergence
            )
    return Fig10Result(
        curves=curves, time_to_target=times,
        target=workload.convergence.target_loss,
    )


if __name__ == "__main__":
    print(run_fig10(ExperimentScale.from_env()).render())
