"""Fig. 3 — distribution of pushes-after-a-pull (PAP) per 1-second interval.

Runs the ASP scheme on the CIFAR-10 and MF workloads (the paper's two
Section-III study workloads) on Cluster 1 and reports, for each 1-second
interval after a pull, the 5/25/50/75/95th percentiles of the number of
peer pushes received — the paper's box plots, as a table.

The headline check: with 40 workers on CIFAR-10, the median number of
pushes uncovered within the first two seconds after a pull is > 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cluster.spec import ClusterSpec
from repro.experiments.common import ExperimentScale, run_scheme, scheme_catalog
from repro.metrics.pap import BoxStats, PapAnalysis
from repro.utils.tables import TextTable
from repro.workloads.presets import cifar10_workload, matrix_factorization_workload

__all__ = ["Fig3Result", "run_fig3"]


@dataclass
class Fig3Result:
    #: workload name -> interval index -> box stats
    boxes: Dict[str, Dict[int, BoxStats]]
    #: workload name -> median PAP within the first two seconds
    median_pap_2s: Dict[str, float]
    num_workers: int

    def render(self) -> str:
        blocks: List[str] = []
        for workload, intervals in self.boxes.items():
            table = TextTable(
                ["interval", "p5", "p25", "median", "p75", "p95"],
                title=f"Fig. 3 ({workload}): PAP per 1s interval, "
                      f"{self.num_workers} workers",
            )
            for idx in sorted(intervals):
                box = intervals[idx]
                table.add_row(
                    [f"{idx}-{idx + 1}s", f"{box.p5:.0f}", f"{box.p25:.0f}",
                     f"{box.median:.0f}", f"{box.p75:.0f}", f"{box.p95:.0f}"]
                )
            blocks.append(table.render())
            blocks.append(
                f"median PAP within 2s: {self.median_pap_2s[workload]:.1f} "
                f"(paper: > 6 for CIFAR-10)"
            )
        return "\n\n".join(blocks)


def run_fig3(
    scale: ExperimentScale = ExperimentScale.FULL, seed: int = 3
) -> Fig3Result:
    num_workers = 40 if scale is ExperimentScale.FULL else 10
    cluster = ClusterSpec.homogeneous(num_workers)
    workloads = [cifar10_workload(seed), matrix_factorization_workload(seed)]

    boxes: Dict[str, Dict[int, BoxStats]] = {}
    medians: Dict[str, float] = {}
    for workload in workloads:
        # Enough virtual time for every worker to run ~40 iterations.
        horizon = workload.paper_iteration_time_s * 40
        num_intervals = max(2, int(workload.paper_iteration_time_s))
        result = run_scheme(
            workload, cluster, scheme_catalog(workload.name)["original"],
            seed=seed, horizon_s=horizon,
        )
        analysis = PapAnalysis(
            result.traces, interval_s=1.0, num_intervals=num_intervals
        )
        boxes[workload.name] = analysis.boxes
        medians[workload.name] = analysis.median_pap_within(2.0)
    return Fig3Result(boxes=boxes, median_pap_2s=medians, num_workers=num_workers)


if __name__ == "__main__":
    print(run_fig3(ExperimentScale.from_env()).render())
