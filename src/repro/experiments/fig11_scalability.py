"""Fig. 11 — scalability with cluster size.

Two scenarios from the paper, both on CIFAR-10 with 20 / 30 / 40 workers:

* **target-accuracy scenario** (left plot): speedup of SpecSync-Adaptive
  over Original in runtime to the same target loss;
* **fixed-budget scenario** (right plot): loss improvement of
  SpecSync-Adaptive over Original after training for the same amount of
  (virtual) time.

The paper's claim: SpecSync consistently wins, and the gap widens as the
cluster grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.cluster.spec import ClusterSpec
from repro.experiments.common import ExperimentScale, run_scheme, scheme_catalog
from repro.utils.tables import TextTable
from repro.workloads.presets import cifar10_workload

__all__ = ["Fig11Result", "run_fig11", "CLUSTER_SIZES"]

CLUSTER_SIZES = (20, 30, 40)


@dataclass
class Fig11Result:
    #: cluster size -> scheme -> time to target
    time_to_target: Dict[int, Dict[str, Optional[float]]]
    #: cluster size -> scheme -> loss at the fixed budget
    loss_at_budget: Dict[int, Dict[str, float]]
    budget_s: float
    target: float

    def speedup(self, size: int) -> Optional[float]:
        orig = self.time_to_target[size].get("original")
        spec = self.time_to_target[size].get("adaptive")
        if orig is None or spec is None:
            return None
        return orig / spec

    def loss_improvement(self, size: int) -> float:
        """Relative loss improvement at the fixed budget (positive = better)."""
        orig = self.loss_at_budget[size]["original"]
        spec = self.loss_at_budget[size]["adaptive"]
        return (orig - spec) / orig

    def render(self) -> str:
        table = TextTable(
            ["Workers", "Speedup to target", "Loss (Original)",
             "Loss (Adaptive)", "Improvement at budget"],
            title=(
                f"Fig. 11: CIFAR-10 scalability "
                f"(target {self.target}, budget {self.budget_s:.0f}s)"
            ),
        )
        for size in sorted(self.time_to_target):
            speedup = self.speedup(size)
            table.add_row(
                [
                    size,
                    f"{speedup:.2f}x" if speedup is not None else "-",
                    f"{self.loss_at_budget[size]['original']:.3f}",
                    f"{self.loss_at_budget[size]['adaptive']:.3f}",
                    f"{self.loss_improvement(size):.0%}",
                ]
            )
        return table.render()


def run_fig11(
    scale: ExperimentScale = ExperimentScale.FULL,
    seed: int = 3,
    sizes: Sequence[int] = CLUSTER_SIZES,
    budget_s: Optional[float] = None,
) -> Fig11Result:
    if scale is ExperimentScale.SMOKE:
        sizes = tuple(max(4, s // 4) for s in sizes)
    workload = cifar10_workload(seed)
    catalog = scheme_catalog(workload.name)
    budget = budget_s if budget_s is not None else workload.default_horizon_s / 4

    times: Dict[int, Dict[str, Optional[float]]] = {}
    losses: Dict[int, Dict[str, float]] = {}
    for size in sizes:
        cluster = ClusterSpec.homogeneous(size)
        times[size] = {}
        losses[size] = {}
        for scheme_key in ("original", "adaptive"):
            result = run_scheme(workload, cluster, catalog[scheme_key], seed=seed)
            times[size][scheme_key] = result.time_to_convergence(
                workload.convergence
            )
            losses[size][scheme_key] = result.curve.loss_at_time(budget)
    return Fig11Result(
        time_to_target=times,
        loss_at_budget=losses,
        budget_s=budget,
        target=workload.convergence.target_loss,
    )


if __name__ == "__main__":
    print(run_fig11(ExperimentScale.from_env()).render())
