"""Generic parameter sweeps with multi-seed aggregation.

The paper reports point estimates from single cluster deployments; a
simulator can do better.  :func:`run_sweep` races a grid of (workload
variant × scheme × seed) cells and aggregates per-cell metrics across
seeds, which is how robustness claims in this reproduction were validated
(e.g. the Fig. 8 speedups hold across seeds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.ps.policy import SyncPolicy
from repro.ps.result import RunResult
from repro.utils.tables import TextTable
from repro.workloads.base import Workload

__all__ = ["SweepCell", "SweepResult", "run_sweep", "speedup_summary"]


@dataclass(frozen=True)
class SweepCell:
    """One aggregated grid cell."""

    variant: str
    scheme: str
    seeds: Tuple[int, ...]
    times_to_target: Tuple[Optional[float], ...]
    final_losses: Tuple[float, ...]
    mean_staleness: Tuple[float, ...]

    @property
    def converged_fraction(self) -> float:
        return sum(1 for t in self.times_to_target if t is not None) / len(
            self.times_to_target
        )

    @property
    def mean_time_to_target(self) -> Optional[float]:
        times = [t for t in self.times_to_target if t is not None]
        if not times:
            return None
        return float(np.mean(times))

    @property
    def std_time_to_target(self) -> Optional[float]:
        times = [t for t in self.times_to_target if t is not None]
        if len(times) < 2:
            return None
        return float(np.std(times, ddof=1))


@dataclass
class SweepResult:
    cells: List[SweepCell] = field(default_factory=list)

    def cell(self, variant: str, scheme: str) -> SweepCell:
        """Look up one aggregated (variant, scheme) cell."""
        for cell in self.cells:
            if cell.variant == variant and cell.scheme == scheme:
                return cell
        raise KeyError(f"no cell ({variant}, {scheme})")

    def variants(self) -> List[str]:
        """Variant names in first-seen order."""
        seen: List[str] = []
        for cell in self.cells:
            if cell.variant not in seen:
                seen.append(cell.variant)
        return seen

    def render(self) -> str:
        """The aggregated sweep as a text table."""
        table = TextTable(
            ["variant", "scheme", "seeds", "converged",
             "time to target (mean±std)", "final loss (mean)"],
            title="Sweep results",
        )
        for cell in self.cells:
            mean_time = cell.mean_time_to_target
            std_time = cell.std_time_to_target
            if mean_time is None:
                time_text = "never"
            elif std_time is None:
                time_text = f"{mean_time:.0f}s"
            else:
                time_text = f"{mean_time:.0f}s ± {std_time:.0f}s"
            table.add_row(
                [
                    cell.variant,
                    cell.scheme,
                    len(cell.seeds),
                    f"{cell.converged_fraction:.0%}",
                    time_text,
                    f"{float(np.mean(cell.final_losses)):.4f}",
                ]
            )
        return table.render()


def run_sweep(
    variants: Dict[str, Workload],
    schemes: Dict[str, Callable[[], SyncPolicy]],
    cluster: ClusterSpec,
    seeds: Sequence[int] = (1, 2, 3),
    early_stop: bool = True,
    on_result: Optional[Callable[[str, str, int, RunResult], None]] = None,
) -> SweepResult:
    """Run the full grid; aggregate each (variant, scheme) across seeds."""
    if not variants or not schemes or not seeds:
        raise ValueError("variants, schemes, and seeds must be non-empty")
    sweep = SweepResult()
    for variant_name, workload in variants.items():
        for scheme_name, factory in schemes.items():
            times: List[Optional[float]] = []
            losses: List[float] = []
            staleness: List[float] = []
            for seed in seeds:
                result = workload.run(
                    cluster, factory(), seed=seed, early_stop=early_stop
                )
                times.append(result.time_to_convergence(workload.convergence))
                losses.append(result.final_loss)
                staleness.append(result.mean_staleness)
                if on_result is not None:
                    on_result(variant_name, scheme_name, seed, result)
            sweep.cells.append(
                SweepCell(
                    variant=variant_name,
                    scheme=scheme_name,
                    seeds=tuple(seeds),
                    times_to_target=tuple(times),
                    final_losses=tuple(losses),
                    mean_staleness=tuple(staleness),
                )
            )
    return sweep


def speedup_summary(
    sweep: SweepResult, baseline_scheme: str, variant: str
) -> Dict[str, Optional[float]]:
    """Mean-time speedups of every scheme over a baseline, for one variant."""
    baseline = sweep.cell(variant, baseline_scheme).mean_time_to_target
    summary: Dict[str, Optional[float]] = {}
    for cell in sweep.cells:
        if cell.variant != variant:
            continue
        mine = cell.mean_time_to_target
        summary[cell.scheme] = (
            baseline / mine if baseline is not None and mine else None
        )
    return summary
