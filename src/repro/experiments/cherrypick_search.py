"""Grid search for SpecSync-Cherrypick hyperparameters.

The paper tunes ABORT_TIME and ABORT_RATE by exhaustive search with
profiling runs (Section VI-E): ABORT_TIME candidates span up to half the
iteration time with steps above the communication time, ABORT_RATE takes
10 values.  Each grid cell here is a (shortened) profiling run scored by
loss at a fixed time budget; the full Table-II-sized search is what makes
Cherrypick expensive, which :mod:`repro.experiments.table2_tuning_cost`
quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.core.hyperparams import SpecSyncHyperparams
from repro.core.specsync import SpecSyncPolicy
from repro.utils.tables import TextTable
from repro.workloads.base import Workload

__all__ = ["GridTrial", "GridSearchResult", "grid_search_hyperparams"]


@dataclass(frozen=True)
class GridTrial:
    """One profiling run of the grid."""

    hyperparams: SpecSyncHyperparams
    score_loss: float  # loss at the probe budget (lower is better)
    probe_time_s: float  # virtual time spent on the trial


@dataclass
class GridSearchResult:
    workload: str
    trials: List[GridTrial]
    best: SpecSyncHyperparams
    total_virtual_time_s: float

    @property
    def num_trials(self) -> int:
        return len(self.trials)

    def render(self, top: int = 5) -> str:
        table = TextTable(
            ["ABORT_TIME", "ABORT_RATE", "loss at budget"],
            title=(
                f"Cherrypick grid search on {self.workload}: "
                f"{self.num_trials} trials, "
                f"{self.total_virtual_time_s / 3600:.1f} virtual hours"
            ),
        )
        for trial in sorted(self.trials, key=lambda t: t.score_loss)[:top]:
            table.add_row(
                [
                    f"{trial.hyperparams.abort_time_s:.3g}s",
                    f"{trial.hyperparams.abort_rate:.2f}",
                    f"{trial.score_loss:.4f}",
                ]
            )
        return table.render() + f"\nbest: {self.best}"


def default_grid(
    iteration_time_s: float,
    num_abort_times: int,
    num_abort_rates: int,
) -> List[SpecSyncHyperparams]:
    """The paper-shaped grid: ABORT_TIME up to half the iteration time,
    ABORT_RATE spanning (0, 0.5]."""
    times = np.linspace(
        iteration_time_s / 20.0, iteration_time_s / 2.0, num_abort_times
    )
    rates = np.linspace(0.05, 0.5, num_abort_rates)
    return [
        SpecSyncHyperparams(abort_time_s=float(t), abort_rate=float(r))
        for t in times
        for r in rates
    ]


def grid_search_hyperparams(
    workload: Workload,
    cluster: ClusterSpec,
    seed: int = 3,
    num_abort_times: int = 5,
    num_abort_rates: int = 10,
    probe_horizon_s: Optional[float] = None,
    grid: Optional[Sequence[SpecSyncHyperparams]] = None,
) -> GridSearchResult:
    """Run the grid; score each cell by eval loss at the probe budget.

    ``probe_horizon_s`` defaults to a quarter of the workload's horizon —
    long enough to rank hyperparameters, short enough that the whole grid
    remains runnable (the paper burned hundreds of EC2 hours on the full
    version; Table II).
    """
    horizon = (
        probe_horizon_s
        if probe_horizon_s is not None
        else workload.default_horizon_s / 4.0
    )
    cells = (
        list(grid)
        if grid is not None
        else default_grid(
            workload.paper_iteration_time_s, num_abort_times, num_abort_rates
        )
    )
    trials: List[GridTrial] = []
    for hyperparams in cells:
        result = workload.run(
            cluster,
            SpecSyncPolicy.cherrypick(hyperparams),
            seed=seed,
            horizon_s=horizon,
        )
        trials.append(
            GridTrial(
                hyperparams=hyperparams,
                score_loss=result.curve.best_loss(),
                probe_time_s=horizon,
            )
        )
    best = min(trials, key=lambda t: t.score_loss).hyperparams
    return GridSearchResult(
        workload=workload.name,
        trials=trials,
        best=best,
        total_virtual_time_s=sum(t.probe_time_s for t in trials),
    )


if __name__ == "__main__":
    from repro.workloads.presets import matrix_factorization_workload

    result = grid_search_hyperparams(
        matrix_factorization_workload(),
        ClusterSpec.homogeneous(40),
        num_abort_times=3,
        num_abort_rates=4,
    )
    print(result.render())
