"""Fig. 9 — loss as a function of iterations, and accumulated iterations.

The companion view to Fig. 8: SpecSync iterations are individually longer
(re-syncs stretch them) but higher quality, so convergence needs *fewer*
iterations.  The paper reports up to 58% fewer iterations to converge for
SpecSync vs Original.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.cluster.spec import ClusterSpec
from repro.experiments.common import ExperimentScale, run_scheme, scheme_catalog
from repro.metrics.curves import LossCurve
from repro.utils.tables import TextTable
from repro.workloads.base import Workload
from repro.workloads.presets import PAPER_WORKLOADS

__all__ = ["Fig9Result", "run_fig9"]

FIG9_SCHEMES = ("original", "adaptive")


@dataclass
class Fig9Result:
    #: workload -> scheme -> loss curve (carries total_iterations per point)
    curves: Dict[str, Dict[str, LossCurve]]
    #: workload -> scheme -> iterations to reach the target (None = never)
    iterations_to_target: Dict[str, Dict[str, Optional[int]]]
    targets: Dict[str, float]

    def iteration_reduction(self, workload: str) -> Optional[float]:
        """Fraction of iterations saved by adaptive vs original (0.58 = 58%)."""
        orig = self.iterations_to_target[workload].get("original")
        spec = self.iterations_to_target[workload].get("adaptive")
        if orig is None or spec is None or orig == 0:
            return None
        return 1.0 - spec / orig

    def render(self) -> str:
        table = TextTable(
            ["Workload", "Scheme", "Iterations to target", "Reduction"],
            title="Fig. 9: Iterations to convergence (paper: up to 58% fewer)",
        )
        for workload, per_scheme in self.iterations_to_target.items():
            reduction = self.iteration_reduction(workload)
            for scheme in FIG9_SCHEMES:
                iters = per_scheme.get(scheme)
                table.add_row(
                    [
                        f"{workload} (target {self.targets[workload]})",
                        scheme,
                        iters if iters is not None else "did not converge",
                        f"{reduction:.0%}" if (
                            scheme == "adaptive" and reduction is not None
                        ) else "-",
                    ]
                )
        return table.render()


def run_fig9(
    scale: ExperimentScale = ExperimentScale.FULL,
    seed: int = 3,
    workloads: Optional[Sequence[Workload]] = None,
) -> Fig9Result:
    num_workers = 40 if scale is ExperimentScale.FULL else 10
    cluster = ClusterSpec.homogeneous(num_workers)
    if workloads is None:
        workloads = PAPER_WORKLOADS(seed)
        if scale is ExperimentScale.SMOKE:
            workloads = workloads[:1]

    curves: Dict[str, Dict[str, LossCurve]] = {}
    iterations: Dict[str, Dict[str, Optional[int]]] = {}
    targets: Dict[str, float] = {}
    for workload in workloads:
        targets[workload.name] = workload.convergence.target_loss
        curves[workload.name] = {}
        iterations[workload.name] = {}
        catalog = scheme_catalog(workload.name)
        for scheme_key in FIG9_SCHEMES:
            result = run_scheme(workload, cluster, catalog[scheme_key], seed=seed,
                                early_stop=True)
            curves[workload.name][scheme_key] = result.curve
            iterations[workload.name][scheme_key] = (
                result.curve.iterations_to_loss(workload.convergence.target_loss)
            )
    return Fig9Result(
        curves=curves, iterations_to_target=iterations, targets=targets
    )


if __name__ == "__main__":
    print(run_fig9(ExperimentScale.from_env()).render())
