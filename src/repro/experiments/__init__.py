"""Experiment drivers: one module per table/figure of the paper's evaluation.

Every driver returns a structured result object with a ``render()`` method
that prints the same rows/series the paper reports.  The benchmark harness
(``benchmarks/``) calls these drivers; they can also be run directly::

    python -m repro.experiments.fig8_effectiveness
"""

from repro.experiments.common import (
    ExperimentScale,
    SchemeSpec,
    run_scheme,
    scheme_catalog,
)
from repro.experiments.table1 import run_table1
from repro.experiments.fig3_pap import run_fig3
from repro.experiments.fig5_naive_waiting import run_fig5
from repro.experiments.fig8_effectiveness import run_fig8
from repro.experiments.fig8_multiseed import run_fig8_multiseed
from repro.experiments.fig9_iterations import run_fig9
from repro.experiments.fig10_heterogeneity import run_fig10
from repro.experiments.fig11_scalability import run_fig11
from repro.experiments.fig12_transfer import run_fig12
from repro.experiments.fig13_breakdown import run_fig13
from repro.experiments.table2_tuning_cost import run_table2
from repro.experiments.cherrypick_search import grid_search_hyperparams
from repro.experiments.sweep import SweepCell, SweepResult, run_sweep, speedup_summary

__all__ = [
    "ExperimentScale",
    "SchemeSpec",
    "run_scheme",
    "scheme_catalog",
    "run_table1",
    "run_fig3",
    "run_fig5",
    "run_fig8",
    "run_fig8_multiseed",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_table2",
    "grid_search_hyperparams",
    "SweepCell",
    "SweepResult",
    "run_sweep",
    "speedup_summary",
]
