"""Fig. 13 — data-transfer breakdown for SpecSync-Adaptive.

Splits the total transfer of an Adaptive run into parameter pulls, gradient
pushes, and SpecSync control traffic (notify / re-sync / acks), per
workload.  The control share should be negligible — the property that makes
the centralized-scheduler design viable (paper Section V-A).

Each run is also traced and fed through :mod:`repro.obs.analysis`, so the
table is accompanied by a per-scheme critical-path/wasted-work breakdown
(ASP vs SSP vs Adaptive) on the same seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.cluster.spec import ClusterSpec
from repro.experiments.common import ExperimentScale, run_scheme, scheme_catalog
from repro.utils.tables import TextTable, format_bytes
from repro.workloads.base import Workload
from repro.workloads.presets import PAPER_WORKLOADS

__all__ = ["Fig13Result", "run_fig13"]

#: schemes the analytics table compares (the paper's headline trio)
_ANALYTICS_SCHEMES = ("original", "ssp", "adaptive")


@dataclass
class Fig13Result:
    #: workload -> category -> bytes
    breakdown: Dict[str, Dict[str, float]]
    #: workload -> fine-grained per-kind bytes
    by_kind: Dict[str, Dict[str, float]]
    #: workload -> scheme -> trace-analytics summary (critical-path
    #: categories, abort/wasted-work totals); empty when tracing failed
    analytics: Dict[str, Dict[str, dict]] = field(default_factory=dict)

    def control_fraction(self, workload: str) -> float:
        per_cat = self.breakdown[workload]
        total = sum(per_cat.values())
        return per_cat.get("control", 0.0) / total if total else 0.0

    def render(self) -> str:
        table = TextTable(
            ["Workload", "Pull", "Push", "Control", "Control share"],
            title="Fig. 13: SpecSync-Adaptive transfer breakdown",
        )
        for workload, per_cat in self.breakdown.items():
            table.add_row(
                [
                    workload,
                    format_bytes(per_cat.get("pull", 0.0)),
                    format_bytes(per_cat.get("push", 0.0)),
                    format_bytes(per_cat.get("control", 0.0)),
                    f"{self.control_fraction(workload):.4%}",
                ]
            )
        sections = [table.render()]
        for workload, per_scheme in self.analytics.items():
            analytics = TextTable(
                ["Scheme", "Compute s", "Network s", "Sync-wait s",
                 "Wasted s", "Aborts", "Gain/abort"],
                title=f"{workload}: per-scheme critical-path analytics",
            )
            for scheme, summary in per_scheme.items():
                by_cat = summary["by_category"]
                gain = summary.get("mean_realized_gain")
                analytics.add_row(
                    [
                        scheme,
                        f"{by_cat.get('compute', 0.0):.4g}",
                        f"{by_cat.get('network', 0.0):.4g}",
                        f"{by_cat.get('sync_wait', 0.0):.4g}",
                        f"{summary.get('aborted_compute_s', 0.0):.4g}",
                        str(summary.get("total_aborts", 0)),
                        f"{gain:.3g}" if gain is not None else "-",
                    ]
                )
            sections.append(analytics.render())
        return "\n\n".join(sections)


def run_fig13(
    scale: ExperimentScale = ExperimentScale.FULL,
    seed: int = 3,
    workloads: Optional[Sequence[Workload]] = None,
) -> Fig13Result:
    num_workers = 40 if scale is ExperimentScale.FULL else 10
    cluster = ClusterSpec.homogeneous(num_workers)
    if workloads is None:
        workloads = PAPER_WORKLOADS(seed)
        if scale is ExperimentScale.SMOKE:
            workloads = workloads[:1]

    breakdown: Dict[str, Dict[str, float]] = {}
    by_kind: Dict[str, Dict[str, float]] = {}
    analytics: Dict[str, Dict[str, dict]] = {}
    for workload in workloads:
        catalog = scheme_catalog(workload.name)
        result = run_scheme(workload, cluster, catalog["adaptive"], seed=seed)
        breakdown[workload.name] = result.ledger.bytes_by_category()
        by_kind[workload.name] = result.ledger.bytes_by_kind()
        analytics[workload.name] = {
            scheme: _traced_analytics(workload, cluster, catalog[scheme], seed)
            for scheme in _ANALYTICS_SCHEMES
        }
    return Fig13Result(
        breakdown=breakdown, by_kind=by_kind, analytics=analytics
    )


def _traced_analytics(workload, cluster, spec, seed: int) -> dict:
    """One traced run of ``spec``, reduced to the analytics summary row.

    Reuses an ambient collector when the whole experiment is being traced
    (``repro experiment fig13 --trace``) — each engine run appends a new
    run segment, so the analysis of the most recent segment is this run's.
    """
    from repro import obs
    from repro.obs.analysis import analyze_trace

    active = obs.current_collector()
    if active is not None:
        run_scheme(workload, cluster, spec, seed=seed)
        trace = obs.to_chrome_trace(active)
    else:
        collector = obs.TraceCollector()
        with obs.collecting(collector):
            run_scheme(workload, cluster, spec, seed=seed)
        trace = obs.to_chrome_trace(collector)
    run = analyze_trace(trace)["runs"][-1]
    ledger = run["ledger"]
    return {
        "by_category": run["critical_path"]["by_category"],
        "total_s": run["critical_path"]["total_s"],
        "total_aborts": ledger["total_aborts"],
        "aborted_compute_s": ledger["total_aborted_compute_s"],
        "mean_realized_gain": ledger["mean_realized_gain"],
    }


if __name__ == "__main__":
    print(run_fig13(ExperimentScale.from_env()).render())
