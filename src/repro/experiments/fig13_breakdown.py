"""Fig. 13 — data-transfer breakdown for SpecSync-Adaptive.

Splits the total transfer of an Adaptive run into parameter pulls, gradient
pushes, and SpecSync control traffic (notify / re-sync / acks), per
workload.  The control share should be negligible — the property that makes
the centralized-scheduler design viable (paper Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.cluster.spec import ClusterSpec
from repro.experiments.common import ExperimentScale, run_scheme, scheme_catalog
from repro.utils.tables import TextTable, format_bytes
from repro.workloads.base import Workload
from repro.workloads.presets import PAPER_WORKLOADS

__all__ = ["Fig13Result", "run_fig13"]


@dataclass
class Fig13Result:
    #: workload -> category -> bytes
    breakdown: Dict[str, Dict[str, float]]
    #: workload -> fine-grained per-kind bytes
    by_kind: Dict[str, Dict[str, float]]

    def control_fraction(self, workload: str) -> float:
        per_cat = self.breakdown[workload]
        total = sum(per_cat.values())
        return per_cat.get("control", 0.0) / total if total else 0.0

    def render(self) -> str:
        table = TextTable(
            ["Workload", "Pull", "Push", "Control", "Control share"],
            title="Fig. 13: SpecSync-Adaptive transfer breakdown",
        )
        for workload, per_cat in self.breakdown.items():
            table.add_row(
                [
                    workload,
                    format_bytes(per_cat.get("pull", 0.0)),
                    format_bytes(per_cat.get("push", 0.0)),
                    format_bytes(per_cat.get("control", 0.0)),
                    f"{self.control_fraction(workload):.4%}",
                ]
            )
        return table.render()


def run_fig13(
    scale: ExperimentScale = ExperimentScale.FULL,
    seed: int = 3,
    workloads: Optional[Sequence[Workload]] = None,
) -> Fig13Result:
    num_workers = 40 if scale is ExperimentScale.FULL else 10
    cluster = ClusterSpec.homogeneous(num_workers)
    if workloads is None:
        workloads = PAPER_WORKLOADS(seed)
        if scale is ExperimentScale.SMOKE:
            workloads = workloads[:1]

    breakdown: Dict[str, Dict[str, float]] = {}
    by_kind: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        catalog = scheme_catalog(workload.name)
        result = run_scheme(workload, cluster, catalog["adaptive"], seed=seed)
        breakdown[workload.name] = result.ledger.bytes_by_category()
        by_kind[workload.name] = result.ledger.bytes_by_kind()
    return Fig13Result(breakdown=breakdown, by_kind=by_kind)


if __name__ == "__main__":
    print(run_fig13(ExperimentScale.from_env()).render())
