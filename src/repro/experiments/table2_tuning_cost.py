"""Table II — the cost of hyperparameter tuning: Cherrypick vs Adaptive.

Reproduces the paper's cost accounting for the exhaustive grid search
(trial counts × per-trial training time) and contrasts it with the measured
cost of the Adaptive tuner, which is a closed-form scan over a short list
of logged push timestamps (Algorithm 1) — no profiling runs at all.

Paper's Table II (EC2 hours):

========== ============== ============== =============== =================
workload   ABORT_TIME     ABORT_RATE     each trial (h)  total search (h)
========== ============== ============== =============== =================
MF         5              10             1.33            40
CIFAR-10   7              10             6               420
ImageNet   10             10             > 8             > 800
========== ============== ============== =============== =================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cluster.spec import ClusterSpec
from repro.core.tuning import AdaptiveTuner
from repro.core.specsync import SpecSyncPolicy
from repro.experiments.common import ExperimentScale
from repro.utils.tables import TextTable
from repro.workloads.presets import PAPER_WORKLOADS

__all__ = ["Table2Row", "Table2Result", "run_table2", "PAPER_TABLE2"]

#: The paper's reported grid sizes and per-trial durations.
PAPER_TABLE2: Dict[str, Dict[str, float]] = {
    "mf": {"time_trials": 5, "rate_trials": 10, "trial_hours": 1.33,
           "total_hours": 40.0},
    "cifar10": {"time_trials": 7, "rate_trials": 10, "trial_hours": 6.0,
                "total_hours": 420.0},
    "imagenet": {"time_trials": 10, "rate_trials": 10, "trial_hours": 8.0,
                 "total_hours": 800.0},
}


@dataclass(frozen=True)
class Table2Row:
    workload: str
    time_trials: int
    rate_trials: int
    trial_hours: float
    cherrypick_total_hours: float
    #: measured wall-clock seconds the Adaptive tuner spent over a full run
    adaptive_tuning_wall_s: float
    adaptive_epochs_tuned: int


@dataclass
class Table2Result:
    rows: List[Table2Row]

    def render(self) -> str:
        table = TextTable(
            ["workload", "# ABORT_TIME trials", "# ABORT_RATE trials",
             "each trial (h)", "Cherrypick total (h)",
             "Adaptive total (measured)"],
            title="Table II: Hyperparameter tuning cost",
        )
        for row in self.rows:
            table.add_row(
                [
                    row.workload,
                    row.time_trials,
                    row.rate_trials,
                    f"{row.trial_hours:g}",
                    f"{row.cherrypick_total_hours:g}",
                    f"{row.adaptive_tuning_wall_s * 1000:.1f} ms "
                    f"({row.adaptive_epochs_tuned} epochs)",
                ]
            )
        return table.render()


def run_table2(
    scale: ExperimentScale = ExperimentScale.FULL, seed: int = 3
) -> Table2Result:
    """Report the paper's grid cost alongside the measured Adaptive cost.

    The Cherrypick columns restate the search dimensions (trial counts ×
    trial durations — the cost structure is the paper's point, and the
    per-trial hours are wall-clock properties of their EC2 testbed); the
    Adaptive column is *measured* here by running each workload once with
    the adaptive tuner and timing Algorithm 1's scans.
    """
    num_workers = 40 if scale is ExperimentScale.FULL else 10
    cluster = ClusterSpec.homogeneous(num_workers)
    rows: List[Table2Row] = []
    for workload in PAPER_WORKLOADS(seed):
        paper = PAPER_TABLE2[workload.name]
        tuner = AdaptiveTuner()
        policy = SpecSyncPolicy(tuner=tuner)
        horizon = (
            workload.default_horizon_s
            if scale is ExperimentScale.FULL
            else workload.paper_iteration_time_s * 30
        )
        workload.run(cluster, policy, seed=seed, horizon_s=horizon)
        rows.append(
            Table2Row(
                workload=workload.name,
                time_trials=int(paper["time_trials"]),
                rate_trials=int(paper["rate_trials"]),
                trial_hours=paper["trial_hours"],
                cherrypick_total_hours=paper["total_hours"],
                adaptive_tuning_wall_s=tuner.total_tuning_wall_s,
                adaptive_epochs_tuned=len(tuner.history),
            )
        )
    return Table2Result(rows=rows)


if __name__ == "__main__":
    print(run_table2(ExperimentScale.from_env()).render())
