"""Shared plumbing for the experiment drivers."""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.cluster.spec import ClusterSpec
from repro.core.hyperparams import SpecSyncHyperparams
from repro.core.specsync import SpecSyncPolicy
from repro.obs.log import get_logger
from repro.ps.policy import SyncPolicy
from repro.ps.result import RunResult
from repro.sync import AspPolicy, BspPolicy, SspPolicy
from repro.workloads.base import Workload

_log = get_logger("experiments")

__all__ = [
    "ExperimentScale",
    "SchemeSpec",
    "scheme_catalog",
    "run_scheme",
    "mean",
    "CHERRYPICK_DEFAULTS",
]


class ExperimentScale(enum.Enum):
    """How heavy the experiment runs are.

    ``FULL`` — the paper's dimensions (40 workers, full horizons).
    ``SMOKE`` — a down-scaled variant (fewer workers / shorter horizon) used
    by CI-style quick checks; set via REPRO_SCALE=smoke.
    """

    FULL = "full"
    SMOKE = "smoke"

    @classmethod
    def from_env(cls) -> "ExperimentScale":
        value = os.environ.get("REPRO_SCALE", "full").lower()
        return cls.SMOKE if value == "smoke" else cls.FULL


#: Fixed SpecSync hyperparameters for the Cherrypick variant, one per
#: workload.  These were produced by the grid-search driver in
#: :mod:`repro.experiments.cherrypick_search` over the Table-II-sized grid
#: (see EXPERIMENTS.md); re-run ``grid_search_hyperparams`` to regenerate.
CHERRYPICK_DEFAULTS: Dict[str, SpecSyncHyperparams] = {
    "mf": SpecSyncHyperparams(abort_time_s=0.7, abort_rate=0.175),
    "cifar10": SpecSyncHyperparams(abort_time_s=3.0, abort_rate=0.175),
    "imagenet": SpecSyncHyperparams(abort_time_s=15.0, abort_rate=0.175),
    "tiny": SpecSyncHyperparams(abort_time_s=0.25, abort_rate=0.2),
}


@dataclass(frozen=True)
class SchemeSpec:
    """A named scheme factory (policies are single-run objects)."""

    key: str
    display_name: str
    factory: Callable[[], SyncPolicy]

    def make(self) -> SyncPolicy:
        """Instantiate a fresh policy (policies are single-run objects)."""
        return self.factory()


def scheme_catalog(workload_name: str) -> Dict[str, SchemeSpec]:
    """All schemes the experiments use, keyed by short name.

    The paper's three headline schemes are ``original`` (ASP),
    ``cherrypick`` and ``adaptive``; the rest appear in discussion and
    ablation experiments.
    """
    cherry = CHERRYPICK_DEFAULTS.get(
        workload_name, CHERRYPICK_DEFAULTS["tiny"]
    )
    return {
        "original": SchemeSpec("original", "Original (ASP)", AspPolicy),
        "bsp": SchemeSpec("bsp", "BSP", BspPolicy),
        "ssp": SchemeSpec("ssp", "SSP (s=3)", lambda: SspPolicy(staleness_bound=3)),
        "cherrypick": SchemeSpec(
            "cherrypick",
            "SpecSync-Cherrypick",
            lambda: SpecSyncPolicy.cherrypick(cherry),
        ),
        "adaptive": SchemeSpec(
            "adaptive", "SpecSync-Adaptive", SpecSyncPolicy.adaptive
        ),
        "adaptive+ssp": SchemeSpec(
            "adaptive+ssp",
            "SpecSync-Adaptive on SSP",
            lambda: SpecSyncPolicy.adaptive(
                base_policy=SspPolicy(staleness_bound=3)
            ),
        ),
    }


def run_scheme(
    workload: Workload,
    cluster: ClusterSpec,
    scheme: SchemeSpec,
    seed: int = 3,
    horizon_s: Optional[float] = None,
    **kwargs,
) -> RunResult:
    """Run one (workload, cluster, scheme, seed) cell."""
    _log.info(
        "running %s / %s on %s (seed %d)",
        workload.name, scheme.key, cluster.describe(), seed,
    )
    result = workload.run(
        cluster, scheme.make(), seed=seed, horizon_s=horizon_s, **kwargs
    )
    _log.info(
        "finished %s / %s: %d iterations, %d aborts, final loss %.4f",
        workload.name, scheme.key, result.total_iterations,
        result.total_aborts, result.final_loss,
    )
    return result


def mean(values: List[float]) -> float:
    """Plain mean with an explicit error for empty input."""
    if not values:
        raise ValueError("mean of empty list")
    return sum(values) / len(values)
