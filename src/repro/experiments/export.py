"""CSV export of figure data series.

The text renderers show shape in the terminal; these writers dump the
underlying series as CSV so the figures can be re-plotted with any tool
(the files land next to the text results in ``benchmarks/results/``).
"""

from __future__ import annotations

import csv
import pathlib
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.fig5_naive_waiting import Fig5Result
    from repro.experiments.fig8_effectiveness import Fig8Result
    from repro.experiments.fig12_transfer import Fig12Result
    from repro.experiments.fig3_pap import Fig3Result

__all__ = [
    "export_fig3_csv",
    "export_fig5_csv",
    "export_fig8_csv",
    "export_fig12_csv",
]


def _open_writer(path: pathlib.Path):
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = open(path, "w", newline="", encoding="utf-8")
    return handle, csv.writer(handle)


def export_fig3_csv(result: "Fig3Result", path: pathlib.Path) -> int:
    """PAP box stats: one row per (workload, interval).  Returns row count."""
    handle, writer = _open_writer(path)
    rows = 0
    with handle:
        writer.writerow(["workload", "interval_start_s", "p5", "p25",
                         "median", "p75", "p95"])
        for workload, intervals in result.boxes.items():
            for idx in sorted(intervals):
                box = intervals[idx]
                writer.writerow([workload, idx, box.p5, box.p25, box.median,
                                 box.p75, box.p95])
                rows += 1
    return rows


def export_fig5_csv(result: "Fig5Result", path: pathlib.Path) -> int:
    """Naive-waiting learning curves: (workload, delay, time, loss) rows."""
    handle, writer = _open_writer(path)
    rows = 0
    with handle:
        writer.writerow(["workload", "delay_s", "time_s", "loss"])
        for workload, per_delay in result.curves.items():
            for delay, curve in per_delay.items():
                for point in curve:
                    writer.writerow([workload, delay, point.time, point.loss])
                    rows += 1
    return rows


def export_fig8_csv(result: "Fig8Result", path: pathlib.Path) -> int:
    """Effectiveness loss curves: (workload, scheme, time, iters, loss)."""
    handle, writer = _open_writer(path)
    rows = 0
    with handle:
        writer.writerow(["workload", "scheme", "time_s", "total_iterations",
                         "loss"])
        for cell in result.cells:
            if cell.result is None:
                continue
            for point in cell.result.curve:
                writer.writerow([cell.workload, cell.scheme, point.time,
                                 point.total_iterations, point.loss])
                rows += 1
    return rows


def export_fig12_csv(result: "Fig12Result", path: pathlib.Path) -> int:
    """Accumulated-transfer series: (workload, scheme, time, bytes)."""
    handle, writer = _open_writer(path)
    rows = 0
    with handle:
        writer.writerow(["workload", "scheme", "time_s", "cumulative_bytes"])
        for workload, per_scheme in result.series.items():
            for scheme, series in per_scheme.items():
                for time, total in series:
                    writer.writerow([workload, scheme, time, total])
                    rows += 1
    return rows
