"""Fig. 12 — accumulated data transfer over time, Original vs Adaptive.

The paper's claims, both checked here:

* the accumulated-transfer curves of Original and SpecSync-Adaptive stay
  close at all times (SpecSync adds only small re-pull + control traffic
  per unit time);
* because SpecSync converges sooner, its *total* transfer to convergence is
  smaller (the paper's CIFAR-10 example: 3.17 TB vs 2.00 TB, ≈ 40% less).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.experiments.common import ExperimentScale, run_scheme, scheme_catalog
from repro.utils.tables import TextTable, format_bytes
from repro.workloads.base import Workload
from repro.workloads.presets import PAPER_WORKLOADS

__all__ = ["Fig12Result", "run_fig12"]


@dataclass
class Fig12Result:
    #: workload -> scheme -> (time, cumulative bytes) series
    series: Dict[str, Dict[str, List[Tuple[float, float]]]]
    #: workload -> scheme -> total bytes transferred by convergence
    total_to_convergence: Dict[str, Dict[str, Optional[float]]]
    #: workload -> scheme -> mean transfer rate (bytes per virtual second)
    rate: Dict[str, Dict[str, float]]

    def rate_overhead(self, workload: str) -> float:
        """Adaptive's transfer-rate overhead over Original (0.05 = +5%)."""
        orig = self.rate[workload]["original"]
        spec = self.rate[workload]["adaptive"]
        return spec / orig - 1.0

    def transfer_saving(self, workload: str) -> Optional[float]:
        """Fractional total-transfer saving to convergence (paper: ~40%)."""
        orig = self.total_to_convergence[workload]["original"]
        spec = self.total_to_convergence[workload]["adaptive"]
        if orig is None or spec is None or orig == 0:
            return None
        return 1.0 - spec / orig

    def render(self) -> str:
        table = TextTable(
            ["Workload", "Scheme", "Rate (bytes/s)", "Total to convergence",
             "Saving"],
            title="Fig. 12: Accumulated data transfer",
        )
        for workload, per_scheme in self.total_to_convergence.items():
            saving = self.transfer_saving(workload)
            for scheme in ("original", "adaptive"):
                total = per_scheme[scheme]
                table.add_row(
                    [
                        workload,
                        scheme,
                        format_bytes(self.rate[workload][scheme]),
                        format_bytes(total) if total is not None else "n/a",
                        f"{saving:.0%}" if (
                            scheme == "adaptive" and saving is not None
                        ) else "-",
                    ]
                )
        return table.render()


def run_fig12(
    scale: ExperimentScale = ExperimentScale.FULL,
    seed: int = 3,
    workloads: Optional[Sequence[Workload]] = None,
    num_samples: int = 50,
) -> Fig12Result:
    num_workers = 40 if scale is ExperimentScale.FULL else 10
    cluster = ClusterSpec.homogeneous(num_workers)
    if workloads is None:
        workloads = PAPER_WORKLOADS(seed)
        if scale is ExperimentScale.SMOKE:
            workloads = workloads[:1]

    series: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    totals: Dict[str, Dict[str, Optional[float]]] = {}
    rates: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        series[workload.name] = {}
        totals[workload.name] = {}
        rates[workload.name] = {}
        catalog = scheme_catalog(workload.name)
        for scheme_key in ("original", "adaptive"):
            result = run_scheme(workload, cluster, catalog[scheme_key], seed=seed)
            sample_times = list(
                np.linspace(0.0, workload.default_horizon_s, num_samples)
            )
            series[workload.name][scheme_key] = result.ledger.cumulative_series(
                sample_times
            )
            converge_time = result.time_to_convergence(workload.convergence)
            totals[workload.name][scheme_key] = (
                result.ledger.cumulative_at(converge_time)
                if converge_time is not None
                else None
            )
            rates[workload.name][scheme_key] = (
                result.ledger.total_bytes / workload.default_horizon_s
            )
    return Fig12Result(series=series, total_to_convergence=totals, rate=rates)


if __name__ == "__main__":
    print(run_fig12(ExperimentScale.from_env()).render())
