"""Table I — workload characterization.

Reports, for each workload: the paper's parameter count and dataset size
(mirrored into the workload metadata), and the *measured* mean iteration
time from a short ASP run, which should land on the paper's 3s / 14s / 70s
column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cluster.spec import ClusterSpec
from repro.experiments.common import ExperimentScale, mean, run_scheme, scheme_catalog
from repro.utils.tables import TextTable
from repro.workloads.presets import PAPER_WORKLOADS

__all__ = ["Table1Row", "Table1Result", "run_table1"]


@dataclass(frozen=True)
class Table1Row:
    workload: str
    num_parameters: int
    dataset_size: int
    paper_iteration_time_s: float
    measured_iteration_time_s: float


@dataclass
class Table1Result:
    rows: List[Table1Row]

    def render(self) -> str:
        table = TextTable(
            ["Workload", "# parameters", "Dataset size",
             "Iteration time (paper)", "Iteration time (measured)"],
            title="Table I: Workload characterization",
        )
        for row in self.rows:
            table.add_row(
                [
                    row.workload,
                    f"{row.num_parameters / 1e6:.1f} million",
                    f"{row.dataset_size:,}",
                    f"{row.paper_iteration_time_s:.0f}s",
                    f"{row.measured_iteration_time_s:.1f}s",
                ]
            )
        return table.render()


def run_table1(
    scale: ExperimentScale = ExperimentScale.FULL, seed: int = 3
) -> Table1Result:
    """Measure iteration times with short ASP runs on Cluster 1."""
    num_workers = 40 if scale is ExperimentScale.FULL else 8
    cluster = ClusterSpec.homogeneous(num_workers)
    rows = []
    for workload in PAPER_WORKLOADS(seed):
        # ~25 iterations per worker is plenty to estimate the mean span.
        horizon = workload.paper_iteration_time_s * 25
        schemes = scheme_catalog(workload.name)
        result = run_scheme(
            workload, cluster, schemes["original"], seed=seed, horizon_s=horizon
        )
        measured = mean(
            [w.mean_iteration_time for w in result.worker_stats if w.iterations > 0]
        )
        rows.append(
            Table1Row(
                workload=workload.name,
                num_parameters=workload.paper_num_parameters,
                dataset_size=workload.paper_dataset_size,
                paper_iteration_time_s=workload.paper_iteration_time_s,
                measured_iteration_time_s=measured,
            )
        )
    return Table1Result(rows=rows)


if __name__ == "__main__":
    print(run_table1(ExperimentScale.from_env()).render())
