"""Fig. 8 with seed-averaged statistics (a robustness extension).

The paper reports point estimates from single deployments; the simulator
can repeat every (workload, scheme) cell across seeds and report mean ± std
runtime-to-convergence plus the fraction of seeds that converged — the
evidence behind this reproduction's claim that the speedups are not
seed-luck.

Multi-seed at full scale multiplies the Fig. 8 cost by the seed count, so
the default bench gates on ``REPRO_MULTISEED=1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.cluster.spec import ClusterSpec
from repro.experiments.common import ExperimentScale, scheme_catalog
from repro.experiments.sweep import SweepResult, run_sweep, speedup_summary
from repro.utils.tables import TextTable
from repro.workloads.base import Workload
from repro.workloads.presets import PAPER_WORKLOADS

__all__ = ["Fig8MultiSeedResult", "run_fig8_multiseed"]


@dataclass
class Fig8MultiSeedResult:
    """Seed-aggregated effectiveness matrix."""

    sweep: SweepResult
    seeds: Sequence[int]

    def speedups(self, workload: str) -> Dict[str, Optional[float]]:
        """Mean-runtime speedups over Original for one workload."""
        return speedup_summary(self.sweep, "original", workload)

    def render(self) -> str:
        table = TextTable(
            ["Workload", "Scheme", "Converged", "Runtime (mean±std)",
             "Speedup vs Original"],
            title=f"Fig. 8 across seeds {tuple(self.seeds)}",
        )
        for variant in self.sweep.variants():
            speedups = self.speedups(variant)
            for cell in self.sweep.cells:
                if cell.variant != variant:
                    continue
                mean_time = cell.mean_time_to_target
                std_time = cell.std_time_to_target
                if mean_time is None:
                    time_text = "never"
                elif std_time is None:
                    time_text = f"{mean_time:.0f}s"
                else:
                    time_text = f"{mean_time:.0f}s ± {std_time:.0f}s"
                speedup = speedups.get(cell.scheme)
                table.add_row(
                    [
                        variant,
                        cell.scheme,
                        f"{cell.converged_fraction:.0%}",
                        time_text,
                        f"{speedup:.2f}x" if speedup is not None else "-",
                    ]
                )
        return table.render()


def run_fig8_multiseed(
    scale: ExperimentScale = ExperimentScale.FULL,
    seeds: Sequence[int] = (1, 2, 3),
    workloads: Optional[Sequence[Workload]] = None,
    schemes: Sequence[str] = ("original", "adaptive"),
) -> Fig8MultiSeedResult:
    """Seed-sweep the effectiveness comparison (Original vs Adaptive by
    default; pass more scheme keys for the full matrix)."""
    num_workers = 40 if scale is ExperimentScale.FULL else 10
    cluster = ClusterSpec.homogeneous(num_workers)
    if workloads is None:
        workloads = PAPER_WORKLOADS(seeds[0])
        if scale is ExperimentScale.SMOKE:
            workloads = workloads[:1]

    variants = {wl.name: wl for wl in workloads}
    if "cherrypick" in schemes and len(variants) > 1:
        # Cherrypick hyperparameters are per-workload; a single scheme
        # factory cannot serve several workloads at once.
        raise ValueError(
            "cherrypick uses per-workload hyperparameters: run one "
            "workload at a time when including it in a multi-seed sweep"
        )
    catalog = scheme_catalog(workloads[0].name)
    scheme_factories = {key: catalog[key].factory for key in schemes}
    sweep = run_sweep(
        variants=variants,
        schemes=scheme_factories,
        cluster=cluster,
        seeds=seeds,
        early_stop=True,
    )
    return Fig8MultiSeedResult(sweep=sweep, seeds=tuple(seeds))


if __name__ == "__main__":
    print(run_fig8_multiseed(ExperimentScale.from_env()).render())
