"""Assemble EXPERIMENTS.md from archived benchmark outputs.

Each benchmark saves its rendered table under ``benchmarks/results/``; this
module stitches those files together with the paper's corresponding claims
into the paper-vs-measured record the reproduction ships.  Regenerate with::

    pytest benchmarks/ --benchmark-only        # refresh results/
    python -m repro.experiments.report         # rewrite EXPERIMENTS.md
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import List, Optional

__all__ = ["ExperimentSection", "SECTIONS", "write_experiments_md"]


@dataclass(frozen=True)
class ExperimentSection:
    """One table/figure: its paper claim and the archived result file."""

    exp_id: str
    title: str
    paper_claim: str
    result_file: str
    deviation: str = ""


SECTIONS: List[ExperimentSection] = [
    ExperimentSection(
        exp_id="Table I",
        title="Workload characterization",
        paper_claim=(
            "MF: 4.2M parameters, 100k samples, 3s iterations; CIFAR-10: "
            "2.5M / 50k / 14s; ImageNet: 5.9M / 281,167 / 70s."
        ),
        result_file="table1.txt",
    ),
    ExperimentSection(
        exp_id="Fig. 3",
        title="Pushes-after-a-pull (PAP) distribution",
        paper_claim=(
            "Roughly uniform PAP arrivals per 1s interval; with 40 workers "
            "on CIFAR-10 the median number of pushes uncovered within 2s of "
            "a pull exceeds 6."
        ),
        result_file="fig3_pap.txt",
        deviation=(
            "Our CIFAR-10 median within 2s is ~5 (paper: >6). The expected "
            "count is (m-1)*2/14 ≈ 5.6; the paper's arrivals are slightly "
            "over-dispersed upward, ours slightly downward (push waves make "
            "the 2s-window distribution bimodal). Same order either way."
        ),
    ),
    ExperimentSection(
        exp_id="Fig. 5",
        title="Naive waiting with fixed delays",
        paper_claim=(
            "A 1s pull delay improves both workloads; 3s yields little "
            "benefit over Original; 5s does more harm than good."
        ),
        result_file="fig5_naive_waiting.txt",
        deviation=(
            "On MF the measured ordering matches the paper exactly (1s best, "
            "then 3s, then 5s, all vs Original). On CIFAR-10 our substrate's "
            "optimum falls near 5s instead of 1-3s — the crossover shape is "
            "identical but shifted right, so the CIFAR grid is extended to "
            "12s to show the deterioration."
        ),
    ),
    ExperimentSection(
        exp_id="Fig. 8",
        title="Effectiveness: runtime to convergence",
        paper_claim=(
            "SpecSync converges up to 2.97x (MF), 2.25x (CIFAR-10), and 3x "
            "(ImageNet) faster than Original without compromising accuracy; "
            "SpecSync-Adaptive is close to SpecSync-Cherrypick."
        ),
        result_file="fig8_effectiveness.txt",
    ),
    ExperimentSection(
        exp_id="Fig. 8 (multi-seed)",
        title="Effectiveness across seeds (extension)",
        paper_claim=(
            "Not in the paper: the speedup should not be seed-luck — "
            "mean ± std runtime across repeated deployments."
        ),
        result_file="fig8_multiseed.txt",
    ),
    ExperimentSection(
        exp_id="Fig. 9",
        title="Iterations to convergence",
        paper_claim=(
            "SpecSync needs up to 58% fewer iterations to converge — "
            "individual iterations get longer but higher-quality."
        ),
        result_file="fig9_iterations.txt",
    ),
    ExperimentSection(
        exp_id="Fig. 10",
        title="Heterogeneous cluster robustness",
        paper_claim=(
            "SpecSync-Adaptive outperforms Original on both the homogeneous "
            "and the heterogeneous cluster, with a smaller speedup under "
            "heterogeneity (the tuner's uniform-arrival assumption degrades)."
        ),
        result_file="fig10_heterogeneity.txt",
        deviation=(
            "In our substrate the heterogeneous mix has higher aggregate "
            "compute (the 2xlarge types are faster), so absolute convergence "
            "can be faster on Cluster 2; the paper's *comparative* claims "
            "(SpecSync wins on both; smaller speedup under heterogeneity) "
            "hold."
        ),
    ),
    ExperimentSection(
        exp_id="Fig. 11",
        title="Scalability with cluster size",
        paper_claim=(
            "SpecSync-Adaptive consistently beats Original at 20/30/40 "
            "workers in both scenarios (time-to-target and fixed budget), "
            "and the improvement grows with cluster size."
        ),
        result_file="fig11_scalability.txt",
    ),
    ExperimentSection(
        exp_id="Fig. 12",
        title="Accumulated data transfer",
        paper_claim=(
            "SpecSync's accumulated transfer stays close to Original's at "
            "all times; because it converges sooner, its total transfer to "
            "convergence is smaller (CIFAR-10: 3.17 TB vs 2.00 TB, ~40% "
            "saving)."
        ),
        result_file="fig12_transfer.txt",
    ),
    ExperimentSection(
        exp_id="Fig. 13",
        title="Transfer breakdown",
        paper_claim=(
            "Parameter traffic dominates; SpecSync's scheduler traffic "
            "(notify/re-sync) is negligible."
        ),
        result_file="fig13_breakdown.txt",
    ),
    ExperimentSection(
        exp_id="Table II",
        title="Hyperparameter tuning cost",
        paper_claim=(
            "Cherrypick's grid search costs 40 to >800 EC2-hours per "
            "workload; the Adaptive tuner is a closed-form scan over logged "
            "push timestamps with negligible overhead."
        ),
        result_file="table2_tuning_cost.txt",
    ),
    ExperimentSection(
        exp_id="Table II (companion)",
        title="Cherrypick grid search, reduced grid",
        paper_claim=(
            "Section VI-E's search procedure, run on our substrate at a "
            "reduced grid (3 ABORT_TIME x 4 ABORT_RATE, 500s probes) — the "
            "provenance of the CHERRYPICK_DEFAULTS constants; the full "
            "Table-II grid is what costs the paper 40 to >800 EC2-hours."
        ),
        result_file="cherrypick_search_mf.txt",
    ),
    ExperimentSection(
        exp_id="Ablation",
        title="Centralized scheduler vs broadcast",
        paper_claim=(
            "Broadcasting push notifications to all peers would cost "
            "(m-1)x the notify traffic of the centralized scheduler "
            "(Section V-A's architecture argument)."
        ),
        result_file="ablation_broadcast.txt",
    ),
    ExperimentSection(
        exp_id="Ablation",
        title="SpecSync composed with SSP",
        paper_claim=(
            "SpecSync can be implemented on top of SSP, complementing it "
            "(Section IV-A, benefit 2)."
        ),
        result_file="ablation_specsync_ssp.txt",
    ),
    ExperimentSection(
        exp_id="Ablation",
        title="Per-iteration abort budget",
        paper_claim=(
            "Algorithm 2 issues at most one re-sync check per notify; "
            "allowing more per-iteration aborts changes little."
        ),
        result_file="ablation_abort_budget.txt",
    ),
    ExperimentSection(
        exp_id="Ablation",
        title="Optimizer robustness (extension)",
        paper_claim=(
            "Not in the paper: SpecSync's freshness mechanism should be "
            "agnostic to the server-side optimizer (the paper's Section VI-F "
            "argues node-level generality)."
        ),
        result_file="ablation_optimizer.txt",
    ),
    ExperimentSection(
        exp_id="Ablation",
        title="Failure injection (extension)",
        paper_claim=(
            "Not in the paper: a scripted fail-slow node mid-training "
            "(the heterogeneity discussion's failure causes, reproduced "
            "deterministically)."
        ),
        result_file="ablation_failure_injection.txt",
    ),
    ExperimentSection(
        exp_id="Ablation",
        title="Orthogonality with staleness-aware SGD (extension)",
        paper_claim=(
            "Section VII: staleness-aware learning-rate techniques "
            "(related work [29]) \"are orthogonal to our proposal and can "
            "be combined together with SpecSync\"."
        ),
        result_file="ablation_orthogonality.txt",
    ),
    ExperimentSection(
        exp_id="Ablation",
        title="Hyperparameter sensitivity",
        paper_claim=(
            "Performance depends critically on the two hyperparameters "
            "(Section IV-A): badly-chosen fixed values lose the benefit."
        ),
        result_file="ablation_sensitivity.txt",
    ),
]

_HEADER = """\
# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation (Section VI), regenerated
by `pytest benchmarks/ --benchmark-only` on this package's simulated
cluster substrate.  Absolute numbers are virtual-time measurements on a
calibrated simulator, not EC2 wall-clock — per the reproduction brief, the
*shape* is the claim: who wins, by roughly what factor, where crossovers
fall.  Substitutions and their rationale live in DESIGN.md.

This file is assembled from `benchmarks/results/` by
`python -m repro.experiments.report`.
"""


def write_experiments_md(
    results_dir: pathlib.Path,
    out_path: pathlib.Path,
    headline: Optional[str] = None,
) -> str:
    """Compose EXPERIMENTS.md; returns the text written."""
    blocks = [_HEADER]
    if headline:
        blocks.append(headline)
    for section in SECTIONS:
        blocks.append(f"## {section.exp_id}: {section.title}\n")
        blocks.append(f"**Paper:** {section.paper_claim}\n")
        result_path = results_dir / section.result_file
        if result_path.exists():
            measured = result_path.read_text(encoding="utf-8").rstrip()
            blocks.append("**Measured:**\n\n```\n" + measured + "\n```\n")
        else:
            blocks.append(
                "**Measured:** _not yet generated — run "
                "`pytest benchmarks/ --benchmark-only`_\n"
            )
        if section.deviation:
            blocks.append(f"**Deviation:** {section.deviation}\n")
    text = "\n".join(blocks)
    out_path.write_text(text, encoding="utf-8")
    return text


def build_headline(results_dir: pathlib.Path) -> Optional[str]:
    """Summarize the measured Fig.-8 speedups from the archived table."""
    import re

    path = results_dir / "fig8_effectiveness.txt"
    if not path.exists():
        return None
    speedups = {}
    for line in path.read_text(encoding="utf-8").splitlines():
        match = re.match(
            r"\s*(\w+) \(target [\d.]+\)\s*\|\s*SpecSync-Adaptive\s*\|"
            r"[^|]*\|\s*([\d.]+)x", line
        )
        if match:
            speedups[match.group(1)] = float(match.group(2))
    if not speedups:
        return None
    parts = ", ".join(f"{k} {v:.2f}x" for k, v in speedups.items())
    return (
        "**Headline (measured, SpecSync-Adaptive vs Original, 40 workers):** "
        f"{parts} — paper: up to 2.97x / 2.25x / 3x.\n"
    )


def main() -> int:
    root = pathlib.Path(__file__).resolve().parents[3]
    results = root / "benchmarks" / "results"
    out = root / "EXPERIMENTS.md"
    write_experiments_md(results, out, headline=build_headline(results))
    print(f"wrote {out}")
    missing = [s.result_file for s in SECTIONS
               if not (results / s.result_file).exists()]
    if missing:
        print("missing results (run the benches to fill them in):")
        for name in missing:
            print(f"  - {name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
