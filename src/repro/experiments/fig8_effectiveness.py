"""Fig. 8 — effectiveness: loss-over-time and runtime-to-convergence.

For each Table-I workload on Cluster 1 (40 × m4.xlarge), runs the paper's
three schemes — Original (ASP), SpecSync-Cherrypick, SpecSync-Adaptive —
and reports each scheme's loss curve, runtime to convergence (loss below
target for 5 consecutive evaluations), and speedup over Original.

Paper headline: up to 2.97× (MF), 2.25× (CIFAR-10), 3× (ImageNet); and the
Adaptive variant lands close to Cherrypick.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cluster.spec import ClusterSpec
from repro.experiments.common import (
    ExperimentScale,
    SchemeSpec,
    run_scheme,
    scheme_catalog,
)
from repro.ps.result import RunResult
from repro.utils.tables import TextTable
from repro.workloads.base import Workload
from repro.workloads.presets import PAPER_WORKLOADS

__all__ = ["Fig8Cell", "Fig8Result", "run_fig8", "FIG8_SCHEMES"]

FIG8_SCHEMES = ("original", "cherrypick", "adaptive")


@dataclass
class Fig8Cell:
    """One (workload, scheme) cell of the effectiveness matrix."""

    workload: str
    scheme: str
    display_name: str
    result: RunResult
    time_to_convergence: Optional[float]

    @property
    def converged(self) -> bool:
        return self.time_to_convergence is not None


@dataclass
class Fig8Result:
    cells: List[Fig8Cell]
    targets: Dict[str, float]

    def cell(self, workload: str, scheme: str) -> Fig8Cell:
        for cell in self.cells:
            if cell.workload == workload and cell.scheme == scheme:
                return cell
        raise KeyError(f"no cell for ({workload}, {scheme})")

    def speedup(self, workload: str, scheme: str) -> Optional[float]:
        """Speedup of ``scheme`` over Original on ``workload``."""
        base = self.cell(workload, "original").time_to_convergence
        mine = self.cell(workload, scheme).time_to_convergence
        if base is None or mine is None:
            return None
        return base / mine

    def workloads(self) -> List[str]:
        seen: List[str] = []
        for cell in self.cells:
            if cell.workload not in seen:
                seen.append(cell.workload)
        return seen

    def render(self, with_curves: bool = True) -> str:
        table = TextTable(
            ["Workload", "Scheme", "Runtime to convergence",
             "Speedup vs Original", "Final loss", "Aborts"],
            title="Fig. 8: Effectiveness of SpecSync (Cluster 1)",
        )
        for workload in self.workloads():
            for scheme in FIG8_SCHEMES:
                try:
                    cell = self.cell(workload, scheme)
                except KeyError:
                    continue
                time = cell.time_to_convergence
                speedup = self.speedup(workload, scheme)
                table.add_row(
                    [
                        f"{workload} (target {self.targets[workload]})",
                        cell.display_name,
                        f"{time:.0f}s" if time is not None else "did not converge",
                        f"{speedup:.2f}x" if speedup is not None else "-",
                        f"{cell.result.final_loss:.3f}",
                        cell.result.total_aborts,
                    ]
                )
        blocks = [table.render()]
        if with_curves:
            blocks.extend(self._render_curves())
        return "\n\n".join(blocks)

    def _render_curves(self) -> List[str]:
        """The loss-over-time panels of Fig. 8, as ASCII plots.

        Transient early-training loss spikes would flatten the interesting
        convergence region, so the y-axis is clipped at the 90th percentile
        of all plotted values (marked in the panel title when it bites).
        """
        from repro.utils.ascii_plot import ascii_plot

        blocks = []
        for workload in self.workloads():
            series = {}
            for scheme in FIG8_SCHEMES:
                try:
                    cell = self.cell(workload, scheme)
                except KeyError:
                    continue
                if cell.result is not None and len(cell.result.curve):
                    series[scheme] = cell.result.curve.as_series()
            if not series:
                continue
            values = sorted(v for pts in series.values() for _, v in pts)
            cap = values[int(len(values) * 0.9)] if len(values) > 10 else values[-1]
            clipped = {
                name: [(t, min(v, cap)) for t, v in pts]
                for name, pts in series.items()
            }
            capped = cap < values[-1]
            title = f"loss over time ({workload})" + (
                f" [y clipped at {cap:.3g}]" if capped else ""
            )
            blocks.append(
                title + ":\n"
                + ascii_plot(clipped, x_label="virtual s", y_label="loss")
            )
        return blocks


def run_fig8(
    scale: ExperimentScale = ExperimentScale.FULL,
    seed: int = 3,
    schemes: Sequence[str] = FIG8_SCHEMES,
    workloads: Optional[Sequence[Workload]] = None,
) -> Fig8Result:
    num_workers = 40 if scale is ExperimentScale.FULL else 10
    cluster = ClusterSpec.homogeneous(num_workers)
    if workloads is None:
        workloads = PAPER_WORKLOADS(seed)
        if scale is ExperimentScale.SMOKE:
            workloads = workloads[:1]  # MF only for the quick variant

    cells: List[Fig8Cell] = []
    targets: Dict[str, float] = {}
    for workload in workloads:
        targets[workload.name] = workload.convergence.target_loss
        catalog = scheme_catalog(workload.name)
        for scheme_key in schemes:
            spec: SchemeSpec = catalog[scheme_key]
            # early_stop halts each run once the paper's convergence
            # criterion holds — runtime-to-convergence is unaffected.
            result = run_scheme(workload, cluster, spec, seed=seed,
                                early_stop=True)
            cells.append(
                Fig8Cell(
                    workload=workload.name,
                    scheme=scheme_key,
                    display_name=spec.display_name,
                    result=result,
                    time_to_convergence=result.time_to_convergence(
                        workload.convergence
                    ),
                )
            )
    return Fig8Result(cells=cells, targets=targets)


if __name__ == "__main__":
    print(run_fig8(ExperimentScale.from_env()).render())
