"""Fig. 5 — naïve waiting learning curves for different fixed delays.

Runs CIFAR-10 and MF under naïve waiting with delays {0, 1, 3, 5} seconds
(0 = the Original ASP scheme) and reports each delay's loss curve and
time-to-target.  The paper's observed shape: a 1-second delay helps both
workloads, 3 seconds yields little benefit over Original, and 5 seconds
does more harm than good.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.spec import ClusterSpec
from repro.experiments.common import ExperimentScale
from repro.metrics.curves import LossCurve
from repro.sync import NaiveWaitingPolicy
from repro.utils.tables import TextTable
from repro.workloads.presets import cifar10_workload, matrix_factorization_workload

__all__ = ["Fig5Result", "run_fig5", "DELAYS_S", "DELAY_GRIDS"]

DELAYS_S = (0.0, 1.0, 3.0, 5.0)

#: Per-workload delay grids.  MF uses the paper's exact {0,1,3,5}s set; for
#: CIFAR-10 the grid is extended because in our substrate the naive-waiting
#: optimum falls near 5 s (the paper's falls near 1-3 s) — the extra points
#: make the same crossover shape visible (see EXPERIMENTS.md, deviations).
DELAY_GRIDS = {
    "mf": DELAYS_S,
    "cifar10": (0.0, 1.0, 3.0, 5.0, 8.0, 12.0),
}


@dataclass
class Fig5Result:
    #: workload -> delay -> loss curve
    curves: Dict[str, Dict[float, LossCurve]]
    #: workload -> delay -> time to the workload's target loss (None = never)
    time_to_target: Dict[str, Dict[float, Optional[float]]]
    #: workload -> delay -> mean staleness
    staleness: Dict[str, Dict[float, float]]
    targets: Dict[str, float]

    def best_delay(self, workload: str) -> float:
        """The delay with the fastest time-to-target (ties to smaller delay)."""
        entries: List[Tuple[float, float]] = [
            (time, delay)
            for delay, time in self.time_to_target[workload].items()
            if time is not None
        ]
        if not entries:
            raise ValueError(f"no delay reached the target for {workload}")
        return min(entries)[1]

    def render(self) -> str:
        blocks = []
        for workload, per_delay in self.time_to_target.items():
            table = TextTable(
                ["delay", "time to target", "mean staleness", "final loss"],
                title=(
                    f"Fig. 5 ({workload}): naive waiting, "
                    f"target loss {self.targets[workload]}"
                ),
            )
            for delay in sorted(per_delay):
                time = per_delay[delay]
                table.add_row(
                    [
                        f"{delay:.0f}s" if delay else "0s (Original)",
                        f"{time:.0f}s" if time is not None else "never",
                        f"{self.staleness[workload][delay]:.1f}",
                        f"{self.curves[workload][delay].final_loss:.3f}",
                    ]
                )
            blocks.append(table.render())
        return "\n\n".join(blocks)


def run_fig5(
    scale: ExperimentScale = ExperimentScale.FULL,
    seed: int = 3,
    delays: "dict | Tuple[float, ...] | None" = None,
) -> Fig5Result:
    num_workers = 40 if scale is ExperimentScale.FULL else 10
    cluster = ClusterSpec.homogeneous(num_workers)
    workloads = [cifar10_workload(seed), matrix_factorization_workload(seed)]

    curves: Dict[str, Dict[float, LossCurve]] = {}
    times: Dict[str, Dict[float, Optional[float]]] = {}
    staleness: Dict[str, Dict[float, float]] = {}
    targets: Dict[str, float] = {}
    for workload in workloads:
        if delays is None:
            grid = DELAY_GRIDS.get(workload.name, DELAYS_S)
        elif isinstance(delays, dict):
            grid = delays.get(workload.name, DELAYS_S)
        else:
            grid = delays
        curves[workload.name] = {}
        times[workload.name] = {}
        staleness[workload.name] = {}
        targets[workload.name] = workload.convergence.target_loss
        for delay in grid:
            result = workload.run(
                cluster, NaiveWaitingPolicy(delay), seed=seed, early_stop=True
            )
            curves[workload.name][delay] = result.curve
            times[workload.name][delay] = result.time_to_convergence(
                workload.convergence
            )
            staleness[workload.name][delay] = result.mean_staleness
    return Fig5Result(
        curves=curves, time_to_target=times, staleness=staleness, targets=targets
    )


if __name__ == "__main__":
    print(run_fig5(ExperimentScale.from_env()).render())
