"""Ablations of SpecSync's design choices (see DESIGN.md, Section 5).

1. **Centralized scheduler vs broadcast** — the paper's architecture choice
   (Section V-A): with a central scheduler each push costs one notify; with
   broadcast every worker would notify all m−1 peers.  We measure the real
   control traffic and compute what broadcast would have cost on the same
   push sequence.
2. **SpecSync on SSP** — the composability claim (Section IV-A): SpecSync
   layered over SSP should improve on plain SSP.
3. **Abort budget** — Algorithm 2 issues at most one re-sync per iteration;
   we sweep the per-iteration abort cap.
4. **Hyperparameter sensitivity** — why tuning matters: fixed hyperparams
   far from the tuned point lose most of the benefit.
5. **Optimizer robustness** (extension) — the freshness mechanism under
   AdaGrad instead of SGD on the server.
6. **Failure injection** (extension) — a scripted fail-slow node
   mid-training, ASP vs SpecSync.
7. **Orthogonality** (extension) — SpecSync combined with staleness-aware
   learning rates (the paper's Section VII combinability remark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cluster.spec import ClusterSpec
from repro.core.hyperparams import SpecSyncHyperparams
from repro.core.specsync import SpecSyncPolicy
from repro.experiments.common import ExperimentScale
from repro.netsim.messages import CONTROL_MESSAGE_BYTES
from repro.sync import AspPolicy, SspPolicy
from repro.utils.tables import TextTable, format_bytes
from repro.workloads.presets import matrix_factorization_workload

__all__ = [
    "BroadcastAblation",
    "run_ablation_broadcast",
    "SspCompositionAblation",
    "run_ablation_specsync_ssp",
    "AbortBudgetAblation",
    "run_ablation_abort_budget",
    "SensitivityAblation",
    "run_ablation_sensitivity",
    "OptimizerAblation",
    "run_ablation_optimizer",
    "FailureInjectionAblation",
    "run_ablation_failure_injection",
    "OrthogonalityAblation",
    "run_ablation_orthogonality",
]


# ----------------------------------------------------------------------
# 1. Centralized vs broadcast
# ----------------------------------------------------------------------
@dataclass
class BroadcastAblation:
    measured_control_bytes: float
    measured_notify_bytes: float
    broadcast_notify_bytes: float
    notifies_sent: int
    num_workers: int

    @property
    def notify_amplification(self) -> float:
        """Broadcast notify traffic over centralized notify traffic.

        Broadcasting sends every push notification to all m−1 peers instead
        of one scheduler, so this is m−1 by construction — the point of the
        paper's architecture choice made quantitative.
        """
        if self.measured_notify_bytes == 0:
            return 0.0
        return self.broadcast_notify_bytes / self.measured_notify_bytes

    @property
    def total_amplification(self) -> float:
        """Total control traffic ratio (includes pull requests / acks,
        which broadcasting does not change)."""
        if self.measured_control_bytes == 0:
            return 0.0
        unchanged = self.measured_control_bytes - self.measured_notify_bytes
        return (self.broadcast_notify_bytes + unchanged) / self.measured_control_bytes

    def render(self) -> str:
        table = TextTable(
            ["architecture", "notify traffic", "all control traffic"],
            title="Ablation: centralized scheduler vs broadcast",
        )
        unchanged = self.measured_control_bytes - self.measured_notify_bytes
        table.add_row([
            "centralized (measured)",
            format_bytes(self.measured_notify_bytes),
            format_bytes(self.measured_control_bytes),
        ])
        table.add_row([
            "broadcast (computed)",
            format_bytes(self.broadcast_notify_bytes),
            format_bytes(self.broadcast_notify_bytes + unchanged),
        ])
        return (
            table.render()
            + f"\nnotify amplification: {self.notify_amplification:.1f}x "
            f"(m-1 = {self.num_workers - 1})"
        )


def run_ablation_broadcast(
    scale: ExperimentScale = ExperimentScale.FULL, seed: int = 3
) -> BroadcastAblation:
    num_workers = 40 if scale is ExperimentScale.FULL else 10
    cluster = ClusterSpec.homogeneous(num_workers)
    workload = matrix_factorization_workload(seed)
    result = workload.run(cluster, SpecSyncPolicy.adaptive(), seed=seed)

    by_kind = result.ledger.bytes_by_kind()
    measured_notify = by_kind.get("notify", 0.0)
    measured_control = result.ledger.bytes_by_category().get("control", 0.0)
    notifies = int(result.policy_summary.get("notifies_sent", 0))
    # Broadcast: each completed iteration's notify goes to all m−1 peers
    # instead of one scheduler.
    broadcast_notify = notifies * (num_workers - 1) * CONTROL_MESSAGE_BYTES
    return BroadcastAblation(
        measured_control_bytes=measured_control,
        measured_notify_bytes=measured_notify,
        broadcast_notify_bytes=broadcast_notify,
        notifies_sent=notifies,
        num_workers=num_workers,
    )


# ----------------------------------------------------------------------
# 2. SpecSync on SSP
# ----------------------------------------------------------------------
@dataclass
class SspCompositionAblation:
    time_to_target: Dict[str, Optional[float]]
    staleness: Dict[str, float]
    target: float

    def render(self) -> str:
        table = TextTable(
            ["scheme", "time to target", "mean staleness"],
            title=f"Ablation: SpecSync composed with SSP (target {self.target})",
        )
        for scheme, time in self.time_to_target.items():
            table.add_row(
                [
                    scheme,
                    f"{time:.0f}s" if time is not None else "did not converge",
                    f"{self.staleness[scheme]:.1f}",
                ]
            )
        return table.render()


def run_ablation_specsync_ssp(
    scale: ExperimentScale = ExperimentScale.FULL,
    seed: int = 3,
    staleness_bound: int = 3,
) -> SspCompositionAblation:
    num_workers = 40 if scale is ExperimentScale.FULL else 10
    cluster = ClusterSpec.homogeneous(num_workers)
    workload = matrix_factorization_workload(seed)

    policies = {
        "asp": AspPolicy(),
        f"ssp(s={staleness_bound})": SspPolicy(staleness_bound),
        "specsync-adaptive": SpecSyncPolicy.adaptive(),
        f"specsync-adaptive+ssp(s={staleness_bound})": SpecSyncPolicy.adaptive(
            base_policy=SspPolicy(staleness_bound)
        ),
    }
    times: Dict[str, Optional[float]] = {}
    staleness: Dict[str, float] = {}
    for name, policy in policies.items():
        result = workload.run(cluster, policy, seed=seed)
        times[name] = result.time_to_convergence(workload.convergence)
        staleness[name] = result.mean_staleness
    return SspCompositionAblation(
        time_to_target=times, staleness=staleness,
        target=workload.convergence.target_loss,
    )


# ----------------------------------------------------------------------
# 3. Abort budget
# ----------------------------------------------------------------------
@dataclass
class AbortBudgetAblation:
    time_to_target: Dict[int, Optional[float]]
    aborts: Dict[int, int]
    target: float

    def render(self) -> str:
        table = TextTable(
            ["max aborts/iteration", "time to target", "total aborts"],
            title=f"Ablation: per-iteration abort budget (target {self.target})",
        )
        for budget in sorted(self.time_to_target):
            time = self.time_to_target[budget]
            table.add_row(
                [
                    budget,
                    f"{time:.0f}s" if time is not None else "did not converge",
                    self.aborts[budget],
                ]
            )
        return table.render()


def run_ablation_abort_budget(
    scale: ExperimentScale = ExperimentScale.FULL,
    seed: int = 3,
    budgets: tuple = (0, 1, 2),
) -> AbortBudgetAblation:
    num_workers = 40 if scale is ExperimentScale.FULL else 10
    cluster = ClusterSpec.homogeneous(num_workers)
    workload = matrix_factorization_workload(seed)

    times: Dict[int, Optional[float]] = {}
    aborts: Dict[int, int] = {}
    for budget in budgets:
        result = workload.run(
            cluster,
            SpecSyncPolicy.adaptive(),
            seed=seed,
            max_aborts_per_iteration=budget,
        )
        times[budget] = result.time_to_convergence(workload.convergence)
        aborts[budget] = result.total_aborts
    return AbortBudgetAblation(
        time_to_target=times, aborts=aborts,
        target=workload.convergence.target_loss,
    )


# ----------------------------------------------------------------------
# 4. Hyperparameter sensitivity
# ----------------------------------------------------------------------
@dataclass
class SensitivityAblation:
    time_to_target: Dict[str, Optional[float]]
    target: float

    def render(self) -> str:
        table = TextTable(
            ["hyperparameters", "time to target"],
            title=f"Ablation: fixed-hyperparameter sensitivity (target {self.target})",
        )
        for label, time in self.time_to_target.items():
            table.add_row(
                [label, f"{time:.0f}s" if time is not None else "did not converge"]
            )
        return table.render()


def run_ablation_sensitivity(
    scale: ExperimentScale = ExperimentScale.FULL, seed: int = 3
) -> SensitivityAblation:
    num_workers = 40 if scale is ExperimentScale.FULL else 10
    cluster = ClusterSpec.homogeneous(num_workers)
    workload = matrix_factorization_workload(seed)
    iteration = workload.paper_iteration_time_s

    variants = {
        "adaptive (Algorithm 1)": SpecSyncPolicy.adaptive(),
        "fixed: window T/6, rate 0.25": SpecSyncPolicy.cherrypick(
            SpecSyncHyperparams(iteration / 6.0, 0.25)
        ),
        "fixed: window T/2, rate 0.05 (over-eager)": SpecSyncPolicy.cherrypick(
            SpecSyncHyperparams(iteration / 2.0, 0.05)
        ),
        "fixed: window T/50, rate 0.9 (never aborts)": SpecSyncPolicy.cherrypick(
            SpecSyncHyperparams(iteration / 50.0, 0.9)
        ),
    }
    times: Dict[str, Optional[float]] = {}
    for label, policy in variants.items():
        result = workload.run(cluster, policy, seed=seed)
        times[label] = result.time_to_convergence(workload.convergence)
    return SensitivityAblation(
        time_to_target=times, target=workload.convergence.target_loss
    )


if __name__ == "__main__":
    scale = ExperimentScale.from_env()
    print(run_ablation_broadcast(scale).render())
    print()
    print(run_ablation_specsync_ssp(scale).render())
    print()
    print(run_ablation_abort_budget(scale).render())
    print()
    print(run_ablation_sensitivity(scale).render())


# ----------------------------------------------------------------------
# 5. Optimizer robustness (extension beyond the paper)
# ----------------------------------------------------------------------
@dataclass
class OptimizerAblation:
    """SpecSync's freshness mechanism under a different server optimizer."""

    staleness: Dict[str, float]
    final_loss: Dict[str, float]

    def render(self) -> str:
        table = TextTable(
            ["configuration", "mean staleness", "final loss"],
            title="Ablation: server optimizer (SGD vs AdaGrad)",
        )
        for name in self.staleness:
            table.add_row(
                [name, f"{self.staleness[name]:.1f}",
                 f"{self.final_loss[name]:.4f}"]
            )
        return table.render()


def run_ablation_optimizer(
    scale: ExperimentScale = ExperimentScale.FULL, seed: int = 3
) -> OptimizerAblation:
    """The abort-and-refresh machinery is optimizer-agnostic: switching the
    server's update rule to AdaGrad must not change the staleness
    reduction (an extension experiment; the paper only ran SGD)."""
    from repro.ml.optim import AdaGradUpdateRule, ConstantSchedule

    num_workers = 40 if scale is ExperimentScale.FULL else 10
    cluster = ClusterSpec.homogeneous(num_workers)
    base = matrix_factorization_workload(seed)
    horizon = 450.0 if scale is ExperimentScale.FULL else 120.0

    staleness: Dict[str, float] = {}
    final_loss: Dict[str, float] = {}
    for optimizer_name, rule_factory in [
        ("sgd", base.update_rule_factory),
        ("adagrad", lambda: AdaGradUpdateRule(ConstantSchedule(0.3))),
    ]:
        workload = base.with_overrides(update_rule_factory=rule_factory)
        for scheme_name, policy_factory in [
            ("asp", AspPolicy), ("specsync", SpecSyncPolicy.adaptive)
        ]:
            result = workload.run(
                cluster, policy_factory(), seed=seed, horizon_s=horizon
            )
            key = f"{optimizer_name}+{scheme_name}"
            staleness[key] = result.mean_staleness
            final_loss[key] = result.final_loss
    return OptimizerAblation(staleness=staleness, final_loss=final_loss)


# ----------------------------------------------------------------------
# 6. Failure injection (extension beyond the paper)
# ----------------------------------------------------------------------
@dataclass
class FailureInjectionAblation:
    """A scripted fail-slow node mid-training, ASP vs SpecSync."""

    staleness_p95: Dict[str, float]
    time_to_target: Dict[str, Optional[float]]
    victim_iterations: Dict[str, int]
    target: float

    def render(self) -> str:
        table = TextTable(
            ["scheme", "p95 staleness", "time to target", "victim iterations"],
            title="Ablation: fail-slow node injection (worker 0, 4x for 1/3 of the run)",
        )
        for name in self.staleness_p95:
            time = self.time_to_target[name]
            table.add_row(
                [
                    name,
                    f"{self.staleness_p95[name]:.0f}",
                    f"{time:.0f}s" if time is not None else "did not converge",
                    self.victim_iterations[name],
                ]
            )
        return table.render()


def run_ablation_failure_injection(
    scale: ExperimentScale = ExperimentScale.FULL, seed: int = 3
) -> FailureInjectionAblation:
    from repro.cluster.scenarios import SlowdownWindow, build_scenario_models
    from repro.metrics.staleness import StalenessAnalysis
    from repro.utils.rng import RngStreams

    num_workers = 40 if scale is ExperimentScale.FULL else 10
    cluster = ClusterSpec.homogeneous(num_workers)
    workload = matrix_factorization_workload(seed)
    horizon = workload.default_horizon_s
    window = SlowdownWindow(
        start_s=horizon / 3.0, end_s=2.0 * horizon / 3.0, factor=4.0
    )
    models = build_scenario_models(
        cluster, workload.base_compute, {0: [window]}
    )

    staleness_p95: Dict[str, float] = {}
    times: Dict[str, Optional[float]] = {}
    victim: Dict[str, int] = {}
    for name, policy_factory in [("asp", AspPolicy),
                                 ("specsync", SpecSyncPolicy.adaptive)]:
        dataset = workload.dataset_factory(seed)
        partitions = dataset.partition(
            cluster.num_workers, RngStreams(seed).get("partition")
        )
        from repro.ps.engine import TrainingEngine, EngineConfig

        engine = TrainingEngine(
            model=workload.model_factory(),
            partitions=partitions,
            eval_batch=dataset.eval_batch(),
            update_rule=workload.update_rule_factory(),
            policy=policy_factory(),
            cluster=cluster,
            base_compute_model=workload.base_compute,
            config=EngineConfig(
                batch_size=workload.batch_size,
                horizon_s=horizon,
                eval_interval_s=workload.eval_interval_s,
                param_wire_bytes=workload.param_wire_bytes,
                link=workload.link,
            ),
            seed=seed,
            workload_name=workload.name,
            compute_models=models,
        )
        result = engine.run()
        staleness_p95[name] = StalenessAnalysis(result.traces).overall.p95
        times[name] = result.time_to_convergence(workload.convergence)
        victim[name] = result.worker_stats[0].iterations
    return FailureInjectionAblation(
        staleness_p95=staleness_p95,
        time_to_target=times,
        victim_iterations=victim,
        target=workload.convergence.target_loss,
    )


# ----------------------------------------------------------------------
# 7. Orthogonality with staleness-aware SGD (related work [29])
# ----------------------------------------------------------------------
@dataclass
class OrthogonalityAblation:
    """SpecSync combined with staleness-aware learning rates."""

    time_to_target: Dict[str, Optional[float]]
    staleness: Dict[str, float]
    target: float

    def render(self) -> str:
        table = TextTable(
            ["configuration", "time to target", "mean staleness"],
            title=(
                "Ablation: orthogonality with staleness-aware SGD "
                f"(target {self.target})"
            ),
        )
        for name, time in self.time_to_target.items():
            table.add_row(
                [
                    name,
                    f"{time:.0f}s" if time is not None else "did not converge",
                    f"{self.staleness[name]:.1f}",
                ]
            )
        return table.render()


def run_ablation_orthogonality(
    scale: ExperimentScale = ExperimentScale.FULL, seed: int = 3
) -> OrthogonalityAblation:
    """The paper (Section VII): staleness-aware techniques "are orthogonal
    to our proposal and can be combined together with SpecSync".  Race
    plain ASP, staleness-aware ASP, SpecSync, and the combination."""
    from repro.ml.optim import StalenessAwareUpdateRule, StepDecaySchedule

    num_workers = 40 if scale is ExperimentScale.FULL else 10
    cluster = ClusterSpec.homogeneous(num_workers)
    base = matrix_factorization_workload(seed)
    # Same schedule as the MF preset; relative damping around the expected
    # ASP staleness (m−1) so typical pushes keep the tuned rate and only
    # the extra-stale tail is damped.
    aware_factory = lambda: StalenessAwareUpdateRule(  # noqa: E731
        StepDecaySchedule(0.35, (5000, 8000), 0.4),
        min_scale=0.05, clip_norm=10.0,
        reference_staleness=num_workers - 1,
    )

    configs = {
        "asp + plain sgd": (base, AspPolicy),
        "asp + staleness-aware": (
            base.with_overrides(update_rule_factory=aware_factory), AspPolicy
        ),
        "specsync + plain sgd": (base, SpecSyncPolicy.adaptive),
        "specsync + staleness-aware": (
            base.with_overrides(update_rule_factory=aware_factory),
            SpecSyncPolicy.adaptive,
        ),
    }
    times: Dict[str, Optional[float]] = {}
    staleness: Dict[str, float] = {}
    for name, (workload, policy_factory) in configs.items():
        result = workload.run(
            cluster, policy_factory(), seed=seed, early_stop=True
        )
        times[name] = result.time_to_convergence(workload.convergence)
        staleness[name] = result.mean_staleness
    return OrthogonalityAblation(
        time_to_target=times, staleness=staleness,
        target=base.convergence.target_loss,
    )
