"""SpecSync — speculative synchronization (the paper's contribution).

Workers proceed asynchronously, but a central scheduler watches the stream
of push notifications; when enough peers pushed shortly after a worker's
pull, the scheduler tells that worker to abort its in-flight computation,
re-pull fresher parameters, and start over (paper Section IV, Algorithm 2).
The two hyperparameters — ``ABORT_TIME`` (speculation window) and
``ABORT_RATE`` (push-fraction threshold) — are either fixed from a grid
search (SpecSync-Cherrypick) or retuned every epoch by Algorithm 1
(SpecSync-Adaptive).
"""

from repro.core.hyperparams import SpecSyncHyperparams
from repro.core.tuning import (
    AdaptiveTuner,
    EpochTrace,
    FixedTuner,
    HyperparamTuner,
    estimate_freshness_gain,
    estimate_freshness_loss,
    freshness_improvement,
    tune_hyperparams,
)
from repro.core.scheduler import SpecSyncScheduler
from repro.core.specsync import SpecSyncPolicy

__all__ = [
    "SpecSyncHyperparams",
    "HyperparamTuner",
    "FixedTuner",
    "AdaptiveTuner",
    "EpochTrace",
    "estimate_freshness_gain",
    "estimate_freshness_loss",
    "freshness_improvement",
    "tune_hyperparams",
    "SpecSyncScheduler",
    "SpecSyncPolicy",
]
