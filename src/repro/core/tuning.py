"""Adaptive hyperparameter tuning — the paper's Algorithm 1.

At the beginning of each epoch the scheduler estimates, for every candidate
speculation window Δ:

* **freshness gain** ũ_i(Δ): the number of pushes by peers that worker i
  would have uncovered by deferring its last iteration of the previous
  epoch by Δ (Eq. 5 — replayed from the push trace);
* **freshness loss** l̃_i(Δ) = Δ·(m−1)/T_i (Eq. 6 — the expected number of
  peers that would miss worker i's delayed push under uniform pull
  arrivals);

and picks the Δ maximizing the improvement estimate
F̃(Δ) = Σ_i (ũ_i(Δ) − l̃_i(Δ))  (Eq. 7).

Because ũ_i is a step function increasing only when Δ crosses a push-gap,
the optimum lies where a window right-aligns with a push; the candidate set
is therefore the pairwise time differences between pushes in the epoch
(O(m²) values), and the scan is exact.  ABORT_RATE is then set to
Δ*·(m−1)/(T̄·m) so a re-sync only fires when the realized gain exceeds the
estimated loss (Algorithm 1, line 7).
"""

from __future__ import annotations

import abc
import bisect
import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.hyperparams import SpecSyncHyperparams

__all__ = [
    "EpochTrace",
    "estimate_freshness_gain",
    "estimate_freshness_loss",
    "freshness_improvement",
    "candidate_windows",
    "tune_hyperparams",
    "HyperparamTuner",
    "FixedTuner",
    "AdaptiveTuner",
]


@dataclass
class EpochTrace:
    """What the scheduler observed during one epoch.

    Everything here is scheduler-observable in a real deployment: notify
    messages carry (sender, timestamp), and iteration spans are gaps between
    a worker's consecutive notifies — no worker-side instrumentation needed.
    """

    num_workers: int
    #: (time, worker_id) of every push notification, in time order.
    pushes: List[Tuple[float, int]] = field(default_factory=list)
    #: worker_id -> timestamp of that worker's last push in the epoch
    #: (the reference point: its next pull happened right after).
    last_push_by_worker: Dict[int, float] = field(default_factory=dict)
    #: worker_id -> estimated iteration span T_i.
    iteration_spans: Dict[int, float] = field(default_factory=dict)

    def push_times(self) -> List[float]:
        """All push timestamps of the epoch, in order."""
        return [t for t, _ in self.pushes]

    def mean_span(self) -> Optional[float]:
        """Mean iteration span across workers (None when unknown)."""
        if not self.iteration_spans:
            return None
        spans = self.iteration_spans.values()
        return sum(spans) / len(spans)


def estimate_freshness_gain(
    trace: EpochTrace,
    worker_id: int,
    window_s: float,
    push_times: Optional[Sequence[float]] = None,
) -> int:
    """ũ_i(Δ): pushes by peers in (p_i, p_i + Δ], where p_i is worker i's
    last push of the previous epoch (its next pull followed immediately).

    ``push_times`` accepts a precomputed ``trace.push_times()`` so
    Algorithm 1's candidate scan does not rebuild the list for every
    (worker, window) pair.
    """
    if window_s < 0:
        raise ValueError(f"window_s must be >= 0, got {window_s}")
    reference = trace.last_push_by_worker.get(worker_id)
    if reference is None:
        return 0
    times = trace.push_times() if push_times is None else push_times
    lo = bisect.bisect_right(times, reference)
    hi = bisect.bisect_right(times, reference + window_s)
    pushes = trace.pushes
    return sum(1 for i in range(lo, hi) if pushes[i][1] != worker_id)


def estimate_freshness_loss(
    num_workers: int, iteration_span_s: float, window_s: float
) -> float:
    """l̃_i(Δ) = Δ·(m−1)/T_i — Eq. 6's uniform-arrival missed-peer estimate."""
    if iteration_span_s <= 0:
        raise ValueError(f"iteration_span_s must be > 0, got {iteration_span_s}")
    if window_s < 0:
        raise ValueError(f"window_s must be >= 0, got {window_s}")
    return window_s * (num_workers - 1) / iteration_span_s


def freshness_improvement(
    trace: EpochTrace,
    window_s: float,
    push_times: Optional[Sequence[float]] = None,
    fallback_span: Optional[float] = None,
) -> float:
    """F̃(Δ) = Σ_i (ũ_i(Δ) − l̃_i(Δ))  (Eq. 7).

    ``push_times`` / ``fallback_span`` accept precomputed
    ``trace.push_times()`` / ``trace.mean_span()`` so the per-candidate
    scan in :func:`tune_hyperparams` shares them across windows.
    """
    if push_times is None:
        push_times = trace.push_times()
    if fallback_span is None:
        fallback_span = trace.mean_span()
    total = 0.0
    num_workers = trace.num_workers
    spans = trace.iteration_spans
    for worker_id in range(num_workers):
        gain = estimate_freshness_gain(trace, worker_id, window_s, push_times)
        span = spans.get(worker_id, fallback_span)
        if span is None or span <= 0:
            continue
        # Eq. 6 inline (estimate_freshness_loss), minus the per-call checks
        # already guaranteed here: window_s >= 0 was validated above and
        # span > 0 by the guard.
        total += gain - window_s * (num_workers - 1) / span
    return total


def candidate_windows(
    push_times: Sequence[float], max_candidates: int = 512
) -> List[float]:
    """The Δ candidates: positive pairwise push-time differences.

    The optimum of Eq. 7 right-aligns the window with a push, so scanning
    these values is exact.  When the epoch contains many pushes the O(n²)
    set is subsampled evenly (after sorting) to bound tuning cost — a pure
    implementation guard; at the paper's scale (n ≈ m per epoch) the set is
    complete.
    """
    times = sorted(push_times)
    raw = {
        round(times[j] - times[i], 9)
        for i in range(len(times))
        for j in range(i + 1, len(times))
    }
    diffs = sorted(d for d in raw if d > 0)
    if len(diffs) > max_candidates:
        idx = np.linspace(0, len(diffs) - 1, max_candidates).astype(int, copy=False)
        diffs = [diffs[i] for i in idx]
    return diffs


def tune_hyperparams(
    trace: EpochTrace, max_candidates: int = 512
) -> Optional[SpecSyncHyperparams]:
    """Algorithm 1: scan candidates, return the tuned hyperparameters.

    Returns None when the trace is too thin to tune (fewer than two pushes
    or no span estimate) — the scheduler then keeps speculation off for the
    next epoch.
    """
    mean_span = trace.mean_span()
    if mean_span is None or mean_span <= 0:
        return None
    push_times = trace.push_times()
    candidates = candidate_windows(push_times, max_candidates)
    # A window at least as long as an iteration is pure delay; restrict the
    # search to windows shorter than the mean span (the paper's search uses
    # half the batch time as an upper bound for the same reason).
    candidates = [c for c in candidates if 0 < c < mean_span]
    if not candidates:
        return None

    best_window = None
    best_improvement = -np.inf
    for window in candidates:
        improvement = freshness_improvement(trace, window, push_times, mean_span)
        if improvement > best_improvement:
            best_improvement = improvement
            best_window = window

    m = trace.num_workers
    abort_rate = best_window * (m - 1) / (mean_span * m)
    return SpecSyncHyperparams(abort_time_s=best_window, abort_rate=abort_rate)


# ----------------------------------------------------------------------
# Tuner objects plugged into the scheduler
# ----------------------------------------------------------------------
class HyperparamTuner(abc.ABC):
    """Strategy object deciding the hyperparameters for each epoch."""

    @abc.abstractmethod
    def initial(self) -> Optional[SpecSyncHyperparams]:
        """Hyperparameters before any epoch completes (None = no speculation)."""

    @abc.abstractmethod
    def retune(self, trace: EpochTrace) -> Optional[SpecSyncHyperparams]:
        """Hyperparameters for the next epoch given the previous epoch's trace."""

    @property
    @abc.abstractmethod
    def label(self) -> str:
        """Short name used in the scheme name ("cherrypick" / "adaptive")."""


class FixedTuner(HyperparamTuner):
    """SpecSync-Cherrypick: hyperparameters fixed for the whole run.

    The values come from an offline grid search (see
    ``repro.experiments.cherrypick_search``) — expensive, as Table II
    quantifies.
    """

    def __init__(self, hyperparams: SpecSyncHyperparams):
        self.hyperparams = hyperparams

    @property
    def label(self) -> str:
        return "cherrypick"

    def initial(self) -> Optional[SpecSyncHyperparams]:
        return self.hyperparams

    def retune(self, trace: EpochTrace) -> Optional[SpecSyncHyperparams]:
        return self.hyperparams


class AdaptiveTuner(HyperparamTuner):
    """SpecSync-Adaptive: re-run Algorithm 1 at every epoch boundary.

    Tracks its own wall-clock tuning cost so the Table II comparison
    (closed-form scan vs. grid-search profiling runs) can be measured.
    """

    def __init__(self, max_candidates: int = 512):
        if max_candidates < 1:
            raise ValueError(f"max_candidates must be >= 1, got {max_candidates}")
        self.max_candidates = max_candidates
        self.history: List[Optional[SpecSyncHyperparams]] = []
        self.total_tuning_wall_s = 0.0

    @property
    def label(self) -> str:
        return "adaptive"

    def initial(self) -> Optional[SpecSyncHyperparams]:
        # No history yet: the first epoch runs plain ASP and only collects
        # the trace Algorithm 1 needs.
        return None

    def retune(self, trace: EpochTrace) -> Optional[SpecSyncHyperparams]:
        # Table II reports the *real* CPU cost of Algorithm 1's scan; this
        # measurement feeds no simulated quantity, so wall time is correct.
        started = _time.perf_counter()  # repro: allow[DET-WALLCLOCK] Table II cost probe
        hyperparams = tune_hyperparams(trace, self.max_candidates)
        self.total_tuning_wall_s += _time.perf_counter() - started  # repro: allow[DET-WALLCLOCK] Table II cost probe
        self.history.append(hyperparams)
        return hyperparams
