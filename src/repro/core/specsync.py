"""The SpecSync policy: wires the central scheduler into the engine.

The policy implements the worker side of Algorithm 2 (send ``notify`` after
every push, honor ``re-sync`` instructions) and hosts the scheduler on its
own pseudo-node.  Both messages cross the simulated network as tiny control
messages, so the communication overhead the paper measures (Fig. 12/13) is
accounted faithfully.

Composability (paper Section IV-A, benefit 2): pass ``base_policy`` (e.g. an
:class:`repro.sync.SspPolicy`) to run SpecSync *on top of* a gated scheme —
gating hooks delegate to the base while speculation runs unchanged.
"""

from __future__ import annotations

from typing import Optional

from repro.core.scheduler import SpecSyncScheduler
from repro.core.tuning import AdaptiveTuner, FixedTuner, HyperparamTuner
from repro.core.hyperparams import SpecSyncHyperparams
from repro.netsim.messages import MessageKind
from repro.ps.policy import SyncPolicy

__all__ = ["SpecSyncPolicy"]

SCHEDULER_NODE = "scheduler"


class SpecSyncPolicy(SyncPolicy):
    """Speculative synchronization on top of ASP (default) or a base scheme."""

    def __init__(
        self,
        tuner: HyperparamTuner,
        base_policy: Optional[SyncPolicy] = None,
    ):
        super().__init__()
        self.tuner = tuner
        self.base_policy = base_policy
        self.scheduler: Optional[SpecSyncScheduler] = None
        self._notifies_sent = 0
        self._resyncs_honored = 0

    # ------------------------------------------------------------------
    # Constructors for the paper's two variants
    # ------------------------------------------------------------------
    @classmethod
    def adaptive(
        cls, base_policy: Optional[SyncPolicy] = None, max_candidates: int = 512
    ) -> "SpecSyncPolicy":
        """SpecSync-Adaptive: Algorithm 1 retunes every epoch."""
        return cls(tuner=AdaptiveTuner(max_candidates=max_candidates),
                   base_policy=base_policy)

    @classmethod
    def cherrypick(
        cls,
        hyperparams: SpecSyncHyperparams,
        base_policy: Optional[SyncPolicy] = None,
    ) -> "SpecSyncPolicy":
        """SpecSync-Cherrypick: fixed hyperparameters from a grid search."""
        return cls(tuner=FixedTuner(hyperparams), base_policy=base_policy)

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        base = f"+{self.base_policy.name}" if self.base_policy else ""
        return f"specsync-{self.tuner.label}{base}"

    def bind(self, engine) -> None:
        super().bind(engine)
        if self.base_policy is not None:
            self.base_policy.bind(engine)
        self.scheduler = SpecSyncScheduler(
            num_workers=engine.num_workers,
            tuner=self.tuner,
            schedule_fn=lambda delay, fn: engine.sim.defer(delay, fn),
            now_fn=lambda: engine.now,
            send_resync_fn=self._send_resync,
            # The scheduler shares the engine's virtual-time tracer and
            # profiler, so its decision events land on the same timeline as
            # the worker spans and the abort flow arrows pair up across the
            # two layers.
            tracer=engine.tracer,
            profiler=engine.profiler,
        )

    def on_run_end(self) -> None:
        if self.base_policy is not None:
            self.base_policy.on_run_end()
        if self.scheduler is not None and self.scheduler.profiler.enabled:
            report = self.scheduler.anomaly_report()
            if report:
                self.scheduler.profiler.report(f"scheduler:{self.name}", report)

    # ------------------------------------------------------------------
    # Gating delegates to the base scheme (ASP when none)
    # ------------------------------------------------------------------
    def pull_delay(self, worker_id: int) -> float:
        if self.base_policy is not None:
            return self.base_policy.pull_delay(worker_id)
        return 0.0

    def can_start_iteration(self, worker_id: int) -> bool:
        if self.base_policy is not None:
            return self.base_policy.can_start_iteration(worker_id)
        return True

    def on_pull(self, worker_id: int, snapshot_version: int) -> None:
        if self.base_policy is not None:
            self.base_policy.on_pull(worker_id, snapshot_version)

    def on_push_applied(self, record) -> None:
        if self.base_policy is not None:
            self.base_policy.on_push_applied(record)

    # ------------------------------------------------------------------
    # Worker side of Algorithm 2
    # ------------------------------------------------------------------
    def on_iteration_complete(self, worker_id: int, iteration: int) -> None:
        if self.base_policy is not None:
            self.base_policy.on_iteration_complete(worker_id, iteration)
        # The worker just pushed and is starting iteration ``iteration``
        # (completed count == next in-progress index): notify the scheduler.
        self._notifies_sent += 1
        self.engine.send_control(
            kind=MessageKind.NOTIFY,
            src=self.engine.worker_node(worker_id),
            dst=SCHEDULER_NODE,
            payload=(worker_id, iteration),
            on_delivery=lambda msg: self.scheduler.handle_notify(*msg.payload),
        )

    def _send_resync(self, worker_id: int, iteration: int, peer_pushes: int) -> None:
        self.engine.send_control(
            kind=MessageKind.RESYNC,
            src=SCHEDULER_NODE,
            dst=self.engine.worker_node(worker_id),
            payload=(worker_id, iteration, peer_pushes),
            on_delivery=self._deliver_resync,
        )

    def _deliver_resync(self, msg) -> None:
        worker_id, iteration, peer_pushes = msg.payload
        if self.engine.request_resync(worker_id, iteration, peer_pushes):
            self._resyncs_honored += 1

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        summary = {
            "notifies_sent": self._notifies_sent,
            "resyncs_honored": self._resyncs_honored,
        }
        if self.scheduler is not None:
            summary.update(self.scheduler.summary())
        if self.base_policy is not None:
            summary["base"] = self.base_policy.summary()
        if isinstance(self.tuner, AdaptiveTuner):
            summary["tuning_wall_s"] = round(self.tuner.total_tuning_wall_s, 6)
        return summary
