"""The SpecSync central scheduler (paper Section V, Algorithm 2).

The scheduler is the piece that replaces all-to-all push broadcasting: every
worker reports each completed iteration with a tiny ``notify`` message, and
the scheduler — holding the only global view of the push history — decides
per worker whether a ``re-sync`` is warranted.

On ``notify`` from worker *i* at time *t* (the worker pulls and starts its
next iteration immediately):

1. append *t* to the push history;
2. schedule a check at *t* + ABORT_TIME;
3. at the check, count pushes from peers in (*t*, *t* + ABORT_TIME]; if the
   count reaches ``m × ABORT_RATE``, instruct worker *i* to re-sync.

Epoch boundaries (every worker pushed at least once since the last
boundary) trigger hyperparameter retuning via the plugged-in tuner.

The class is engine-agnostic: it talks to the outside world through three
callbacks (schedule a timer, read the clock, send a re-sync), which keeps it
unit-testable without a simulation and reusable by the threaded runtime.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.hyperparams import SpecSyncHyperparams
from repro.core.tuning import EpochTrace, HyperparamTuner
from repro.obs.core import NULL_TRACER, NullTracer, Tracer
from repro.obs.log import get_logger
from repro.obs.perf import NULL_PROFILER, NullProfiler, Profiler
from repro.obs.straggler import AbortStormDetector, StragglerDetector
from repro.obs.tracks import SCHEDULER_TRACK, resync_flow_key, worker_track

__all__ = ["SpecSyncScheduler"]

#: What the scheduler accepts as a tracer (live or the shared no-op).
TracerLike = Union[Tracer, NullTracer]

#: Likewise for the profiler.
ProfilerLike = Union[Profiler, NullProfiler]


class SpecSyncScheduler:
    """Centralized speculation for all workers."""

    def __init__(
        self,
        num_workers: int,
        tuner: HyperparamTuner,
        schedule_fn: Callable[[float, Callable], None],
        now_fn: Callable[[], float],
        send_resync_fn: Callable[[int, int, int], None],
        span_window: int = 8,
        tracer: Optional[TracerLike] = None,
        profiler: Optional[ProfilerLike] = None,
        worker_track_fn: Callable[[int], str] = worker_track,
        self_track: str = SCHEDULER_TRACK,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self.tuner = tuner
        self._schedule = schedule_fn
        self._now = now_fn
        self._send_resync = send_resync_fn
        #: Observability: the host (DES policy / runtime adapter) passes a
        #: tracer bound to *its* clock, plus its track-name convention, so
        #: the engine-agnostic scheduler never chooses a clock domain.
        self.tracer: TracerLike = tracer if tracer is not None else NULL_TRACER
        self.profiler: ProfilerLike = (
            profiler if profiler is not None else NULL_PROFILER
        )
        #: Online anomaly detectors over the notify stream — the runtime
        #: monitoring input SpecSync-Adaptive's retuning wants (and what
        #: `repro perf report` surfaces).  Allocated only while profiling
        #: so the disabled path stays free.
        self.straggler: Optional[StragglerDetector] = None
        self.abort_storm: Optional[AbortStormDetector] = None
        if self.profiler.enabled:
            self.straggler = StragglerDetector(num_workers)
            self.abort_storm = AbortStormDetector()
        self._worker_track = worker_track_fn
        self._self_track = self_track
        self._log = get_logger("scheduler")

        self.hyperparams: Optional[SpecSyncHyperparams] = tuner.initial()

        # Global push history (time-ordered, append-only).
        self._push_times: List[float] = []
        self._push_workers: List[int] = []

        # Per-worker history for iteration-span estimation.
        self._last_push: Dict[int, float] = {}
        self._span_samples: Dict[int, deque] = {
            w: deque(maxlen=span_window) for w in range(num_workers)
        }

        # Current-epoch state.
        self._epoch_started_at = 0.0
        self._epoch_pushes: List[Tuple[float, int]] = []
        self._epoch_seen: set = set()

        # Stats for reports.
        self.epochs_completed = 0
        self.checks_run = 0
        self.resyncs_sent = 0
        self.hyperparam_log: List[Tuple[float, Optional[SpecSyncHyperparams]]] = []

    # ------------------------------------------------------------------
    # Protocol entry point
    # ------------------------------------------------------------------
    def handle_notify(self, worker_id: int, iteration: int) -> None:
        """A worker finished an iteration and pushed (Algorithm 2, scheduler
        ``HandleNotification``).  ``iteration`` is the index of the *next*
        iteration the worker is starting — the one a re-sync would abort.

        Raises:
            ValueError: if ``worker_id`` is outside ``[0, num_workers)`` —
                a wiring bug in the runtime, not a recoverable condition,
                so it must surface instead of corrupting epoch state.
        """
        if not 0 <= worker_id < self.num_workers:
            raise ValueError(f"unknown worker id {worker_id}")
        now = self._now()
        if self.tracer.enabled:
            self.tracer.instant(
                self._self_track, "notify",
                args={"worker": worker_id, "iteration": iteration},
            )
            self.tracer.count("scheduler.notifies")
        self._record_push(now, worker_id)
        self._advance_epoch(now, worker_id)

        if self.hyperparams is None:
            return
        window = self.hyperparams.abort_time_s
        threshold = self.hyperparams.threshold_count(self.num_workers)
        self._schedule(
            window,
            lambda: self._check_resync(worker_id, now, iteration, threshold, window),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _record_push(self, time: float, worker_id: int) -> None:
        self._push_times.append(time)
        self._push_workers.append(worker_id)
        previous = self._last_push.get(worker_id)
        if previous is not None and time > previous:
            self._span_samples[worker_id].append(time - previous)
        self._last_push[worker_id] = time
        self._epoch_pushes.append((time, worker_id))
        self._epoch_seen.add(worker_id)
        if self.straggler is not None and self.abort_storm is not None:
            interval = self.straggler.record_push(worker_id, time)
            self.abort_storm.record_push(time)
            if interval is not None:
                self.profiler.sample(
                    f"scheduler.notify_interval.w{worker_id:03d}",
                    interval,
                    ts=time,
                )

    def _advance_epoch(self, now: float, worker_id: int) -> None:
        if len(self._epoch_seen) < self.num_workers:
            return
        trace = EpochTrace(
            num_workers=self.num_workers,
            pushes=list(self._epoch_pushes),
            last_push_by_worker={
                w: max(t for t, wid in self._epoch_pushes if wid == w)
                for w in self._epoch_seen
            },
            iteration_spans={
                w: sum(samples) / len(samples)
                for w, samples in self._span_samples.items()
                if samples
            },
        )
        self.hyperparams = self.tuner.retune(trace)
        self.epochs_completed += 1
        if self.tracer.enabled:
            self.tracer.instant(
                self._self_track, "epoch_retuned",
                args={"epoch": self.epochs_completed,
                      "hyperparams": str(self.hyperparams)},
            )
        self._log.debug(
            "epoch %d retuned: %s", self.epochs_completed, self.hyperparams
        )
        self.hyperparam_log.append((now, self.hyperparams))
        self._epoch_started_at = now
        self._epoch_pushes = []
        self._epoch_seen = set()

    def _check_resync(
        self,
        worker_id: int,
        window_start: float,
        iteration: int,
        threshold: float,
        window: float,
    ) -> None:
        """Algorithm 2, ``CheckResync``: fire a re-sync if enough peers pushed."""
        self.checks_run += 1
        now = self._now()
        count = self._peer_pushes_between(worker_id, window_start, now)
        if self.tracer.enabled:
            self.tracer.count("scheduler.checks")
        if self.profiler.enabled:
            # Decision latency: how late the timer fired past the end of
            # the speculation window (0 on the DES, timer skew on wall).
            self.profiler.phase(
                "scheduler.check_skew", start=window_start + window, end=now
            )
        if count >= threshold:
            self.resyncs_sent += 1
            if self.abort_storm is not None:
                self.abort_storm.record_abort(now)
            if self.tracer.enabled:
                self._trace_resync_decision(
                    worker_id, window_start, iteration, threshold, count, now
                )
            self._log.debug(
                "re-sync worker %d (iteration %d): %d peer pushes in "
                "(%.6g, %.6g] >= threshold %.3g",
                worker_id, iteration, count, window_start, now, threshold,
            )
            # The triggering peer-push count travels with the re-sync so
            # the abort instant (and the analytics ledger) can attribute
            # the decision without reconstructing the window.
            self._send_resync(worker_id, iteration, count)

    def _trace_resync_decision(
        self,
        worker_id: int,
        window_start: float,
        iteration: int,
        threshold: float,
        count: int,
        now: float,
    ) -> None:
        """Emit the decision event and stage one causal-flow origin per
        contributing peer push (plus the decision itself).  The engine
        closes the key at the abort point; a re-sync that arrives too
        late discards it, so only honored aborts grow arrows.
        """
        contributing = self._peer_push_events_between(
            worker_id, window_start, now
        )
        self.tracer.instant(
            self._self_track, "resync_decision", cat="abort",
            args={"worker": worker_id, "iteration": iteration,
                  "peer_pushes": count, "threshold": threshold,
                  "window_start": round(window_start, 9)},
        )
        self.tracer.count("scheduler.resyncs_sent")
        key = resync_flow_key(worker_id, iteration)
        for push_time, pusher in contributing:
            self.tracer.flow_begin(
                key, self._worker_track(pusher), "abort", ts=push_time,
                cat="abort", args={"pusher": pusher},
            )
        self.tracer.flow_begin(
            key, self._self_track, "abort", ts=now, cat="abort",
            args={"decision": True, "peer_pushes": count},
        )

    def _peer_pushes_between(self, worker_id: int, start: float, end: float) -> int:
        lo = bisect.bisect_right(self._push_times, start)
        hi = bisect.bisect_right(self._push_times, end)
        return sum(1 for i in range(lo, hi) if self._push_workers[i] != worker_id)

    def _peer_push_events_between(
        self, worker_id: int, start: float, end: float
    ) -> List[Tuple[float, int]]:
        """(time, worker) of each peer push in (start, end] — the causal set."""
        lo = bisect.bisect_right(self._push_times, start)
        hi = bisect.bisect_right(self._push_times, end)
        return [
            (self._push_times[i], self._push_workers[i])
            for i in range(lo, hi)
            if self._push_workers[i] != worker_id
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def estimated_span(self, worker_id: int) -> Optional[float]:
        """Current iteration-span estimate for a worker (mean of recent gaps)."""
        samples = self._span_samples.get(worker_id)
        if not samples:
            return None
        return sum(samples) / len(samples)

    def anomaly_report(self) -> dict:
        """The detectors' current verdicts (empty when profiling is off)."""
        if self.straggler is None or self.abort_storm is None:
            return {}
        return {
            "straggler": self.straggler.report(),
            "abort_storm": self.abort_storm.report(),
        }

    def summary(self) -> dict:
        """Counters for run reports (epochs, checks, re-syncs, hyperparams)."""
        summary: Dict[str, object] = {
            "epochs_completed": self.epochs_completed,
            "checks_run": self.checks_run,
            "resyncs_sent": self.resyncs_sent,
            "current_hyperparams": str(self.hyperparams) if self.hyperparams else None,
        }
        if self.straggler is not None:
            summary["stragglers"] = ",".join(
                str(w) for w in self.straggler.stragglers()
            )
        return summary

    def __repr__(self) -> str:
        return (
            f"SpecSyncScheduler(m={self.num_workers}, epochs={self.epochs_completed}, "
            f"resyncs={self.resyncs_sent}, hp={self.hyperparams})"
        )
