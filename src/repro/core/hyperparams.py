"""SpecSync's two hyperparameters (paper Section IV-A, challenge 2)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_non_negative, check_positive

__all__ = ["SpecSyncHyperparams"]


@dataclass(frozen=True)
class SpecSyncHyperparams:
    """ABORT_TIME and ABORT_RATE.

    After a worker's push (and immediate next pull), the scheduler watches
    the next ``abort_time_s`` virtual seconds; if more than
    ``abort_rate × m`` pushes arrive from peers in that window, the worker
    is told to re-sync.
    """

    abort_time_s: float
    abort_rate: float

    def __post_init__(self):
        check_positive("abort_time_s", self.abort_time_s)
        check_non_negative("abort_rate", self.abort_rate)

    def threshold_count(self, num_workers: int) -> float:
        """The push count that triggers a re-sync: ``m × ABORT_RATE``."""
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        return num_workers * self.abort_rate

    def __str__(self) -> str:
        return f"(ABORT_TIME={self.abort_time_s:.3g}s, ABORT_RATE={self.abort_rate:.3g})"
