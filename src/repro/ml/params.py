"""Named parameter containers.

A :class:`ParamSet` is an ordered mapping from parameter names to numpy
arrays — the unit the parameter server shards, workers pull, and gradients
mirror (a gradient is a ParamSet with the same keys/shapes as the model).
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping

import numpy as np

__all__ = ["ParamSet"]

_FLOAT64 = np.dtype(np.float64)


class ParamSet:
    """An ordered name → ndarray mapping with the vector-space operations
    distributed SGD needs (copy, scale-and-add, norms).

    Arrays are stored as float64 for numerical robustness of the small
    simulation-scale models; wire sizes for transfer accounting come from
    the workload definition (Table I parameter counts at float32), not from
    these arrays — see DESIGN.md fidelity notes.
    """

    __slots__ = ("_arrays",)

    def __init__(self, arrays: Mapping[str, np.ndarray]):
        converted: Dict[str, np.ndarray] = {}
        for key, value in arrays.items():
            if not (isinstance(value, np.ndarray) and value.dtype == _FLOAT64):
                # Conversion only runs for non-float64 input; every internal
                # vector-space operation already produces float64 arrays, so
                # the hot construction paths (copy/scaled/subtract per
                # push/pull) take the no-op branch.
                value = np.asarray(value, dtype=np.float64)  # repro: allow[PERF-NUMPY-COPY] dtype-guarded: reached only when a convert-copy is genuinely required
            converted[str(key)] = value
        # Deliberate zero-copy adoption: float64 input arrays are taken by
        # reference (the dtype guard above is a no-op for them), which is
        # what lets ShmParamStore.backing() wrap live shared-memory
        # segments in a ParamSet without a copy.  Callers that need an
        # owning set go through .copy().
        self._arrays: Dict[str, np.ndarray] = converted  # repro: allow[BUF-ALIAS-STORE] zero-copy adoption is this constructor's contract (see comment); backing() relies on it
        if not converted:
            raise ValueError("ParamSet cannot be empty")

    # ------------------------------------------------------------------
    # Mapping interface
    # ------------------------------------------------------------------
    def __getitem__(self, key: str) -> np.ndarray:
        return self._arrays[key]

    def __contains__(self, key: str) -> bool:
        return key in self._arrays

    def __iter__(self) -> Iterator[str]:
        return iter(self._arrays)

    def __len__(self) -> int:
        return len(self._arrays)

    def keys(self):
        """Parameter names, in insertion order."""
        return self._arrays.keys()

    def items(self):
        """Live (name, array) view pairs, in insertion order.

        The arrays are the set's own buffers, not copies — mutate them
        only when you own the set (the in-place update rules do).
        """
        return self._arrays.items()

    # ------------------------------------------------------------------
    # Vector-space operations
    # ------------------------------------------------------------------
    def copy(self) -> "ParamSet":
        """A deep copy (arrays are duplicated)."""
        return ParamSet({k: v.copy() for k, v in self._arrays.items()})

    def zeros_like(self) -> "ParamSet":
        """A ParamSet of zeros with the same keys and shapes."""
        return ParamSet({k: np.zeros_like(v) for k, v in self._arrays.items()})

    def add_scaled(self, other: "ParamSet", alpha: float) -> None:
        """In-place ``self += alpha * other`` (the SGD apply step)."""
        self._check_compatible(other)
        for key, array in self._arrays.items():
            array += alpha * other._arrays[key]

    def scaled(self, alpha: float) -> "ParamSet":
        """Return ``alpha * self`` as a new ParamSet."""
        return ParamSet({k: alpha * v for k, v in self._arrays.items()})

    def subtract(self, other: "ParamSet") -> "ParamSet":
        """Return ``self - other`` as a new ParamSet."""
        self._check_compatible(other)
        return ParamSet(
            {k: v - other._arrays[k] for k, v in self._arrays.items()}
        )

    def norm(self) -> float:
        """The global L2 norm over all parameters."""
        total = 0.0
        for array in self._arrays.values():
            total += float(np.sum(array * array))
        return float(np.sqrt(total))

    def clip_by_global_norm(self, max_norm: float) -> "ParamSet":
        """Return a copy rescaled so its global L2 norm is at most ``max_norm``."""
        if max_norm <= 0:
            raise ValueError(f"max_norm must be > 0, got {max_norm}")
        current = self.norm()
        if current <= max_norm or current == 0.0:
            return self.copy()
        return self.scaled(max_norm / current)

    # ------------------------------------------------------------------
    # Introspection / serialization
    # ------------------------------------------------------------------
    @property
    def num_elements(self) -> int:
        """Total scalar parameter count."""
        return sum(int(v.size) for v in self._arrays.values())

    def wire_bytes(self, dtype_bytes: int = 4) -> int:
        """Serialized size at ``dtype_bytes`` per element (float32 default)."""
        return self.num_elements * dtype_bytes

    def to_vector(self) -> np.ndarray:
        """Flatten all parameters into one vector (stable key order)."""
        return np.concatenate([v.ravel() for v in self._arrays.values()])

    def from_vector(self, vector: np.ndarray) -> "ParamSet":
        """Inverse of :meth:`to_vector` using this ParamSet's shapes."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.size != self.num_elements:
            raise ValueError(
                f"vector has {vector.size} elements, expected {self.num_elements}"
            )
        out: Dict[str, np.ndarray] = {}
        offset = 0
        for key, array in self._arrays.items():
            out[key] = vector[offset : offset + array.size].reshape(array.shape)
            offset += array.size
        return ParamSet(out)

    def allclose(self, other: "ParamSet", atol: float = 1e-12) -> bool:
        """True when both ParamSets have identical keys and near-equal values."""
        if set(self.keys()) != set(other.keys()):
            return False
        return all(
            np.allclose(v, other._arrays[k], atol=atol) for k, v in self._arrays.items()
        )

    def _check_compatible(self, other: "ParamSet") -> None:
        theirs = other._arrays
        if set(self._arrays) != set(theirs):
            raise ValueError(
                f"incompatible ParamSets: keys {sorted(self._arrays)} "
                f"vs {sorted(theirs)}"
            )
        for key, array in self._arrays.items():
            if array.shape != theirs[key].shape:
                raise ValueError(
                    f"shape mismatch for {key!r}: "
                    f"{array.shape} vs {theirs[key].shape}"
                )

    def __repr__(self) -> str:
        shapes = ", ".join(f"{k}:{v.shape}" for k, v in self._arrays.items())
        return f"ParamSet({shapes})"
