"""Machine-learning substrate: parameters, models, datasets, optimizers.

Everything here is implemented from scratch on numpy.  The models are the
numerical engines behind the paper's three workloads (matrix factorization,
CIFAR-10-class, ImageNet-class); gradients are always evaluated on the exact
parameter snapshot a simulated worker pulled, so staleness effects in the
experiments are numerically real rather than modeled.
"""

from repro.ml.params import ParamSet
from repro.ml.models.base import Model, Batch
from repro.ml.models.matrix_factorization import MatrixFactorizationModel
from repro.ml.models.softmax import SoftmaxRegressionModel
from repro.ml.models.mlp import MLPModel
from repro.ml.models.linear import LinearRegressionModel
from repro.ml.models.convnet import ConvNetModel
from repro.ml.datasets.base import Dataset, Partition
from repro.ml.datasets.ratings import SyntheticRatingsDataset
from repro.ml.datasets.images import SyntheticImageDataset
from repro.ml.optim import SgdUpdateRule, LearningRateSchedule, StepDecaySchedule

__all__ = [
    "ParamSet",
    "Model",
    "Batch",
    "MatrixFactorizationModel",
    "SoftmaxRegressionModel",
    "MLPModel",
    "LinearRegressionModel",
    "ConvNetModel",
    "Dataset",
    "Partition",
    "SyntheticRatingsDataset",
    "SyntheticImageDataset",
    "SgdUpdateRule",
    "LearningRateSchedule",
    "StepDecaySchedule",
]
