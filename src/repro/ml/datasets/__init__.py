"""Synthetic dataset generators for the paper's three workload classes."""

from repro.ml.datasets.base import Dataset, Partition
from repro.ml.datasets.ratings import SyntheticRatingsDataset
from repro.ml.datasets.images import SyntheticImageDataset

__all__ = ["Dataset", "Partition", "SyntheticRatingsDataset", "SyntheticImageDataset"]
