"""Dataset interface: data-parallel partitioning and batch sampling.

Matches the paper's setup (Section II-B): training samples are partitioned
into D_1 … D_m, one per worker; each worker samples mini-batches from its
own partition only.  A held-out evaluation batch measures the global loss
curve the figures plot.
"""

from __future__ import annotations

import abc
from typing import List

import numpy as np

from repro.ml.models.base import Batch

__all__ = ["Dataset", "Partition"]


class Partition:
    """One worker's shard: a view over a subset of sample indices."""

    def __init__(self, dataset: "Dataset", indices: np.ndarray):
        if len(indices) == 0:
            raise ValueError("a partition must contain at least one sample")
        self.dataset = dataset
        # own the index array: a caller mutating its copy after
        # partitioning must not silently reshuffle this shard
        self.indices = np.array(indices, dtype=np.int64, copy=True)

    def __len__(self) -> int:
        return len(self.indices)

    def sample_batch(self, rng: np.random.Generator, batch_size: int) -> Batch:
        """Draw a with-replacement mini-batch from this shard."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        chosen = rng.choice(self.indices, size=batch_size, replace=True)
        return self.dataset.gather(chosen)


class Dataset(abc.ABC):
    """A training dataset with a held-out evaluation batch."""

    @property
    @abc.abstractmethod
    def num_samples(self) -> int:
        """Number of training samples."""

    @abc.abstractmethod
    def gather(self, indices: np.ndarray) -> Batch:
        """Materialize the samples at ``indices`` as a model batch."""

    @abc.abstractmethod
    def eval_batch(self) -> Batch:
        """The held-out batch used to trace the global loss curve."""

    def partition(self, num_workers: int, rng: np.random.Generator) -> List[Partition]:
        """Shuffle-split training samples into ``num_workers`` equal shards."""
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        if num_workers > self.num_samples:
            raise ValueError(
                f"cannot split {self.num_samples} samples over {num_workers} workers"
            )
        order = rng.permutation(self.num_samples)
        shards = np.array_split(order, num_workers)
        return [Partition(self, shard) for shard in shards]
