"""Synthetic image-like classification data (CIFAR-10 / ImageNet substitutes).

Samples are drawn from per-class Gaussian clusters whose prototypes are
random directions in feature space, with controllable class overlap: small
separation gives a hard problem a linear model cannot solve well, which is
what makes the MLP's non-convex training dynamics (and hence staleness
sensitivity) kick in.  The feature dimension stands in for flattened,
feature-extracted images; the classification *dynamics* — not pixels — are
what the synchronization experiments measure.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.ml.datasets.base import Dataset
from repro.utils.validation import check_positive

__all__ = ["SyntheticImageDataset"]


class SyntheticImageDataset(Dataset):
    """Gaussian-cluster classification with optional nonlinear warping.

    ``warp`` applies a random rotation + elementwise tanh to each cluster
    sample, making the classes non-linearly separable (closer in spirit to
    image manifolds and harder for the convex baseline).
    """

    def __init__(
        self,
        num_classes: int = 10,
        feature_dim: int = 32,
        num_samples: int = 20_000,
        class_separation: float = 2.0,
        within_class_std: float = 1.0,
        warp: bool = True,
        eval_fraction: float = 0.1,
        seed: int = 0,
    ):
        if num_classes <= 1:
            raise ValueError(f"num_classes must be >= 2, got {num_classes}")
        check_positive("feature_dim", feature_dim)
        if num_samples <= num_classes:
            raise ValueError("need more samples than classes")
        check_positive("class_separation", class_separation)
        check_positive("within_class_std", within_class_std)
        if not 0.0 < eval_fraction < 1.0:
            raise ValueError(f"eval_fraction must be in (0,1), got {eval_fraction}")

        self.num_classes = int(num_classes)
        self.feature_dim = int(feature_dim)
        rng = np.random.default_rng(seed)

        prototypes = rng.normal(0.0, 1.0, size=(num_classes, feature_dim))
        prototypes *= class_separation / np.linalg.norm(prototypes, axis=1, keepdims=True)

        labels = rng.integers(0, num_classes, size=num_samples)
        features = prototypes[labels] + rng.normal(
            0.0, within_class_std, size=(num_samples, feature_dim)
        )
        if warp:
            rotation = np.linalg.qr(rng.normal(size=(feature_dim, feature_dim)))[0]
            features = np.tanh(features @ rotation) * np.sqrt(feature_dim) / 2.0

        # Standardize features — keeps learning-rate scales comparable
        # across dataset configurations.
        features -= features.mean(axis=0)
        features /= features.std(axis=0) + 1e-8

        num_eval = max(1, int(num_samples * eval_fraction))
        self._eval = (features[:num_eval], labels[:num_eval])
        self._features = features[num_eval:]
        self._labels = labels[num_eval:]

    @property
    def num_samples(self) -> int:
        return len(self._labels)

    def gather(self, indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return (self._features[indices], self._labels[indices])

    def eval_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._eval
