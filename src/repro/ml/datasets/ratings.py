"""Synthetic MovieLens-like ratings (substitute for the paper's MF dataset).

We plant a low-rank structure: ground-truth user/item factors generate
ratings ``r = U*[u] · V*[i] + bias terms + noise``, clipped to the 1–5 star
range, with a long-tailed item popularity so the sampling pattern resembles
real MovieLens.  Matrix factorization on this data has the same optimization
landscape class (non-convex bilinear with a known good optimum) as the real
dataset, which is what the staleness experiments exercise.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.ml.datasets.base import Dataset
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["SyntheticRatingsDataset"]


class SyntheticRatingsDataset(Dataset):
    """Planted low-rank ratings with Zipf-like item popularity."""

    def __init__(
        self,
        num_users: int = 600,
        num_items: int = 400,
        num_ratings: int = 60_000,
        true_rank: int = 8,
        noise_std: float = 0.25,
        eval_fraction: float = 0.1,
        seed: int = 0,
    ):
        if num_users <= 0 or num_items <= 0:
            raise ValueError("num_users and num_items must be positive")
        if num_ratings <= 10:
            raise ValueError(f"num_ratings must exceed 10, got {num_ratings}")
        check_positive("true_rank", true_rank)
        check_non_negative("noise_std", noise_std)
        if not 0.0 < eval_fraction < 1.0:
            raise ValueError(f"eval_fraction must be in (0,1), got {eval_fraction}")

        self.num_users = int(num_users)
        self.num_items = int(num_items)
        rng = np.random.default_rng(seed)

        true_u = rng.normal(0.0, 0.5, size=(num_users, true_rank))
        true_v = rng.normal(0.0, 0.5, size=(num_items, true_rank))
        user_bias = rng.normal(0.0, 0.3, size=num_users)
        item_bias = rng.normal(0.0, 0.3, size=num_items)

        # Zipf-like popularity over items, uniform over users.
        item_weights = 1.0 / np.arange(1, num_items + 1) ** 0.8
        item_weights /= item_weights.sum()
        users = rng.integers(0, num_users, size=num_ratings)
        items = rng.choice(num_items, size=num_ratings, p=item_weights)
        scores = (
            3.0
            + np.sum(true_u[users] * true_v[items], axis=1)
            + user_bias[users]
            + item_bias[items]
            + rng.normal(0.0, noise_std, size=num_ratings)
        )
        ratings = np.clip(scores, 1.0, 5.0)

        num_eval = max(1, int(num_ratings * eval_fraction))
        self._eval = (users[:num_eval], items[:num_eval], ratings[:num_eval])
        self._users = users[num_eval:]
        self._items = items[num_eval:]
        self._ratings = ratings[num_eval:]
        self.global_mean = float(np.mean(self._ratings))

    @property
    def num_samples(self) -> int:
        return len(self._ratings)

    def gather(self, indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (self._users[indices], self._items[indices], self._ratings[indices])

    def eval_batch(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self._eval
