"""Server-side update rules and learning-rate schedules.

In the parameter-server architecture the *server* owns the optimizer: a
worker pushes a raw gradient and the server applies ``w ← w − η·g`` (paper
Eq. 2), optionally with momentum.  Learning-rate schedules follow the
paper's recipes (e.g. CIFAR-10's step decay at epochs 200/250, scaled to
simulation length).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.ml.params import ParamSet
from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "LearningRateSchedule",
    "ConstantSchedule",
    "StepDecaySchedule",
    "SgdUpdateRule",
    "AdaGradUpdateRule",
    "StalenessAwareUpdateRule",
]


class LearningRateSchedule(abc.ABC):
    """Maps a global update count to a learning rate."""

    @abc.abstractmethod
    def rate_at(self, update_count: int) -> float:
        """Learning rate for the ``update_count``-th applied push."""


@dataclass(frozen=True)
class ConstantSchedule(LearningRateSchedule):
    """A fixed learning rate."""

    rate: float

    def __post_init__(self):
        check_positive("rate", self.rate)

    def rate_at(self, update_count: int) -> float:
        return self.rate


@dataclass(frozen=True)
class StepDecaySchedule(LearningRateSchedule):
    """Multiply the rate by ``decay`` at each milestone update count.

    The paper decays CIFAR-10's rate at epochs 200 and 250; experiment
    configs translate those epochs into update counts.
    """

    initial_rate: float
    milestones: Sequence[int] = ()
    decay: float = 0.1

    def __post_init__(self):
        check_positive("initial_rate", self.initial_rate)
        check_positive("decay", self.decay)
        if list(self.milestones) != sorted(self.milestones):
            raise ValueError(f"milestones must be sorted, got {self.milestones}")

    def rate_at(self, update_count: int) -> float:
        rate = self.initial_rate
        for milestone in self.milestones:
            if update_count >= milestone:
                rate *= self.decay
        return rate


class SgdUpdateRule:
    """SGD with optional momentum and gradient clipping, applied server-side.

    ``apply`` mutates the global parameters in place with one pushed
    gradient; ``update_count`` drives the schedule (it counts pushes applied
    globally, the natural clock on the server).
    """

    def __init__(
        self,
        schedule: LearningRateSchedule,
        momentum: float = 0.0,
        clip_norm: Optional[float] = None,
    ):
        self.schedule = schedule
        self.momentum = check_non_negative("momentum", momentum)
        if self.momentum >= 1.0:
            raise ValueError(f"momentum must be < 1, got {momentum}")
        if clip_norm is not None:
            check_positive("clip_norm", clip_norm)
        self.clip_norm = clip_norm
        self._velocity: Optional[ParamSet] = None
        self._updates_applied = 0

    def apply(self, params: ParamSet, gradient: ParamSet) -> float:
        """Apply one pushed gradient; returns the learning rate used."""
        rate = self.schedule.rate_at(self._updates_applied)
        if self.clip_norm is not None:
            gradient = gradient.clip_by_global_norm(self.clip_norm)
        if self.momentum > 0.0:
            if self._velocity is None:
                self._velocity = gradient.zeros_like()
            # v ← μ·v + g ; w ← w − η·v
            self._velocity = self._velocity.scaled(self.momentum)
            self._velocity.add_scaled(gradient, 1.0)
            params.add_scaled(self._velocity, -rate)
        else:
            params.add_scaled(gradient, -rate)
        self._updates_applied += 1
        return rate

    @property
    def updates_applied(self) -> int:
        """Number of pushes applied so far (the server's logical clock)."""
        return self._updates_applied

    def state(self) -> Dict[str, object]:
        """Introspection snapshot, handy for tests and debugging."""
        return {
            "updates_applied": self._updates_applied,
            "momentum": self.momentum,
            "clip_norm": self.clip_norm,
            "current_rate": self.schedule.rate_at(self._updates_applied),
        }


class AdaGradUpdateRule(SgdUpdateRule):
    """AdaGrad applied server-side, as MXNet's KVStore updaters allow.

    Per-coordinate learning rates ``η / (sqrt(G) + ε)`` where ``G``
    accumulates squared gradients.  Included because PS-based recommenders
    (the paper's MF workload class) commonly train embeddings with AdaGrad;
    the SpecSync machinery is untouched — only the server's apply changes.
    """

    def __init__(
        self,
        schedule: LearningRateSchedule,
        epsilon: float = 1e-8,
        clip_norm: Optional[float] = None,
    ):
        super().__init__(schedule=schedule, momentum=0.0, clip_norm=clip_norm)
        self.epsilon = check_positive("epsilon", epsilon)
        self._accumulator: Optional[ParamSet] = None

    def apply(self, params: ParamSet, gradient: ParamSet) -> float:
        """Apply one AdaGrad step, mutating ``params`` in place."""
        rate = self.schedule.rate_at(self._updates_applied)
        if self.clip_norm is not None:
            gradient = gradient.clip_by_global_norm(self.clip_norm)
        if self._accumulator is None:
            self._accumulator = gradient.zeros_like()
        for key in params.keys():
            grad_array = gradient[key]
            acc = self._accumulator[key]
            acc += grad_array * grad_array
            params[key][...] -= rate * grad_array / (np.sqrt(acc) + self.epsilon)
        self._updates_applied += 1
        return rate


class StalenessAwareUpdateRule(SgdUpdateRule):
    """Staleness-aware async SGD (the paper's related work [29], Zhang et
    al.): the learning rate of each push is divided by the staleness its
    gradient experienced, damping the most out-of-date updates.

    The paper notes such techniques are orthogonal to SpecSync and
    combinable with it; the ablation bench measures exactly that.  The
    store feeds the per-push staleness through :meth:`apply_stale`;
    plain :meth:`apply` behaves like unscaled SGD (staleness unknown).
    """

    def __init__(
        self,
        schedule: LearningRateSchedule,
        min_scale: float = 0.05,
        clip_norm: Optional[float] = None,
        reference_staleness: Optional[int] = None,
    ):
        super().__init__(schedule=schedule, momentum=0.0, clip_norm=clip_norm)
        if not 0.0 < min_scale <= 1.0:
            raise ValueError(f"min_scale must be in (0, 1], got {min_scale}")
        if reference_staleness is not None and reference_staleness < 0:
            raise ValueError(
                f"reference_staleness must be >= 0, got {reference_staleness}"
            )
        self.min_scale = min_scale
        #: None → the raw η/(1+τ) rule of [29].  A value (typically m−1,
        #: the expected ASP staleness) switches to the relative form of
        #: [12]: pushes at or below the reference run at full rate and only
        #: the *excess* tail is damped — the variant that behaves sanely
        #: when every push is ~m−1 stale by construction.
        self.reference_staleness = reference_staleness

    def apply_stale(
        self, params: ParamSet, gradient: ParamSet, staleness: int
    ) -> float:
        """Apply one push whose gradient missed ``staleness`` peer updates."""
        if staleness < 0:
            raise ValueError(f"staleness must be >= 0, got {staleness}")
        base_rate = self.schedule.rate_at(self._updates_applied)
        if self.reference_staleness is None:
            scale = 1.0 / (1.0 + staleness)
        else:
            scale = min(
                1.0, (1.0 + self.reference_staleness) / (1.0 + staleness)
            )
        scale = max(scale, self.min_scale)
        rate = base_rate * scale
        if self.clip_norm is not None:
            gradient = gradient.clip_by_global_norm(self.clip_norm)
        params.add_scaled(gradient, -rate)
        self._updates_applied += 1
        return rate
