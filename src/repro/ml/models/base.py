"""The model interface every workload implements."""

from __future__ import annotations

import abc
from typing import Any, Optional, Tuple

import numpy as np

from repro.ml.params import ParamSet

__all__ = ["Model", "Batch"]

#: A training batch is model-specific opaque data (e.g. (X, y) arrays for
#: classification, (users, items, ratings) triples for MF).
Batch = Any


class Model(abc.ABC):
    """A differentiable model: parameters, loss, and gradient.

    Implementations must be pure functions of ``(params, batch)`` — no
    hidden state — so the same gradient call can be replayed on any
    parameter snapshot.  That purity is what lets the simulator evaluate a
    worker's gradient on exactly the (possibly stale) snapshot it pulled.
    """

    @abc.abstractmethod
    def init_params(self, rng: np.random.Generator) -> ParamSet:
        """Fresh model parameters."""

    @abc.abstractmethod
    def loss(self, params: ParamSet, batch: Batch) -> float:
        """Mean loss of ``params`` on ``batch``."""

    @abc.abstractmethod
    def loss_and_grad(self, params: ParamSet, batch: Batch) -> Tuple[float, ParamSet]:
        """Mean loss and its gradient with respect to every parameter."""

    def gradient(self, params: ParamSet, batch: Batch) -> ParamSet:
        """Gradient only (default: discard the loss from loss_and_grad)."""
        return self.loss_and_grad(params, batch)[1]

    def check_gradient(
        self,
        params: ParamSet,
        batch: Batch,
        epsilon: float = 1e-6,
        sample_size: int = 24,
        rng: Optional[np.random.Generator] = None,
        rtol: float = 1e-4,
    ) -> float:
        """Finite-difference check; returns the max relative error over a
        random sample of coordinates.  Test helper — not used in training.
        """
        rng = rng if rng is not None else np.random.default_rng(0)
        _, grad = self.loss_and_grad(params, batch)
        vector = params.to_vector()
        # Align the gradient to the *parameter* key order — implementations
        # may build their gradient dict in backward (reverse-layer) order.
        grad_vector = np.concatenate([grad[key].ravel() for key in params.keys()])
        indices = rng.choice(vector.size, size=min(sample_size, vector.size), replace=False)
        worst = 0.0
        for idx in indices:
            bumped = vector.copy()
            bumped[idx] += epsilon
            loss_plus = self.loss(params.from_vector(bumped), batch)
            bumped[idx] -= 2 * epsilon
            loss_minus = self.loss(params.from_vector(bumped), batch)
            numeric = (loss_plus - loss_minus) / (2 * epsilon)
            denom = max(abs(numeric), abs(grad_vector[idx]), 1e-8)
            worst = max(worst, abs(numeric - grad_vector[idx]) / denom)
        return worst
