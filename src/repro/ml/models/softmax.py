"""Multinomial logistic (softmax) regression.

The simplest convex classification model; used as a fast stand-in workload
and as the reference model in correctness tests (convexity means every sync
scheme must converge to the same optimum, which several integration tests
assert).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.ml.models.base import Model
from repro.ml.params import ParamSet
from repro.utils.validation import check_non_negative

__all__ = ["SoftmaxRegressionModel", "softmax", "cross_entropy"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the max-subtraction trick for stability."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy(probs: np.ndarray, labels: np.ndarray) -> float:
    """Mean negative log-likelihood of integer ``labels`` under ``probs``."""
    n = len(labels)
    picked = probs[np.arange(n), labels]
    return float(-np.mean(np.log(np.clip(picked, 1e-12, None))))


class SoftmaxRegressionModel(Model):
    """Linear classifier with softmax cross-entropy loss.

    A batch is ``(X, y)`` with ``X`` of shape (n, input_dim) and integer
    labels ``y`` in [0, num_classes).
    """

    def __init__(self, input_dim: int, num_classes: int, reg: float = 1e-4):
        if input_dim <= 0 or num_classes <= 1:
            raise ValueError("need input_dim >= 1 and num_classes >= 2")
        self.input_dim = int(input_dim)
        self.num_classes = int(num_classes)
        self.reg = check_non_negative("reg", reg)

    def init_params(self, rng: np.random.Generator) -> ParamSet:
        scale = 1.0 / np.sqrt(self.input_dim)
        return ParamSet(
            {
                "weights": rng.normal(0.0, scale, size=(self.input_dim, self.num_classes)),
                "bias": np.zeros(self.num_classes),
            }
        )

    def loss(self, params: ParamSet, batch) -> float:
        X, y = self._unpack(batch)
        probs = softmax(X @ params["weights"] + params["bias"])
        reg_loss = 0.5 * self.reg * float(np.sum(params["weights"] ** 2))
        return cross_entropy(probs, y) + reg_loss

    def loss_and_grad(self, params: ParamSet, batch) -> Tuple[float, ParamSet]:
        X, y = self._unpack(batch)
        n = len(y)
        probs = softmax(X @ params["weights"] + params["bias"])
        loss = cross_entropy(probs, y) + 0.5 * self.reg * float(
            np.sum(params["weights"] ** 2)
        )
        delta = probs.copy()
        delta[np.arange(n), y] -= 1.0
        delta /= n
        grad = ParamSet(
            {
                "weights": X.T @ delta + self.reg * params["weights"],
                "bias": delta.sum(axis=0),
            }
        )
        return loss, grad

    def accuracy(self, params: ParamSet, batch) -> float:
        """Fraction of correct argmax predictions on ``batch``."""
        X, y = self._unpack(batch)
        preds = np.argmax(X @ params["weights"] + params["bias"], axis=1)
        return float(np.mean(preds == y))

    def _unpack(self, batch):
        X, y = batch
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2 or X.shape[1] != self.input_dim:
            raise ValueError(f"X must be (n, {self.input_dim}), got {X.shape}")
        if len(X) != len(y) or len(y) == 0:
            raise ValueError("X and y must be non-empty and equal length")
        return X, y
