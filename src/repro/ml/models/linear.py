"""Linear regression — the minimal model, used mainly by tests.

Its closed-form optimum makes convergence assertions exact: the test suite
trains it through every synchronization scheme and checks the learned
weights approach the least-squares solution.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.ml.models.base import Model
from repro.ml.params import ParamSet
from repro.utils.validation import check_non_negative

__all__ = ["LinearRegressionModel"]


class LinearRegressionModel(Model):
    """Ridge-regularized linear regression with squared-error loss.

    A batch is ``(X, y)`` with real-valued targets ``y``.
    """

    def __init__(self, input_dim: int, reg: float = 0.0):
        if input_dim <= 0:
            raise ValueError(f"input_dim must be positive, got {input_dim}")
        self.input_dim = int(input_dim)
        self.reg = check_non_negative("reg", reg)

    def init_params(self, rng: np.random.Generator) -> ParamSet:
        return ParamSet(
            {
                "weights": rng.normal(0.0, 0.01, size=self.input_dim),
                "bias": np.zeros(1),
            }
        )

    def loss(self, params: ParamSet, batch) -> float:
        X, y = self._unpack(batch)
        errors = X @ params["weights"] + params["bias"][0] - y
        return float(np.mean(errors**2)) + 0.5 * self.reg * float(
            np.sum(params["weights"] ** 2)
        )

    def loss_and_grad(self, params: ParamSet, batch) -> Tuple[float, ParamSet]:
        X, y = self._unpack(batch)
        n = len(y)
        errors = X @ params["weights"] + params["bias"][0] - y
        loss = float(np.mean(errors**2)) + 0.5 * self.reg * float(
            np.sum(params["weights"] ** 2)
        )
        grad = ParamSet(
            {
                "weights": (2.0 / n) * (X.T @ errors) + self.reg * params["weights"],
                "bias": np.array([(2.0 / n) * float(errors.sum())]),
            }
        )
        return loss, grad

    def solve_exact(self, X: np.ndarray, y: np.ndarray) -> ParamSet:
        """Closed-form ridge solution (with intercept), for test oracles."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        ones = np.ones((len(X), 1))
        design = np.hstack([X, ones])
        penalty = self.reg * len(X) / 2.0 * np.eye(self.input_dim + 1)
        penalty[-1, -1] = 0.0  # do not regularize the intercept
        solution = np.linalg.solve(design.T @ design + penalty, design.T @ y)
        return ParamSet({"weights": solution[:-1], "bias": solution[-1:]})

    def _unpack(self, batch):
        X, y = batch
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.input_dim:
            raise ValueError(f"X must be (n, {self.input_dim}), got {X.shape}")
        if len(X) != len(y) or len(y) == 0:
            raise ValueError("X and y must be non-empty and equal length")
        return X, y
